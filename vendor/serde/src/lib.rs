//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives from the vendored
//! `serde_derive`. The workspace never calls serde's runtime (all persistence
//! is hand-written text/JSON), so no traits or data model are needed — the
//! derive names only have to resolve at `use serde::{Serialize, Deserialize}`
//! sites. The `derive` feature is declared for Cargo.toml compatibility and
//! is a no-op: the derives are always available.

#![allow(clippy::all)]
pub use serde_derive::{Deserialize, Serialize};
