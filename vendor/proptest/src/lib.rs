//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace uses: range strategies over the
//! numeric primitives, tuple strategies (arity 2–4), `collection::vec`,
//! `prop_map` / `prop_flat_map`, `Just`, the `proptest!` test-block macro and
//! the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for an offline shim:
//! - No shrinking: a failing case reports its case index and master seed so
//!   it can be replayed (runs are deterministic per test name), but inputs
//!   are not minimized.
//! - Case count defaults to 48 (override with `PROPTEST_CASES`), versus
//!   upstream's 256, to keep `cargo test -q` quick.
//! - `prop_assert!` panics immediately instead of returning a `Result`.

#![allow(clippy::all)]
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies; fixed concrete type keeps the trait simple.
pub type TestRng = SmallRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from a strategy built
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.random_range(self.clone())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Size specification for [`collection::vec`]: a fixed length or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    use super::*;

    /// Strategy producing `Vec`s whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases per property (override with `PROPTEST_CASES`).
fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Stable FNV-1a hash of the test name → master seed, so every run of a
/// given property replays the same case sequence.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Driver behind the `proptest!` macro: runs `f` for each case with a
/// per-case deterministic RNG, labelling any panic with the case number.
pub fn run_cases<F: FnMut(&mut TestRng)>(name: &str, mut f: F) {
    let master = seed_for(name);
    for case in 0..case_count() {
        let mut rng =
            TestRng::seed_from_u64(master ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest shim: property `{name}` failed at case {case} (master seed {master:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Declare property tests. Each function becomes a `#[test]` that runs the
/// body over [`run_cases`] with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                $body
            });
        }
        $crate::proptest!{$($rest)*}
    };
}

/// Like `assert!` (the shim has no shrinking, so failures panic directly).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..10, 0u32..5).prop_map(|(a, b)| (a + b, b))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..8).prop_flat_map(|n| collection::vec(0u32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn mapped_pairs_hold_invariant(p in pair()) {
            prop_assert!(p.0 >= p.1);
        }

        #[test]
        fn vec_sizes_within_range(v in collection::vec(0u8..255, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    #[test]
    fn runs_are_deterministic_per_name() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        crate::run_cases("determinism_probe", |rng| {
            first.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
        });
        crate::run_cases("determinism_probe", |rng| {
            second.push(crate::Strategy::generate(&(0u64..1_000_000), rng));
        });
        assert_eq!(first, second);
        assert_eq!(first.len(), super::case_count());
    }
}
