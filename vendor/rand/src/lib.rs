//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no crates.io registry
//! cache, so the workspace vendors the *subset* of the rand 0.9 API it
//! actually uses: [`RngCore`]/[`Rng`]/[`SeedableRng`], uniform sampling for
//! the primitive types, `random_range` over half-open ranges,
//! [`rngs::SmallRng`] (xoshiro256++) and [`seq::SliceRandom::shuffle`]
//! (Fisher–Yates).
//!
//! Streams are deterministic and stable within this repository but are NOT
//! bit-compatible with upstream `rand`; nothing in the workspace depends on
//! the upstream streams, only on determinism and statistical quality.

#![allow(clippy::all)]
/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (floats: uniform in `[0, 1)`; integers: uniform over the full range).
    fn random<T: distr::StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.random::<f64>()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for the generators here).
    type Seed: AsMut<[u8]> + Default;

    /// Builds from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` by expanding it with SplitMix64 — every generator
    /// in the workspace is constructed this way.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for b in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            b.copy_from_slice(&bytes[..b.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public so `rand_chacha` can reuse it).
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod distr {
    //! Standard-distribution and range sampling (the `rand::distr` analog).

    use super::RngCore;

    /// Types samplable from their "standard" distribution.
    pub trait StandardSample {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $via:ident),*) => {$(
            impl StandardSample for $t {
                fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                    rng.$via() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                       u64 => next_u64, usize => next_u64,
                       i8 => next_u32, i16 => next_u32, i32 => next_u32,
                       i64 => next_u64, isize => next_u64);

    impl StandardSample for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl StandardSample for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // 24 random mantissa bits scaled into [0, 1).
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Ranges usable with [`super::Rng::random_range`].
    pub trait SampleRange<T> {
        /// Draws a uniform sample from the range.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_range_uint {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    // Multiply-shift rejection-free mapping (Lemire); the
                    // tiny modulo bias is irrelevant for test workloads.
                    let x = rng.next_u64();
                    self.start + ((x as u128 * span as u128) >> 64) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi - lo) as u64 + 1;
                    let x = rng.next_u64();
                    lo + ((x as u128 * span as u128) >> 64) as $t
                }
            }
        )*};
    }
    impl_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_sint {
        ($($t:ty : $u:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let x = rng.next_u64();
                    (self.start as i128 + ((x as u128 * span as u128) >> 64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_sint!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as StandardSample>::sample(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator standing in for rand's
    /// `SmallRng`. Excellent statistical quality, 256-bit state.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (j, chunk) in seed.chunks_exact(8).enumerate() {
                s[j] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point for xoshiro; perturb it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0x6a09e667f3bcc909,
                    0xbb67ae8584caa73b,
                    0x1f83d9abfb41bd6b,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Slice utilities (`rand::seq` analog).

    use super::Rng;

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for j in (1..self.len()).rev() {
                let other = rng.random_range(0..j + 1);
                self.swap(j, other);
            }
        }
    }
}

pub use distr::StandardSample;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let s: usize = rng.random_range(0..1);
            assert_eq!(s, 0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn range_sampling_covers_span() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
