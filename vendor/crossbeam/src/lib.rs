//! Offline stand-in for `crossbeam`, providing the `channel` module subset the
//! workspace uses: MPMC `unbounded`/`bounded` channels with cloneable senders
//! *and receivers*, blocking `send`/`recv`, `recv_timeout`, `try_recv`,
//! draining iteration, and `len`.
//!
//! Built on `std::sync::{Mutex, Condvar}` around a `VecDeque`. Slower than the
//! real lock-free crossbeam under contention, but semantically equivalent for
//! the pipeline/ring-passing patterns in `comm` and `baselines`.

#![allow(clippy::all)]
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver has dropped.
    /// Carries the unsent message, like crossbeam's.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug regardless of whether T is Debug, so `.expect()`
    // works on channels of non-Debug payloads.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has dropped.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded; `Some(cap)` blocks senders at `cap` items.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Cloneable producer handle.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Cloneable consumer handle (MPMC, unlike `std::sync::mpsc`).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Channel with no capacity limit: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Channel holding at most `cap` in-flight messages; `send` blocks at cap.
    ///
    /// Note: crossbeam's `bounded(0)` is a rendezvous channel; this shim
    /// treats it as capacity 1, which is sufficient for the workspace (all
    /// call sites pass `cap >= 1`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake receivers blocked in recv so they
                // can observe disconnection.
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake senders blocked on a full channel.
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send. Returns `Err(SendError(msg))` once all receivers
        /// have dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.cap {
                    Some(cap) if queue.len() >= cap => {
                        queue = self.inner.not_full.wait(queue).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive. Returns `Err(RecvError)` once the queue is empty
        /// and all senders have dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// Receive with a deadline relative to now.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = guard;
                if res.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator that drains until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator over received messages; ends when the channel disconnects.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            for v in 0..5 {
                tx.send(v).unwrap();
            }
            assert_eq!(rx.len(), 5);
            let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));

            let (tx2, rx2) = unbounded::<u8>();
            drop(rx2);
            assert!(tx2.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let handle = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
            });
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            handle.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = vec![a, b];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                for v in 0..4 {
                    tx.send(v).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}
