//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream generator
//! implementing the vendored [`rand`] traits.
//!
//! The core is the real ChaCha block function (Bernstein) at 8 double-rounds,
//! so statistical quality matches upstream. Seeding via
//! [`SeedableRng::seed_from_u64`] expands with SplitMix64 and therefore
//! produces a *different stream* than upstream `rand_chacha` for the same
//! integer seed; the workspace only relies on in-repo determinism.

#![allow(clippy::all)]
use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha with 8 rounds, 256-bit key seed, 64-bit block counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the initial state.
    key: [u32; 8],
    /// Block counter (words 12..13) — 64-bit, practically inexhaustible.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (j, chunk) in seed.chunks_exact(4).enumerate() {
            key[j] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha_block_function_matches_rfc_vector() {
        // RFC 7539 §2.3.2 test vector runs 20 rounds; with ROUNDS == 8 we
        // instead sanity-check the block structure: refilling twice with the
        // same key but consecutive counters yields different blocks.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn unit_floats_are_well_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
