//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` (and `#[serde(default)]`) — nothing actually serializes
//! through serde; all JSON/text output is hand-rolled. These derives
//! therefore expand to nothing, merely accepting the `serde` helper
//! attribute so annotated code keeps compiling unchanged.

#![allow(clippy::all)]
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
