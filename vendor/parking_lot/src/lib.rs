//! Offline stand-in for `parking_lot`: `Mutex`, `RwLock`, and `Condvar`
//! wrapping the `std::sync` primitives but exposing parking_lot's
//! non-poisoning API (`lock()` returns a guard, not a `Result`).
//!
//! Poison from a panicking holder is swallowed via `into_inner`, matching
//! parking_lot's behaviour of simply releasing the lock on panic.

#![allow(clippy::all)]
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as std_sync;

/// Non-poisoning mutex. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std_sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily take the underlying
/// std guard by value (std's wait consumes and returns the guard); outside of
/// a wait the option is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std_sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std_sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std_sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std_sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Condition variable paired with [`Mutex`], parking_lot-style:
/// `wait` takes `&mut MutexGuard` instead of consuming it.
#[derive(Default)]
pub struct Condvar {
    inner: std_sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std_sync::Condvar::new(),
        }
    }

    /// Atomically release the lock and sleep until notified; relocks before
    /// returning. Spurious wakeups possible, as with any condvar.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let inner = guard.guard.take().expect("guard taken during wait");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std_sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std_sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std_sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std_sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_guard_roundtrip() {
        let m = Mutex::new(3);
        {
            let mut g = m.lock();
            *g += 4;
        }
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: lock is released on panic, not poisoned.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
