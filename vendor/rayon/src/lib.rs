//! Offline stand-in for `rayon`.
//!
//! The workspace uses a narrow slice of rayon's API: `par_iter`,
//! `par_chunks`, and `par_chunks_mut`, always followed by standard iterator
//! adapters (`zip`, `map`, `for_each`, `sum`). This shim maps each entry
//! point to the equivalent *sequential* `std` iterator, which is semantically
//! identical and performance-neutral on single-core hosts (the container this
//! repo builds in exposes one core). Swapping back to real rayon is a
//! Cargo.toml change only — no call sites need touching.

#![allow(clippy::all)]
pub mod prelude {
    /// `par_iter()` on slices/Vecs — sequential `iter()` here.
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `par_chunks()` on shared slices — sequential `chunks()` here.
    pub trait ParallelSlice<T: Sync> {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_chunks_mut()` on mutable slices — sequential `chunks_mut()` here.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Sequential analogue of `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u64, 2, 3, 4];
        let s: u64 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_chunks_zip_roundtrip() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mut dst = [0.0f32; 5];
        dst.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(d, s)| {
                d.copy_from_slice(s);
            });
        assert_eq!(dst, src);
    }
}
