//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `[[bench]]` targets use —
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher`,
//! `criterion_group!`/`criterion_main!` — backed by a simple wall-clock
//! harness: per benchmark it warms up briefly, then times `sample_size`
//! batches and reports the median per-iteration time (plus throughput when
//! declared). No statistical analysis, HTML reports, or baselines.
//!
//! When invoked with `--test` (as `cargo test --benches` does) or
//! `--list`, each benchmark runs exactly once so CI stays fast.

#![allow(clippy::all)]
use std::time::{Duration, Instant};

/// Re-export position matches criterion 0.5 (which re-exports
/// `std::hint::black_box` as its default `black_box`).
pub use std::hint::black_box;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--list")
}

/// Top-level harness handle; holds defaults inherited by groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder form).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Convenience single-benchmark entry point (criterion-compatible).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let group_sample = self.sample_size;
        run_benchmark(&format!("{id}"), group_sample, None, f);
    }
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: format!("{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: format!("{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(func) => write!(f, "{}/{}", func, self.parameter),
            None => write!(f, "{}", self.parameter),
        }
    }
}

/// Units the per-iteration time is normalized against when reporting rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Handed to the benchmark closure; `iter` times the supplied routine.
pub struct Bencher {
    /// Median per-iteration time, filled in by `iter`.
    elapsed: Duration,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            black_box(routine());
            self.elapsed = Duration::ZERO;
            return;
        }
        // Calibrate: grow the batch until one batch takes >= ~5ms so timer
        // resolution stays negligible.
        let mut batch: u64 = 1;
        let batch_time = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let t = start.elapsed();
            if t >= Duration::from_millis(5) || batch >= 1 << 20 {
                break t;
            }
            batch *= 2;
        };
        let _ = batch_time;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch as u32);
        }
        samples.sort_unstable();
        self.elapsed = samples[samples.len() / 2];
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        sample_size,
    };
    f(&mut bencher);
    if test_mode() {
        println!("bench {label}: ok (test mode, 1 iteration)");
        return;
    }
    let per_iter = bencher.elapsed;
    let rate = throughput.map(|t| {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / secs),
            Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / secs),
        }
    });
    println!(
        "bench {label}: {per_iter:?}/iter{}",
        rate.unwrap_or_default()
    );
}

/// Declare a benchmark group. Both criterion forms are accepted:
/// `criterion_group!(benches, f1, f2)` and
/// `criterion_group!{name = benches; config = ...; targets = f1, f2}`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_all_benchmarks() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("shim");
            group.throughput(Throughput::Elements(10));
            group.bench_function("one", |b| {
                b.iter(|| std::hint::black_box(1 + 1));
            });
            group.bench_with_input(BenchmarkId::new("two", 42), &42u32, |b, &x| {
                b.iter(|| std::hint::black_box(x * 2));
            });
            group.finish();
        }
        calls += 1;
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dot", 128).to_string(), "dot/128");
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
    }
}
