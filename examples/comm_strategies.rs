//! Compare the COMM layer's strategies and transports on real transfers.
//!
//! Reproduces the *mechanism* behind Table 5: the same feature payload moves
//! through the shared-memory COMM and the ps-lite-style COMM-P under each
//! communication strategy; we print measured times, effective bandwidth,
//! and wire volume. (Absolute numbers depend on this machine's memory
//! system; the orderings — COMM > COMM-P, Q ≫ P&Q, half-Q > Q — are the
//! paper's Table 5 shape.)
//!
//! ```sh
//! cargo run --release --example comm_strategies
//! ```

use hcc_comm::{CommP, CommShared, Precision, TransferStrategy, Transport};
use std::sync::Barrier;
use std::time::Instant;

fn main() {
    // Netflix-shaped payloads at k = 64 (scaled from the paper's 128 to
    // keep this example quick): Q is n×k, P&Q is (m+n)×k.
    let (m, n, k) = (480_190usize, 17_771usize, 64usize);
    let workers = 4;
    let rounds = 10; // pull+push per round

    println!(
        "payloads: P&Q = {:.1} MiB, Q = {:.1} MiB (FP32)",
        mib((m + n) * k),
        mib(n * k)
    );
    println!(
        "{:<8} {:<8} {:>10} {:>12} {:>12}",
        "comm", "strategy", "time", "bandwidth", "wire"
    );

    let mut comm_times = Vec::new();
    for strategy in TransferStrategy::ALL {
        let elems = match strategy {
            TransferStrategy::FullPq => (m + n) * k,
            TransferStrategy::QOnly | TransferStrategy::HalfQ => n * k,
        };
        let precision = if strategy.is_compressed() {
            Precision::Fp16
        } else {
            Precision::Fp32
        };
        let payload: Vec<f32> = (0..elems).map(|j| (j % 997) as f32 * 0.01).collect();

        // COMM: shared single-copy buffers.
        let shared = CommShared::new(workers, elems, elems, precision);
        let t = run(&shared, workers, rounds, &payload);
        comm_times.push(t);
        report("COMM", strategy, t, &shared);

        // COMM-P: serialize → channel → staging copies.
        let commp = CommP::new(workers, precision);
        let t = run(&commp, workers, rounds, &payload);
        report("COMM-P", strategy, t, &commp);
    }

    println!(
        "\nQ-only speedup over P&Q on COMM: {:.1}x (volume ratio (m+n)/n = {:.1}x)",
        comm_times[0] / comm_times[1],
        (m + n) as f64 / n as f64,
    );
    println!(
        "half-Q speedup over P&Q on COMM: {:.1}x",
        comm_times[0] / comm_times[2]
    );
}

/// `rounds` epochs of communication with persistent worker threads: the
/// server publishes, every worker pulls then pushes, the server collects.
fn run(transport: &dyn Transport, workers: usize, rounds: usize, payload: &[f32]) -> f64 {
    let start_barrier = Barrier::new(workers + 1);
    let round_barrier = Barrier::new(workers + 1);
    let mut staging = vec![0f32; payload.len()];

    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let transport = &transport;
            let start_barrier = &start_barrier;
            let round_barrier = &round_barrier;
            scope.spawn(move || {
                let mut local = vec![0f32; payload.len()];
                for _ in 0..rounds {
                    start_barrier.wait();
                    transport.pull(w, &mut local);
                    transport.push(w, &local);
                    round_barrier.wait();
                }
            });
        }
        let start = Instant::now();
        for _ in 0..rounds {
            transport.publish(payload);
            start_barrier.wait();
            for w in 0..workers {
                transport.collect(w, &mut staging);
            }
            round_barrier.wait();
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    elapsed
}

fn report(name: &str, strategy: TransferStrategy, secs: f64, transport: &dyn Transport) {
    let wire = transport.wire_bytes();
    let bw = wire as f64 / secs / 1e9;
    println!(
        "{:<8} {:<8} {:>9.3}s {:>9.2} GB/s {:>9.1} MiB",
        name,
        strategy.label(),
        secs,
        bw,
        wire as f64 / (1024.0 * 1024.0),
    );
}

fn mib(elems: usize) -> f64 {
    elems as f64 * 4.0 / (1024.0 * 1024.0)
}
