//! Analyze a dataset before training: shape statistics, the §4.6
//! collaboration verdict, and a biased-vs-plain MF comparison.
//!
//! ```sh
//! cargo run --release --example dataset_analysis
//! ```

use hcc_sgd::{train_biased, BiasedConfig};
use hcc_sparse::stats::row_count_quantiles;
use hcc_sparse::{DatasetProfile, MatrixStats, SyntheticDataset};

fn main() {
    println!(
        "{:<18} {:>9} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "dataset", "aspect", "nnz/dim", "nnz/min", "row-gini", "col-gini", "verdict"
    );
    for profile in DatasetProfile::all() {
        // The verdict indicators are computed at *full* scale (down-scaling
        // shrinks nnz/min(m,n) by sqrt(factor)); the skew statistics come
        // from generated data, whose Zipf shape is scale-free.
        let factor = (profile.nnz as f64 / 120_000.0).max(1.0);
        let ds = SyntheticDataset::generate(profile.scaled_gen_config(factor, 11));
        let s = MatrixStats::compute(&ds.matrix);
        let nnz_per_dim = profile.nnz as f64 / (profile.m + profile.n) as f64;
        let nnz_per_min = profile.nnz as f64 / profile.m.min(profile.n) as f64;
        println!(
            "{:<18} {:>9.2} {:>9.0} {:>8.0} {:>9.2} {:>9.2} {:>8}",
            profile.name,
            profile.m as f64 / profile.n as f64,
            nnz_per_dim,
            nnz_per_min,
            s.row_gini,
            s.col_gini,
            if nnz_per_min >= 1e3 { "good" } else { "poor" },
        );
    }
    println!("\nverdict = post-Q-only communication indicator nnz/min(m,n) >= 1e3 (§3.4/§4.6):");
    println!(
        "Netflix/R2-shaped data suits multi-worker HCC-MF; R1/MovieLens shapes are comm-bound."
    );

    // Row-count tail: what the grid partitioner has to cope with.
    let ds = SyntheticDataset::generate(DatasetProfile::netflix().scaled_gen_config(600.0, 11));
    let (p50, p90, p99, max) = row_count_quantiles(&ds.matrix);
    println!("\nNetflix-shaped row-count quantiles: p50={p50} p90={p90} p99={p99} max={max}");

    // Biased vs plain MF on the same data and budget.
    let entries = ds.matrix.entries();
    let (m, n) = (ds.matrix.rows() as usize, ds.matrix.cols() as usize);
    let cfg = BiasedConfig {
        threads: 2,
        learning_rate: 0.02,
        lambda_factor: 0.01,
        lambda_bias: 0.01,
    };
    let model = train_biased(entries, m, n, 16, 20, &cfg, 5);
    let biased_rmse = model.rmse(entries);

    let p = hcc_sgd::SharedFactors::from_matrix(&hcc_sgd::FactorMatrix::random(m, 16, 5));
    let q = hcc_sgd::SharedFactors::from_matrix(&hcc_sgd::FactorMatrix::random(n, 16, 6));
    let hw = hcc_sgd::HogwildConfig {
        threads: 2,
        learning_rate: 0.02,
        lambda_p: 0.01,
        lambda_q: 0.01,
        schedule: Default::default(),
    };
    for _ in 0..20 {
        hcc_sgd::hogwild_epoch(entries, &p, &q, &hw);
    }
    let plain_rmse = hcc_sgd::rmse(entries, &p.snapshot(), &q.snapshot());
    println!(
        "\n20-epoch k=16 training RMSE: biased MF {biased_rmse:.4} vs plain MF {plain_rmse:.4} \
         (biases absorb user/item offsets)"
    );
}
