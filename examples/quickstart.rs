//! Quickstart: train SGD-based MF collaboratively and predict a rating.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hcc_mf::{HccConfig, HccMf, Recommender, WorkerSpec};
use hcc_sparse::{train_test_split, GenConfig, SyntheticDataset};

fn main() {
    // 1. A synthetic rating matrix from a planted low-rank model: 2,000
    //    users × 800 items, 60k observed ratings on a 1–5 scale.
    let dataset = SyntheticDataset::generate(GenConfig {
        rows: 2_000,
        cols: 800,
        nnz: 60_000,
        planted_rank: 8,
        noise: 0.1,
        ..GenConfig::default()
    });
    let (train, test) = train_test_split(&dataset.matrix, 0.1, 42).unwrap();
    println!(
        "dataset: {} users × {} items, {} train / {} test ratings",
        train.rows(),
        train.cols(),
        train.nnz(),
        test.nnz()
    );

    // 2. An HCC-MF platform: two CPU workers plus one wide "GPU-class"
    //    worker, auto partition (DP1/DP2 by the λ rule), Q-only transfers.
    let config = HccConfig::builder()
        .k(32)
        .epochs(25)
        .learning_rate(hcc_mf::LearningRate::Constant(0.02))
        .lambda(0.02)
        .workers(vec![
            WorkerSpec::cpu(2),
            WorkerSpec::cpu(2),
            WorkerSpec::gpu_sim(4),
        ])
        .track_rmse(true)
        .build();

    // 3. Train.
    let report = HccMf::new(config).train(&train).expect("training failed");
    println!(
        "trained {} epochs in {:.2?} — {:.1}M updates/s, strategy {:?}",
        report.epoch_times.len(),
        report.total_time(),
        report.computing_power() / 1e6,
        report.strategy_used,
    );
    println!(
        "train RMSE: {:.4} -> {:.4}",
        report.rmse_history.first().unwrap(),
        report.rmse_history.last().unwrap()
    );
    let rmse = hcc_sgd::rmse(test.entries(), &report.p, &report.q);
    println!("held-out RMSE: {rmse:.4}");

    // 4. Recommend: top-5 unseen items for user 0.
    let rec = Recommender::new(report.p, report.q, &train);
    println!("top-5 recommendations for user 0:");
    for (item, score) in rec.top_k(0, 5).expect("user 0 exists") {
        println!("  item {item:>4}  predicted rating {score:.2}");
    }
}
