//! A MovieLens-shaped recommender, end to end: generate a dataset with the
//! MovieLens-20m shape (scaled to laptop size), train HCC-MF, evaluate on a
//! held-out split, and serve recommendations.
//!
//! MovieLens is the paper's *limitation* dataset (§4.6): near-square, so
//! the Q-only optimization saves little — watch the wire-bytes line.
//!
//! ```sh
//! cargo run --release --example movielens_recommend
//! ```

use hcc_mf::{HccConfig, HccMf, Recommender, TransferStrategy, WorkerSpec};
use hcc_sparse::{train_test_split, DatasetProfile, SyntheticDataset};

fn main() {
    // MovieLens-20m shape, scaled 200× down: ~9.8k users × 9.3k items, 100k
    // ratings on the 0.5–5 scale.
    let profile = DatasetProfile::movielens_20m();
    let gen = profile.scaled_gen_config(200.0, 7);
    println!(
        "generating {}-shaped data: {} × {} with {} ratings",
        profile.name, gen.rows, gen.cols, gen.nnz
    );
    let dataset = SyntheticDataset::generate(gen);
    let (train, test) = train_test_split(&dataset.matrix, 0.1, 7).unwrap();

    for strategy in [
        TransferStrategy::FullPq,
        TransferStrategy::QOnly,
        TransferStrategy::HalfQ,
    ] {
        let config = HccConfig::builder()
            .k(32)
            .epochs(15)
            .learning_rate(hcc_mf::LearningRate::Constant(0.02))
            .lambda(profile.lambda.min(0.05))
            .workers(vec![WorkerSpec::cpu(2), WorkerSpec::gpu_sim(4)])
            .strategy(strategy)
            .track_rmse(true)
            .build();
        let report = HccMf::new(config).train(&train).expect("training failed");
        let test_rmse = hcc_sgd::rmse(test.entries(), &report.p, &report.q);
        println!(
            "{:>6}: {:>6.2?} total, wire {:>7.1} MiB, train RMSE {:.4}, test RMSE {:.4}",
            format!("{strategy:?}"),
            report.total_time(),
            report.wire_bytes as f64 / (1024.0 * 1024.0),
            report.final_rmse().unwrap(),
            test_rmse,
        );
        // On a near-square matrix Q-only saves roughly half the volume, not
        // the 96% it saves on Netflix — the §4.6 limitation in one line.
    }

    // Serve recommendations from a final Q-only model.
    let config = HccConfig::builder()
        .k(32)
        .epochs(20)
        .learning_rate(hcc_mf::LearningRate::Constant(0.02))
        .lambda(0.02)
        .workers(vec![WorkerSpec::cpu(2), WorkerSpec::gpu_sim(4)])
        .track_rmse(true)
        .build();
    let report = HccMf::new(config).train(&train).expect("training failed");
    let rec = Recommender::new(report.p, report.q, &train);
    for user in [0u32, 1, 2] {
        let top = rec.top_k(user, 3).expect("user within model");
        let picks: Vec<String> = top.iter().map(|(i, s)| format!("#{i} ({s:.2})")).collect();
        println!("user {user}: {}", picks.join(", "));
    }
}
