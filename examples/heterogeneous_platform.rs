//! Plan and simulate the paper's multi-CPU/GPU testbed.
//!
//! This example runs entirely on the virtual platform (`hcc-hetsim`): it
//! plans data partitions with DP0/DP1/DP2, shows the λ-rule choosing a
//! strategy per dataset, and prints the simulated epoch timeline — the
//! workflow of §3.2–3.3 without needing the paper's hardware.
//!
//! ```sh
//! cargo run --release --example heterogeneous_platform
//! ```

use hcc_hetsim::{
    cost_model_for, ideal_computing_power, simulate_training, standalone_times, virtual_measure,
    Phase, Platform, SimConfig, Workload,
};
use hcc_partition::{dp0, PartitionPlanner};
use hcc_sparse::DatasetProfile;

fn main() {
    let platform = Platform::paper_testbed_4workers();
    println!(
        "platform: {} (${:.0})",
        platform.name,
        platform.total_price()
    );
    for (i, w) in platform.workers.iter().enumerate() {
        println!(
            "  worker {i}: {:<10} bus {:?}{}",
            w.profile.name,
            w.bus,
            if w.timeshare_server {
                " (time-shares with server)"
            } else {
                ""
            }
        );
    }

    let config = SimConfig::default();
    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::yahoo_r2(),
    ] {
        let workload = Workload::from_profile(&profile);
        println!(
            "\n=== {} (m={}, n={}, nnz={}) ===",
            profile.name, profile.m, profile.n, profile.nnz
        );

        // DP0 seed from standalone execution times.
        let standalone = standalone_times(&platform, &workload);
        let x0 = dp0(&standalone);
        println!("DP0 shares: {}", fmt_fractions(&x0));

        // Full planning: DP1 refinement, then the λ rule.
        let model = cost_model_for(&platform, &workload, &config);
        let plan = PartitionPlanner::default().plan(
            &model,
            &standalone,
            &hcc_hetsim::measure::worker_classes(&platform),
            virtual_measure(&platform, &workload),
        );
        println!(
            "planner: {:?} (max_T/T_sync = {:.1}, λ = 10) -> {}",
            plan.strategy,
            plan.sync_ratio,
            fmt_fractions(&plan.fractions)
        );

        // Simulate 20 epochs with the planned partition.
        let sim = simulate_training(&platform, &workload, &config, &plan.fractions, 20);
        let ideal = ideal_computing_power(&platform, &workload);
        println!(
            "20 epochs: {:.2}s — {:.0}M updates/s of {:.0}M ideal ({:.0}% utilization)",
            sim.total_time,
            sim.computing_power / 1e6,
            ideal / 1e6,
            100.0 * sim.computing_power / ideal
        );

        // A text timeline of the first epoch (Fig. 5-style).
        println!("epoch timeline:");
        for (w, name) in platform.worker_names().iter().enumerate() {
            let spans = sim.epoch.worker_spans(w);
            let row: Vec<String> = spans
                .iter()
                .map(|s| {
                    let tag = match s.phase {
                        Phase::Pull => "pull",
                        Phase::Compute => "comp",
                        Phase::Push => "push",
                        Phase::Sync => "sync",
                    };
                    format!("{tag} {:.0}–{:.0}ms", s.start * 1e3, s.end * 1e3)
                })
                .collect();
            println!("  {name:<10} {}", row.join(" | "));
        }
    }
}

fn fmt_fractions(x: &[f64]) -> String {
    let parts: Vec<String> = x.iter().map(|v| format!("{:.1}%", v * 100.0)).collect();
    parts.join(" / ")
}
