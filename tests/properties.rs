//! Cross-crate property-based tests (proptest) on the invariants that hold
//! the reproduction together.

use hcc_comm::TransferStrategy;
use hcc_hetsim::{simulate_epoch, BusKind, Platform, ProcessorProfile, SimConfig, Workload};
use hcc_partition::{dp0, dp2, equalize};
use hcc_sgd::fp16;
use hcc_sparse::{Axis, CooMatrix, CsrMatrix, GridPartition, Rating};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = CooMatrix> {
    (2u32..40, 2u32..40, 1usize..300).prop_flat_map(|(rows, cols, nnz)| {
        proptest::collection::vec((0..rows, 0..cols, 0.5f32..5.0), nnz).prop_map(move |triples| {
            let entries = triples
                .into_iter()
                .map(|(u, i, r)| Rating::new(u, i, r))
                .collect();
            CooMatrix::new(rows, cols, entries).unwrap()
        })
    })
}

proptest! {
    #[test]
    fn grid_partition_is_a_partition(matrix in arb_matrix(), workers in 1usize..6) {
        for axis in [Axis::Row, Axis::Col] {
            let grid = GridPartition::build_uniform(&matrix, axis, workers);
            // Every entry lands in exactly one shard.
            let total: usize = grid.shard_sizes().iter().sum();
            prop_assert_eq!(total, matrix.nnz());
            // Ranges are contiguous and cover the axis.
            prop_assert_eq!(grid.range(0).start, 0);
            let len = match axis { Axis::Row => matrix.rows(), Axis::Col => matrix.cols() };
            prop_assert_eq!(grid.range(workers - 1).end, len);
            for w in 0..workers {
                let range = grid.range(w);
                for e in grid.shard(w) {
                    let key = match axis { Axis::Row => e.u, Axis::Col => e.i };
                    prop_assert!(range.contains(&key));
                }
            }
        }
    }

    #[test]
    fn csr_coo_roundtrip(matrix in arb_matrix()) {
        let csr = CsrMatrix::from(&matrix);
        prop_assert_eq!(csr.nnz(), matrix.nnz());
        let back = csr.to_coo();
        let mut a: Vec<_> = matrix.entries().iter()
            .map(|e| (e.u, e.i, e.r.to_bits())).collect();
        let mut b: Vec<_> = back.entries().iter()
            .map(|e| (e.u, e.i, e.r.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fp16_roundtrip_error_bound(x in -60000.0f32..60000.0) {
        let y = fp16::f16_to_f32(fp16::f32_to_f16(x));
        // Normal range: relative error ≤ 2^-11; near zero: absolute error
        // bounded by the largest subnormal step.
        if x.abs() >= fp16::F16_MIN_POSITIVE {
            prop_assert!(((y - x) / x).abs() <= 1.0 / 2048.0 + 1e-7, "{} -> {}", x, y);
        } else {
            prop_assert!((y - x).abs() <= 2.0f32.powi(-24), "{} -> {}", x, y);
        }
    }

    #[test]
    fn fp16_encoding_is_monotone(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        // Order must be preserved (ties allowed after rounding).
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let dl = fp16::f16_to_f32(fp16::f32_to_f16(lo));
        let dh = fp16::f16_to_f32(fp16::f32_to_f16(hi));
        prop_assert!(dl <= dh, "{lo} -> {dl}, {hi} -> {dh}");
    }

    #[test]
    fn equalize_never_exceeds_any_single_worker_assignment(
        a in proptest::collection::vec(0.1f64..50.0, 2..6),
    ) {
        let b = vec![0.0; a.len()];
        let x = equalize(&a, &b);
        // Minimal max-cost can't beat the ideal parallel bound Σ(1/a)⁻¹ and
        // can't exceed the best single worker doing everything.
        let cost = x.iter().zip(&a).map(|(xi, ai)| xi * ai).fold(0.0f64, f64::max);
        let ideal = 1.0 / a.iter().map(|ai| 1.0 / ai).sum::<f64>();
        let best_single = a.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(cost >= ideal - 1e-9);
        prop_assert!(cost <= best_single + 1e-9);
    }

    #[test]
    fn dp0_dp2_compose_to_valid_partition(
        times in proptest::collection::vec(0.05f64..10.0, 2..6),
        sync in 0.0f64..0.5,
    ) {
        let x0 = dp0(&times);
        let t: Vec<f64> = x0.iter().zip(&times).map(|(x, t)| x * t).collect();
        let x2 = dp2(&x0, &t, sync);
        prop_assert!((x2.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(x2.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn simulated_epoch_time_is_monotone_in_load(
        rate in 1e7f64..1e9,
        nnz in 1_000_000u64..100_000_000,
        x in 0.1f64..1.0,
    ) {
        let platform = Platform::new("prop")
            .with_worker(ProcessorProfile::custom_cpu("w", 4, rate, 50e9), BusKind::PciE3x16);
        let wl = Workload { name: "prop".into(), m: 10_000, n: 1_000, nnz };
        let cfg = SimConfig::default();
        let t_small = simulate_epoch(&platform, &wl, &cfg, &[x * 0.5]).epoch_time;
        let t_big = simulate_epoch(&platform, &wl, &cfg, &[x]).epoch_time;
        prop_assert!(t_big >= t_small, "load up, time down: {t_small} -> {t_big}");
    }

    #[test]
    fn strategy_volumes_are_consistent(
        m in 1u64..1_000_000,
        n in 1u64..1_000_000,
        k in 1u64..256,
    ) {
        let full = TransferStrategy::FullPq.pull_bytes(m, n, k);
        let q = TransferStrategy::QOnly.pull_bytes(m, n, k);
        let half = TransferStrategy::HalfQ.pull_bytes(m, n, k);
        prop_assert!(q <= full);
        prop_assert_eq!(half * 2, q);
        prop_assert_eq!(full, 4 * k * (m + n));
    }
}

proptest! {
    #[test]
    fn triples_io_roundtrip(matrix in arb_matrix()) {
        // Dimensions are inferred from max indices, so compare entry sets.
        let mut buf = Vec::new();
        hcc_sparse::io::write_triples(&matrix, &mut buf).unwrap();
        let back = hcc_sparse::io::read_triples(&buf[..]).unwrap();
        let mut a: Vec<_> = matrix.entries().iter()
            .map(|e| (e.u, e.i, e.r.to_bits())).collect();
        let mut b: Vec<_> = back.entries().iter()
            .map(|e| (e.u, e.i, e.r.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn matrix_market_io_roundtrip(matrix in arb_matrix()) {
        let mut buf = Vec::new();
        hcc_sparse::io::write_matrix_market(&matrix, &mut buf).unwrap();
        let back = hcc_sparse::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert_eq!(back.rows(), matrix.rows());
        prop_assert_eq!(back.cols(), matrix.cols());
        prop_assert_eq!(back.nnz(), matrix.nnz());
    }

    #[test]
    fn checkpoint_roundtrip_any_dims(
        m in 1usize..20,
        n in 1usize..20,
        k in 1usize..9,
        seed in 0u64..1000,
    ) {
        let p = hcc_mf::FactorMatrix::random(m, k, seed);
        let q = hcc_mf::FactorMatrix::random(n, k, seed + 1);
        let dir = std::env::temp_dir().join("hcc_prop_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m{m}_n{n}_k{k}_{seed}.hccmf"));
        hcc_mf::save_model(&path, &p, &q).unwrap();
        let (p2, q2) = hcc_mf::load_model(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(p, p2);
        prop_assert_eq!(q, q2);
    }

    #[test]
    fn corrupted_checkpoint_never_panics_and_never_loads(
        m in 1usize..16,
        n in 1usize..16,
        k in 1usize..6,
        seed in 0u64..500,
        // Corruption: either truncate to `cut` fraction of the file or flip
        // one bit at a fractional offset.
        truncate in 0u8..2,
        frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let truncate = truncate == 1;
        let p = hcc_mf::FactorMatrix::random(m, k, seed);
        let q = hcc_mf::FactorMatrix::random(n, k, seed + 1);
        let dir = std::env::temp_dir().join("hcc_prop_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("c{m}_{n}_{k}_{seed}.hccmf"));
        hcc_mf::save_model(&path, &p, &q).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        if truncate {
            let cut = ((bytes.len() as f64) * frac) as usize;
            bytes.truncate(cut);
        } else {
            let pos = (((bytes.len() - 1) as f64) * frac) as usize;
            bytes[pos] ^= 1 << bit;
        }
        std::fs::write(&path, &bytes).unwrap();
        // Must surface a typed error — a panic fails the test harness, and
        // Ok would mean corruption slipped past the CRC/shape checks.
        let loaded = hcc_mf::load_model(&path);
        std::fs::remove_file(&path).ok();
        prop_assert!(loaded.is_err(), "corrupted checkpoint loaded: trunc={truncate} frac={frac}");
    }

    #[test]
    fn csc_csr_agree_on_entry_multiset(matrix in arb_matrix()) {
        let csr = hcc_sparse::CsrMatrix::from(&matrix);
        let csc = hcc_sparse::CscMatrix::from(&matrix);
        let mut a: Vec<_> = csr.iter().map(|(u, i, r)| (u, i, r.to_bits())).collect();
        let mut b: Vec<_> = csc.iter().map(|(u, i, r)| (u, i, r.to_bits())).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn dp1_step_never_increases_group_gap_under_linear_model(
        rates in proptest::collection::vec(1e5f64..1e7, 2..6),
        split in 1usize..5,
    ) {
        use hcc_partition::{dp0, dp1_step, WorkerClass};
        let n = rates.len();
        let split = split.min(n - 1);
        let classes: Vec<WorkerClass> = (0..n)
            .map(|i| if i < split { WorkerClass::Cpu } else { WorkerClass::Gpu })
            .collect();
        // Linear model: t_i = x_i / rate_i.
        let measure = |x: &[f64]| -> Vec<f64> {
            x.iter().zip(&rates).map(|(xi, r)| xi / r).collect()
        };
        let gap = |t: &[f64]| -> f64 {
            let cpu: Vec<f64> = t.iter().zip(&classes)
                .filter(|(_, c)| **c == WorkerClass::Cpu).map(|(v, _)| *v).collect();
            let gpu: Vec<f64> = t.iter().zip(&classes)
                .filter(|(_, c)| **c == WorkerClass::Gpu).map(|(v, _)| *v).collect();
            let mc = cpu.iter().sum::<f64>() / cpu.len() as f64;
            let mg = gpu.iter().sum::<f64>() / gpu.len() as f64;
            (mc - mg).abs() / mc.min(mg).max(f64::MIN_POSITIVE)
        };
        // Start from a deliberately bad partition: uniform.
        let x0 = vec![1.0 / n as f64; n];
        let t0 = measure(&x0);
        if let Some(x1) = dp1_step(&x0, &t0, &classes, 0.0) {
            let t1 = measure(&x1);
            prop_assert!(gap(&t1) <= gap(&t0) + 1e-9,
                "gap grew: {} -> {}", gap(&t0), gap(&t1));
        }
        // And DP0 from exact standalone times is already balanced.
        let standalone: Vec<f64> = rates.iter().map(|r| 1.0 / r).collect();
        let x = dp0(&standalone);
        let t = measure(&x);
        prop_assert!(gap(&t) < 1e-9, "dp0 not balanced: {:?}", t);
    }

    #[test]
    fn more_streams_never_slow_the_simulated_epoch(
        rate in 1e8f64..1e9,
        bus_gb in 1.0f64..20.0,
        streams in 1usize..8,
    ) {
        let platform = Platform::new("prop").with_worker(
            ProcessorProfile::custom_gpu("g", rate, 400e9, 0.0),
            BusKind::Custom(bus_gb * 1e9),
        );
        let wl = Workload { name: "prop".into(), m: 100_000, n: 50_000, nnz: 30_000_000 };
        let base = simulate_epoch(
            &platform, &wl,
            &SimConfig { streams: 1, ..Default::default() }, &[1.0],
        ).epoch_time;
        let piped = simulate_epoch(
            &platform, &wl,
            &SimConfig { streams, ..Default::default() }, &[1.0],
        ).epoch_time;
        prop_assert!(piped <= base * 1.0001, "streams {streams}: {piped} > {base}");
    }

    #[test]
    fn gini_bounded(counts in proptest::collection::vec(0u32..1000, 1..50)) {
        let g = hcc_sparse::stats::gini(&counts);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
    }
}
