//! End-to-end integration tests: every solver trains to convergence on the
//! same planted-factor data, across partition modes, strategies, and
//! transports.

use hcc_baselines::{CumfSgdSim, Fpsgd, SerialSgd, TrainConfig};
use hcc_mf::{
    HccConfig, HccMf, LearningRate, PartitionMode, TransferStrategy, TransportKind, WorkerSpec,
};
use hcc_sparse::{train_test_split, GenConfig, SyntheticDataset};

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(GenConfig {
        rows: 400,
        cols: 200,
        nnz: 12_000,
        planted_rank: 6,
        noise: 0.0,
        ..GenConfig::default()
    })
}

fn hcc_base() -> hcc_mf::HccConfigBuilder {
    HccConfig::builder()
        .k(8)
        .epochs(15)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.005)
        .workers(vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2)])
        .track_rmse(true)
}

/// RMSE must drop below 40% of its initial value to count as converged.
fn assert_converged(history: &[f64], label: &str) {
    assert!(
        history.last().unwrap() < &(history[0] * 0.4),
        "{label} did not converge: {} -> {}",
        history[0],
        history.last().unwrap()
    );
}

#[test]
fn all_solvers_converge_on_the_same_data() {
    let ds = dataset();
    let cfg = TrainConfig {
        k: 8,
        epochs: 15,
        learning_rate: LearningRate::Constant(0.02),
        lambda_p: 0.005,
        lambda_q: 0.005,
        threads: 4,
        seed: 1,
        track_rmse: true,
    };
    assert_converged(&SerialSgd.train(&ds.matrix, &cfg).rmse_history, "serial");
    assert_converged(
        &Fpsgd::default().train(&ds.matrix, &cfg).rmse_history,
        "fpsgd",
    );
    assert_converged(
        &CumfSgdSim::default().train(&ds.matrix, &cfg).rmse_history,
        "cumf-sim",
    );
    let report = HccMf::new(hcc_base().build()).train(&ds.matrix).unwrap();
    assert_converged(&report.rmse_history, "hcc-mf");
}

#[test]
fn every_partition_mode_converges() {
    let ds = dataset();
    for mode in [
        PartitionMode::Uniform,
        PartitionMode::Dp0,
        PartitionMode::Dp1,
        PartitionMode::Dp2,
        PartitionMode::Auto,
    ] {
        let report = HccMf::new(hcc_base().partition(mode).build())
            .train(&ds.matrix)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        assert_converged(&report.rmse_history, &format!("{mode:?}"));
    }
}

#[test]
fn every_strategy_and_transport_converges() {
    let ds = dataset();
    for strategy in TransferStrategy::ALL {
        for transport in [
            TransportKind::Shared,
            TransportKind::CommP,
            TransportKind::Socket,
            TransportKind::Tcp,
        ] {
            let report = HccMf::new(hcc_base().strategy(strategy).transport(transport).build())
                .train(&ds.matrix)
                .unwrap();
            assert_converged(&report.rmse_history, &format!("{strategy:?}/{transport:?}"));
        }
    }
}

#[test]
fn sharded_server_converges_on_every_wire() {
    // The row-aligned strategies behind 2 server shards, across all three
    // wire implementations (in-process, Unix socket, TCP).
    let ds = dataset();
    for strategy in [TransferStrategy::QOnly, TransferStrategy::HalfQ] {
        for transport in [
            TransportKind::Shared,
            TransportKind::Socket,
            TransportKind::Tcp,
        ] {
            let report = HccMf::new(
                hcc_base()
                    .strategy(strategy)
                    .transport(transport)
                    .server_shards(2)
                    .build(),
            )
            .train(&ds.matrix)
            .unwrap();
            assert_converged(
                &report.rmse_history,
                &format!("sharded {strategy:?}/{transport:?}"),
            );
        }
    }
}

#[test]
fn async_pipeline_converges_and_reports_overlap() {
    let ds = dataset();
    let report = HccMf::new(hcc_base().streams(4).build())
        .train(&ds.matrix)
        .unwrap();
    assert_converged(&report.rmse_history, "async-4-streams");
    // Stats still recorded per worker/epoch.
    assert_eq!(report.worker_stats.len(), 15);
    assert_eq!(report.worker_stats[0].len(), 2);
}

#[test]
fn hcc_matches_serial_quality_on_held_out_data() {
    let ds = dataset();
    let (train, test) = train_test_split(&ds.matrix, 0.15, 3).unwrap();
    let serial_cfg = TrainConfig {
        k: 8,
        epochs: 20,
        learning_rate: LearningRate::Constant(0.02),
        lambda_p: 0.005,
        lambda_q: 0.005,
        threads: 1,
        seed: 1,
        track_rmse: false,
    };
    let serial = SerialSgd.train(&train, &serial_cfg);
    let serial_test = hcc_sgd::rmse(test.entries(), &serial.p, &serial.q);

    let hcc = HccMf::new(hcc_base().epochs(20).build())
        .train(&train)
        .unwrap();
    let hcc_test = hcc_sgd::rmse(test.entries(), &hcc.p, &hcc.q);

    // Collaborative training must be within 30% of serial's held-out RMSE —
    // the paper's "equivalent convergence rate" claim (§4.2), loosely.
    assert!(
        hcc_test < serial_test * 1.3,
        "hcc {hcc_test} much worse than serial {serial_test}"
    );
}

#[test]
fn single_worker_hcc_behaves_like_centralized() {
    let ds = dataset();
    let report = HccMf::new(
        hcc_base()
            .workers(vec![WorkerSpec::cpu(2)])
            .epochs(10)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_converged(&report.rmse_history, "single-worker");
    // All data on the one worker.
    assert_eq!(report.final_partition().unwrap(), &[1.0]);
}

#[test]
fn many_workers_with_tiny_dataset() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 20,
        cols: 10,
        nnz: 80,
        noise: 0.0,
        ..GenConfig::default()
    });
    // More workers than is sensible; some shards may be near-empty.
    let report = HccMf::new(
        hcc_base()
            .workers((0..6).map(|_| WorkerSpec::cpu(1)).collect())
            .epochs(5)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_eq!(report.epoch_times.len(), 5);
    assert_eq!(report.total_updates, 80 * 5);
}

#[test]
fn wire_volume_ordering_matches_strategies() {
    let ds = dataset();
    let mut bytes = Vec::new();
    for strategy in TransferStrategy::ALL {
        let report = HccMf::new(
            hcc_base()
                .strategy(strategy)
                .epochs(5)
                .adapt_epochs(0)
                .build(),
        )
        .train(&ds.matrix)
        .unwrap();
        bytes.push(report.wire_bytes);
    }
    // FullPq > QOnly > HalfQ.
    assert!(bytes[0] > bytes[1], "{bytes:?}");
    assert!(bytes[1] > bytes[2], "{bytes:?}");
    // HalfQ is exactly half of QOnly (same elements, 2 bytes each).
    assert_eq!(bytes[1], bytes[2] * 2, "{bytes:?}");
}

#[test]
fn early_stopping_halts_on_plateau() {
    let ds = dataset();
    let report = HccMf::new(
        hcc_base()
            .epochs(60)
            .early_stop(hcc_mf::EarlyStop {
                min_rel_improvement: 0.01,
                patience: 2,
            })
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert!(
        report.rmse_history.len() < 60,
        "never stopped: {} epochs",
        report.rmse_history.len()
    );
    // It must have converged meaningfully before giving up.
    assert_converged(&report.rmse_history, "early-stopped");
    // Report vectors stay consistent with the actual epoch count.
    assert_eq!(report.epoch_times.len(), report.rmse_history.len());
    assert_eq!(report.worker_stats.len(), report.rmse_history.len());
}

#[test]
fn early_stop_requires_rmse_tracking() {
    let err = HccConfig::builder()
        .track_rmse(false)
        .early_stop(hcc_mf::EarlyStop::default())
        .try_build();
    assert!(err.is_err());
}

#[test]
fn checkpoint_roundtrips_trained_model() {
    let ds = dataset();
    let report = HccMf::new(hcc_base().epochs(5).build())
        .train(&ds.matrix)
        .unwrap();
    let dir = std::env::temp_dir().join("hcc_e2e_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.hccmf");
    hcc_mf::save_model(&path, &report.p, &report.q).unwrap();
    let (p, q) = hcc_mf::load_model(&path).unwrap();
    assert_eq!(p, report.p);
    assert_eq!(q, report.q);
    // A recommender built from the loaded model serves identical scores.
    let rec_a = hcc_mf::Recommender::new(report.p, report.q, &ds.matrix);
    let rec_b = hcc_mf::Recommender::new(p, q, &ds.matrix);
    assert_eq!(rec_a.top_k(0, 5).unwrap(), rec_b.top_k(0, 5).unwrap());
    std::fs::remove_file(path).ok();
}

#[test]
fn related_work_solvers_converge_too() {
    let ds = dataset();
    let cfg = TrainConfig {
        k: 8,
        epochs: 15,
        learning_rate: LearningRate::Constant(0.02),
        lambda_p: 0.005,
        lambda_q: 0.005,
        threads: 3,
        seed: 1,
        track_rmse: true,
    };
    assert_converged(
        &hcc_baselines::Dsgd::default()
            .train(&ds.matrix, &cfg)
            .rmse_history,
        "dsgd",
    );
    assert_converged(
        &hcc_baselines::Nomad.train(&ds.matrix, &cfg).rmse_history,
        "nomad",
    );
}

#[test]
fn repartitioning_preserves_training_progress() {
    // Force a repartition every adaptation epoch with strongly heterogeneous
    // workers; RMSE must keep (weakly) improving through the repartitions —
    // i.e. no P rows are lost when shards move between workers.
    let ds = dataset();
    let report = HccMf::new(
        hcc_base()
            .epochs(10)
            .adapt_epochs(6)
            .workers(vec![
                WorkerSpec::cpu(1).throttled(0.4),
                WorkerSpec::gpu_sim(3),
            ])
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    // At least one repartition actually happened.
    let changed = report.partition_history.windows(2).any(|w| w[0] != w[1]);
    assert!(
        changed,
        "no repartition occurred: {:?}",
        report.partition_history
    );
    // RMSE after each adaptation epoch is no worse than 1.2x the previous
    // (progress is preserved; small Hogwild noise allowed).
    for pair in report.rmse_history.windows(2) {
        assert!(
            pair[1] < pair[0] * 1.2,
            "regression: {:?}",
            report.rmse_history
        );
    }
    assert_converged(&report.rmse_history, "repartitioned");
}

#[test]
fn biased_pipeline_improves_ranking_on_test_set() {
    let ds = dataset();
    let (train, test) = train_test_split(&ds.matrix, 0.2, 11).unwrap();
    let trainer = HccMf::new(hcc_base().epochs(20).build());
    let (baseline, _, biased) = trainer.train_biased(&train, 10.0).unwrap();
    // The baseline alone already explains part of the test set; the full
    // model must beat the baseline alone.
    let baseline_rmse = baseline.rmse(test.entries());
    let full_rmse = biased.rmse(test.entries());
    assert!(
        full_rmse < baseline_rmse,
        "factors added nothing: full {full_rmse} vs baseline {baseline_rmse}"
    );
}

#[test]
fn ranking_metrics_work_end_to_end() {
    let ds = dataset();
    let (train, test) = train_test_split(&ds.matrix, 0.2, 5).unwrap();
    let report = HccMf::new(hcc_base().epochs(20).build())
        .train(&train)
        .unwrap();
    let rec = hcc_mf::Recommender::new(report.p, report.q, &train);
    let threshold = ds.matrix.mean_rating() as f32;
    let metrics = hcc_mf::evaluate_ranking(&rec, &test, 10, threshold);
    assert!(metrics.users_evaluated > 10);
    assert!(metrics.ndcg > 0.0 && metrics.ndcg <= 1.0);
    assert!(metrics.precision <= 1.0 && metrics.recall <= 1.0);
}

#[test]
fn warm_start_resumes_from_checkpoint() {
    let ds = dataset();
    // Phase 1: train 10 epochs, checkpoint.
    let first = HccMf::new(hcc_base().epochs(10).build())
        .train(&ds.matrix)
        .unwrap();
    let resumed_rmse0 = {
        // Phase 2: resume from the phase-1 factors for 1 epoch; its first
        // tracked RMSE must start near phase 1's end, far below a cold
        // start's first epoch.
        let report = HccMf::new(
            hcc_base()
                .epochs(1)
                .adapt_epochs(0)
                .warm_start(first.p.clone(), first.q.clone())
                .build(),
        )
        .train(&ds.matrix)
        .unwrap();
        report.rmse_history[0]
    };
    let cold_rmse0 = HccMf::new(hcc_base().epochs(1).build())
        .train(&ds.matrix)
        .unwrap()
        .rmse_history[0];
    assert!(
        resumed_rmse0 < cold_rmse0 * 0.6,
        "warm {resumed_rmse0} not better than cold {cold_rmse0}"
    );
}

#[test]
fn warm_start_dimension_mismatch_rejected() {
    let ds = dataset();
    let bad = hcc_mf::FactorMatrix::zeros(7, 8);
    let good_q = hcc_mf::FactorMatrix::zeros(200, 8);
    let cfg = hcc_base().warm_start(bad, good_q).build();
    assert!(HccMf::new(cfg).train(&ds.matrix).is_err());
    // k mismatch is caught at build time.
    let err = HccConfig::builder()
        .k(16)
        .warm_start(
            hcc_mf::FactorMatrix::zeros(4, 8),
            hcc_mf::FactorMatrix::zeros(4, 8),
        )
        .try_build();
    assert!(err.is_err());
}

#[test]
fn adagrad_optimizer_converges_in_framework() {
    let ds = dataset();
    let report = HccMf::new(
        hcc_base()
            .optimizer(hcc_mf::Optimizer::AdaGrad {
                eta0: 0.08,
                epsilon: 1e-8,
            })
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_converged(&report.rmse_history, "adagrad");
    // AdaGrad should also survive the async pipeline.
    let report = HccMf::new(
        hcc_base()
            .optimizer(hcc_mf::Optimizer::AdaGrad {
                eta0: 0.08,
                epsilon: 1e-8,
            })
            .streams(3)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_converged(&report.rmse_history, "adagrad-async");
}

#[test]
fn momentum_optimizer_converges_in_framework() {
    let ds = dataset();
    let report = HccMf::new(
        hcc_base()
            .optimizer(hcc_mf::Optimizer::Momentum { beta: 0.9 })
            .learning_rate(LearningRate::Constant(0.004))
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_converged(&report.rmse_history, "momentum");
}
