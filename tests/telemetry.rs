//! End-to-end telemetry tests: the observability subsystem is disabled by
//! default, records a coherent per-worker timeline when enabled, survives a
//! JSONL round trip through disk, and produces the measured-vs-model report
//! for every data-partition strategy.

use hcc_mf::{HccConfig, HccMf, PartitionMode, WorkerSpec};
use hcc_sparse::{GenConfig, SyntheticDataset};
use hcc_telemetry::{epoch_breakdown, Event, Phase};
use std::sync::Mutex;

/// The wall-clock coverage check compares measured spans against measured
/// wall time; concurrent tests stealing cores would skew that comparison,
/// so every test in this binary takes this lock and they run one at a time.
static SEQ: Mutex<()> = Mutex::new(());

fn sequential() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn dataset(nnz: usize) -> SyntheticDataset {
    SyntheticDataset::generate(GenConfig {
        rows: 600,
        cols: 300,
        nnz,
        seed: 11,
        ..GenConfig::default()
    })
}

fn four_workers() -> Vec<WorkerSpec> {
    vec![
        WorkerSpec::cpu(1),
        WorkerSpec::cpu(1),
        WorkerSpec::cpu(1),
        WorkerSpec::cpu(1),
    ]
}

#[test]
fn telemetry_disabled_by_default() {
    let _seq = sequential();
    let ds = dataset(4_000);
    let config = HccConfig::builder()
        .k(8)
        .epochs(2)
        .workers(vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2)])
        .build();
    let report = HccMf::new(config).train(&ds.matrix).unwrap();
    assert!(report.timeline.is_none());
}

/// The tentpole acceptance check: with telemetry on, a deterministic
/// 4-worker run's recorded spans must account for the epoch wall clock.
/// The epoch's critical path is the slowest worker's `pull + comp + push`
/// chain followed by the server's serial merges, so that sum — computable
/// entirely from the recorded per-worker phase totals — must land within
/// 5% of the recorded epoch wall time.
#[test]
fn phase_spans_account_for_epoch_wall_clock() {
    let _seq = sequential();
    // Comp-dominated workload: per-epoch compute of a few hundred
    // milliseconds, so the fixed per-epoch overhead the spans legitimately
    // do not cover (thread spawn/join, merge-loop bookkeeping, a few ms)
    // stays far below the 5% tolerance.
    let ds = dataset(400_000);
    let path = std::env::temp_dir().join("hcc_telemetry_wall.jsonl");
    let config = HccConfig::builder()
        .k(32)
        .epochs(3)
        .workers(four_workers())
        .seed(7)
        .telemetry(&path)
        .build();
    let report = HccMf::new(config).train(&ds.matrix).unwrap();
    let timeline = report.timeline.as_ref().expect("telemetry was enabled");
    assert_eq!(timeline.dropped, 0, "ring buffers overflowed");

    let breakdown = epoch_breakdown(timeline);
    assert_eq!(breakdown.len(), 3);
    for b in &breakdown {
        assert!(b.wall > 0.0, "epoch {} has no EpochEnd wall time", b.epoch);
        assert_eq!(b.workers.len(), 4);
        let slowest_chain = b
            .workers
            .iter()
            .map(|t| t.pull + t.comp + t.push)
            .fold(0.0f64, f64::max);
        let total_sync: f64 = b.workers.iter().map(|t| t.sync).sum();
        let covered = slowest_chain + total_sync;
        let rel = (covered - b.wall).abs() / b.wall;
        assert!(
            rel <= 0.05,
            "epoch {}: spans cover {:.2} ms of {:.2} ms wall ({:.1}% off)",
            b.epoch,
            covered * 1e3,
            b.wall * 1e3,
            rel * 100.0
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn jsonl_file_round_trips_through_disk() {
    let _seq = sequential();
    let ds = dataset(6_000);
    let path = std::env::temp_dir().join("hcc_telemetry_roundtrip.jsonl");
    let config = HccConfig::builder()
        .k(8)
        .epochs(3)
        .workers(four_workers())
        .seed(3)
        .strategy(hcc_mf::TransferStrategy::HalfQ)
        .telemetry(&path)
        .build();
    let report = HccMf::new(config).train(&ds.matrix).unwrap();
    let in_memory = report.timeline.as_ref().unwrap();

    let raw = std::fs::read_to_string(&path).unwrap();
    let parsed = hcc_telemetry::jsonl::parse(&raw).unwrap();
    assert_eq!(&parsed, in_memory);
    assert_eq!(parsed.header.workers, 4);
    assert_eq!(parsed.header.strategy, "half-q");

    // The timeline carries every event family the epoch loop emits.
    let has = |f: fn(&Event) -> bool| parsed.events.iter().any(f);
    assert!(has(|e| matches!(
        e,
        Event::Phase {
            phase: Phase::Comp,
            ..
        }
    )));
    assert!(has(|e| matches!(
        e,
        Event::Phase {
            phase: Phase::Sync,
            ..
        }
    )));
    assert!(has(|e| matches!(e, Event::Bytes { .. })));
    assert!(has(|e| matches!(e, Event::EpochEnd { .. })));
    std::fs::remove_file(&path).ok();
}

/// The measured-vs-model workflow must produce a report under each of the
/// paper's partition strategies (DP0, DP1, DP2).
#[test]
fn model_validation_runs_for_all_partition_modes() {
    let _seq = sequential();
    let ds = dataset(20_000);
    for mode in [PartitionMode::Dp0, PartitionMode::Dp1, PartitionMode::Dp2] {
        let path = std::env::temp_dir().join(format!("hcc_telemetry_{mode:?}.jsonl"));
        let config = HccConfig::builder()
            .k(16)
            .epochs(4)
            .workers(vec![
                WorkerSpec::cpu(1),
                WorkerSpec::cpu(1).throttled(0.5),
                WorkerSpec::cpu(2),
                WorkerSpec::cpu(1),
            ])
            .partition(mode)
            .seed(5)
            .telemetry(&path)
            .build();
        let report = HccMf::new(config).train(&ds.matrix).unwrap();
        let v = hcc_mf::observe::model_validation(&report)
            .unwrap_or_else(|| panic!("no validation report under {mode:?}"));
        assert_eq!(v.rows.len(), 4, "{mode:?}");
        assert!(v.epochs_scored >= 1, "{mode:?}");
        assert!(v.mean_error.is_finite(), "{mode:?}");
        for row in &v.rows {
            assert!(row.bandwidth > 0.0, "{mode:?}: worker {}", row.worker);
        }
        let text = hcc_mf::observe::model_validation_text(&v);
        assert!(text.contains("cost-model validation"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}

/// The disabled-by-default budget: instrumentation left in the hot path
/// must cost well under 2% of any epoch. An epoch makes roughly
/// `3 × workers` phase calls plus one sync span per worker and a handful
/// of byte/end events — about 25 calls at 4 workers — so at the asserted
/// per-call ceiling of 1 µs the overhead stays below 2% for any epoch
/// longer than 1.25 ms (real epochs are tens to hundreds of ms).
#[test]
fn disabled_mode_overhead_is_negligible() {
    let _seq = sequential();
    let telemetry = hcc_mf::Telemetry::disabled();
    let calls = 1_000_000u32;
    let start = std::time::Instant::now();
    for i in 0..calls {
        let t0 = telemetry.now_us();
        telemetry.phase(
            i % 4,
            i,
            i % 4,
            Phase::Comp,
            t0,
            std::time::Duration::from_micros(1),
        );
    }
    let per_call = start.elapsed().as_secs_f64() / calls as f64;
    assert!(
        per_call < 1e-6,
        "disabled telemetry call costs {:.0} ns",
        per_call * 1e9
    );
}

/// Supervisor events (straggler / rollback) land in the timeline when the
/// fault-tolerance layer is active and a fault plan injects disruptions.
#[test]
fn supervised_run_records_fault_events() {
    let _seq = sequential();
    use hcc_mf::FaultPlan;
    let ds = dataset(8_000);
    let path = std::env::temp_dir().join("hcc_telemetry_faults.jsonl");
    let plan = FaultPlan::new(1).stall(2, 1, 80);
    let config = HccConfig::builder()
        .k(8)
        .epochs(4)
        .workers(four_workers())
        .seed(9)
        .fault_tolerance(hcc_mf::SupervisorConfig {
            straggler_factor: 2.0,
            ..hcc_mf::SupervisorConfig::default()
        })
        .fault_plan(plan)
        .telemetry(&path)
        .build();
    let report = HccMf::new(config).train(&ds.matrix).unwrap();
    let timeline = report.timeline.as_ref().unwrap();
    assert!(
        timeline
            .events
            .iter()
            .any(|e| matches!(e, Event::Straggler { worker: 2, .. })),
        "stalled worker never flagged: {:?}",
        timeline
            .events
            .iter()
            .filter(|e| !matches!(e, Event::Phase { .. }))
            .collect::<Vec<_>>()
    );
    std::fs::remove_file(&path).ok();
}
