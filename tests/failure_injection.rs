//! Failure-injection and degenerate-input tests: stragglers, empty shards,
//! pathological matrices, NaN guards.

use hcc_mf::{HccConfig, HccMf, LearningRate, PartitionMode, WorkerSpec};
use hcc_sparse::{CooMatrix, GenConfig, Rating, SyntheticDataset};

fn base() -> hcc_mf::HccConfigBuilder {
    HccConfig::builder()
        .k(4)
        .epochs(6)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.01)
        .track_rmse(true)
}

#[test]
fn straggler_worker_does_not_break_training() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 300,
        cols: 150,
        nnz: 9_000,
        noise: 0.0,
        ..GenConfig::default()
    });
    // One worker runs at 20% speed — the bucket-effect scenario of §1.
    let report = HccMf::new(
        base()
            .workers(vec![WorkerSpec::cpu(2), WorkerSpec::cpu(2).throttled(0.2)])
            .adapt_epochs(3)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    // Adaptation must shift data away from the straggler.
    let x = report.final_partition().unwrap();
    assert!(x[0] > x[1], "straggler kept too much data: {x:?}");
}

#[test]
fn single_column_matrix_trains() {
    let entries: Vec<Rating> = (0..50).map(|u| Rating::new(u, 0, 3.0)).collect();
    let m = CooMatrix::new(50, 1, entries).unwrap();
    let report = HccMf::new(base().build()).train(&m).unwrap();
    assert!(report.rmse_history.last().unwrap().is_finite());
}

#[test]
fn single_row_matrix_trains_via_transpose() {
    let entries: Vec<Rating> = (0..50).map(|i| Rating::new(0, i, 2.0)).collect();
    let m = CooMatrix::new(1, 50, entries).unwrap();
    let report = HccMf::new(base().build()).train(&m).unwrap();
    assert!(report.transposed);
    assert_eq!(report.p.rows(), 1);
    assert_eq!(report.q.rows(), 50);
}

#[test]
fn rows_with_no_entries_are_harmless() {
    // Only rows 0 and 99 are rated; the 98 empty rows must not disturb
    // the grid or the factors (their P rows just stay at initialization).
    let entries = vec![
        Rating::new(0, 0, 5.0),
        Rating::new(99, 1, 1.0),
        Rating::new(0, 1, 4.0),
    ];
    let m = CooMatrix::new(100, 2, entries).unwrap();
    let report = HccMf::new(base().epochs(3).build()).train(&m).unwrap();
    assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
    assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn constant_ratings_converge_to_constant_predictor() {
    let entries: Vec<Rating> = (0..200)
        .map(|j| Rating::new(j % 20, (j * 7) % 10, 3.0))
        .collect();
    let m = CooMatrix::new(20, 10, entries).unwrap();
    let report = HccMf::new(base().epochs(30).build()).train(&m).unwrap();
    assert!(
        report.final_rmse().unwrap() < 0.2,
        "constant data should be easy: {:?}",
        report.final_rmse()
    );
}

#[test]
fn extreme_learning_rate_produces_finite_failure_not_panic() {
    // γ = 5 diverges; factors may blow up but must not panic and RMSE must
    // be reported (possibly huge or NaN — we only require the run finishes).
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 50,
        cols: 30,
        nnz: 500,
        ..GenConfig::default()
    });
    let report = HccMf::new(
        base()
            .learning_rate(LearningRate::Constant(5.0))
            .epochs(3)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_eq!(report.rmse_history.len(), 3);
}

#[test]
fn duplicate_entries_are_tolerated() {
    let entries = vec![Rating::new(0, 0, 4.0); 100];
    let m = CooMatrix::new(2, 2, entries).unwrap();
    let report = HccMf::new(base().epochs(2).build()).train(&m).unwrap();
    assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn zero_adapt_epochs_freezes_partition() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 100,
        cols: 50,
        nnz: 2_000,
        ..GenConfig::default()
    });
    let report = HccMf::new(
        base()
            .adapt_epochs(0)
            .partition(PartitionMode::Dp1)
            .workers(vec![WorkerSpec::cpu(1), WorkerSpec::cpu(2)])
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    let first = &report.partition_history[0];
    for x in &report.partition_history {
        assert_eq!(x, first, "partition changed despite adapt_epochs = 0");
    }
}

#[test]
fn more_streams_than_columns_still_trains() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 60,
        cols: 3,
        nnz: 150,
        ..GenConfig::default()
    });
    let report = HccMf::new(base().streams(8).epochs(3).build())
        .train(&ds.matrix)
        .unwrap();
    assert_eq!(report.epoch_times.len(), 3);
    assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn k_equals_one_trains() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 80,
        cols: 40,
        nnz: 1_000,
        noise: 0.0,
        ..GenConfig::default()
    });
    let report = HccMf::new(base().k(1).epochs(10).build())
        .train(&ds.matrix)
        .unwrap();
    assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    assert_eq!(report.p.k(), 1);
}

#[test]
fn all_workers_throttled_still_finish() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 60,
        cols: 30,
        nnz: 600,
        ..GenConfig::default()
    });
    let report = HccMf::new(
        base()
            .epochs(2)
            .workers(vec![
                WorkerSpec::cpu(1).throttled(0.3),
                WorkerSpec::cpu(1).throttled(0.3),
            ])
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_eq!(report.epoch_times.len(), 2);
}

#[test]
fn streams_with_comm_strategy_halfq_converges() {
    // FP16 wire + async chunked pipeline together: the lossiest path.
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 200,
        cols: 120,
        nnz: 5_000,
        noise: 0.0,
        ..GenConfig::default()
    });
    let report = HccMf::new(
        base()
            .epochs(12)
            .strategy(hcc_mf::TransferStrategy::HalfQ)
            .streams(3)
            .learning_rate(LearningRate::Constant(0.02))
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert!(
        report.rmse_history.last().unwrap() < &(report.rmse_history[0] * 0.6),
        "{:?}",
        report.rmse_history
    );
}

#[test]
fn gigantic_k_relative_to_data_stays_finite() {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 20,
        cols: 15,
        nnz: 100,
        ..GenConfig::default()
    });
    let report = HccMf::new(base().k(64).epochs(3).build())
        .train(&ds.matrix)
        .unwrap();
    assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
    assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
}
