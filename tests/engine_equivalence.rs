//! Threaded engine vs DES twin: the two executions of the same plan must
//! tell the same story.
//!
//! The threaded engine (`hcc_mf::HccMf` under a `FaultPlan`) runs real
//! threads against real factors; the hetsim discrete-event simulator
//! (`simulate_epoch_des_faulty`) replays the same fault vocabulary on a
//! virtual calendar. Neither knows about the other, so agreement is
//! evidence both implement the *model* — per-epoch update counts follow the
//! partition plan exactly, and a fault changes participation identically in
//! both engines:
//!
//! * every epoch's `worker_stats[e][w].updates` equals the entry count of
//!   shard `w` in the `GridPartition` rebuilt from that epoch's recorded
//!   `partition_history[e]` fractions (crashed worker ⇒ 0);
//! * a worker computes in the DES trace (has a `Compute` span) exactly when
//!   the threaded engine counted updates for it;
//! * stalls delay but never drop work, and dropped pushes waste the bus but
//!   never the compute, in both engines.

use hcc_hetsim::{
    simulate_epoch_des_faulty, BusKind, Phase, Platform, ProcessorProfile, SimConfig, SimFault,
    Workload,
};
use hcc_mf::{
    FaultPlan, HccConfig, HccMf, HccReport, LearningRate, PartitionMode, SupervisorConfig,
    WorkerHealth, WorkerSpec,
};
use hcc_sparse::{Axis, CooMatrix, GenConfig, GridPartition, SyntheticDataset};
use std::time::Duration;

const ROWS: u32 = 200; // rows > cols so the trainer partitions the matrix as-is
const COLS: u32 = 100;
const NNZ: usize = 6_000;
const WORKERS: usize = 4;
const EPOCHS: usize = 8;

fn dataset(seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(GenConfig {
        rows: ROWS,
        cols: COLS,
        nnz: NNZ,
        noise: 0.1,
        seed,
        ..GenConfig::default()
    })
}

fn test_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_timeout: Duration::from_millis(200),
        collect_retries: 2,
        retry_backoff: 1.5,
        ..SupervisorConfig::default()
    }
}

fn config(seed: u64) -> hcc_mf::HccConfigBuilder {
    HccConfig::builder()
        .k(8)
        .epochs(EPOCHS)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.01)
        .workers(vec![WorkerSpec::cpu(1); WORKERS])
        .partition(PartitionMode::Uniform)
        .seed(seed)
        .fault_tolerance(test_supervisor())
}

/// The DES mirror of the threaded platform: `workers` identical
/// single-thread CPUs, so a uniform split is also the balanced one.
fn des_trace(workers: usize, faults: &[SimFault]) -> hcc_hetsim::EpochTrace {
    let mut platform = Platform::new("threaded-twin");
    for w in 0..workers {
        platform = platform.with_worker(
            ProcessorProfile::custom_cpu(&format!("cpu{w}"), 1, 50.0e6, 12.5e9),
            BusKind::Upi,
        );
    }
    let workload = Workload {
        name: "threaded-twin".into(),
        m: ROWS as u64,
        n: COLS as u64,
        nnz: NNZ as u64,
    };
    let config = SimConfig {
        k: 8,
        ..SimConfig::default()
    };
    let x = vec![1.0 / workers as f64; workers];
    simulate_epoch_des_faulty(&platform, &workload, &config, &x, faults)
}

fn has_compute(trace: &hcc_hetsim::EpochTrace, worker: usize) -> bool {
    trace
        .worker_spans(worker)
        .iter()
        .any(|s| s.phase == Phase::Compute)
}

/// Rebuilds epoch `e`'s row partition from the report's recorded fractions
/// and asserts `updates` matches the shard entry counts, except for workers
/// listed in `dead` (whose updates must be 0).
fn assert_updates_match_plan(matrix: &CooMatrix, report: &HccReport, e: usize, dead: &[usize]) {
    let fractions = &report.partition_history[e];
    let stats = &report.worker_stats[e];
    assert_eq!(
        fractions.len(),
        stats.len(),
        "epoch {e}: plan and stats disagree on worker count"
    );
    let grid = GridPartition::build(matrix, Axis::Row, fractions);
    // Boundaries are a contiguous cover of the row space.
    assert_eq!(grid.range(0).start, 0, "epoch {e}");
    assert_eq!(grid.range(fractions.len() - 1).end, ROWS, "epoch {e}");
    for w in 1..fractions.len() {
        assert_eq!(grid.range(w - 1).end, grid.range(w).start, "epoch {e}");
    }
    for (w, stat) in stats.iter().enumerate() {
        let want = if dead.contains(&w) {
            0
        } else {
            grid.shard(w).len() as u64
        };
        assert_eq!(
            stat.updates, want,
            "epoch {e}, worker {w}: updates vs shard plan"
        );
    }
}

#[test]
fn fault_free_updates_follow_the_partition_plan_every_epoch() {
    let ds = dataset(1);
    let report = HccMf::new(config(1).build()).train(&ds.matrix).unwrap();
    assert_eq!(report.worker_stats.len(), EPOCHS);
    assert_eq!(report.partition_history.len(), EPOCHS);
    for e in 0..EPOCHS {
        assert_eq!(report.worker_stats[e].len(), WORKERS);
        assert_updates_match_plan(&ds.matrix, &report, e, &[]);
        let total: u64 = report.worker_stats[e].iter().map(|s| s.updates).sum();
        assert_eq!(total, NNZ as u64, "epoch {e}: every rating updated once");
    }
    // DES twin: with no faults, everyone computes — exactly as the threaded
    // engine counted updates for everyone.
    let trace = des_trace(WORKERS, &[]);
    for w in 0..WORKERS {
        assert_eq!(
            has_compute(&trace, w),
            report.worker_stats[0][w].updates > 0,
            "worker {w}"
        );
    }
}

#[test]
fn crash_changes_participation_identically_in_both_engines() {
    const CRASH_WORKER: usize = 1;
    const CRASH_EPOCH: usize = 3;
    let ds = dataset(2);
    let plan = FaultPlan::new(2).crash(CRASH_WORKER, CRASH_EPOCH);
    let report = HccMf::new(config(2).fault_plan(plan).build())
        .train(&ds.matrix)
        .unwrap();

    // Before the crash: full 4-worker plan, all participating.
    for e in 0..CRASH_EPOCH {
        assert_eq!(report.worker_stats[e].len(), WORKERS);
        assert_updates_match_plan(&ds.matrix, &report, e, &[]);
    }

    // Crash epoch: the dead worker contributes zero updates; the survivors
    // still complete their planned shards.
    assert_eq!(
        report.health_history[CRASH_EPOCH][CRASH_WORKER],
        WorkerHealth::Dead
    );
    assert_updates_match_plan(&ds.matrix, &report, CRASH_EPOCH, &[CRASH_WORKER]);

    // After the crash: the plan shrinks to 3 workers and every rating is
    // again updated exactly once per epoch.
    for e in CRASH_EPOCH + 1..EPOCHS {
        assert_eq!(report.worker_stats[e].len(), WORKERS - 1, "epoch {e}");
        assert_updates_match_plan(&ds.matrix, &report, e, &[]);
        let total: u64 = report.worker_stats[e].iter().map(|s| s.updates).sum();
        assert_eq!(total, NNZ as u64, "epoch {e}");
    }

    // The DES twin of each epoch: compute-span presence must equal
    // "threaded engine counted updates > 0", worker by worker.
    for e in 0..EPOCHS {
        let workers = report.worker_stats[e].len();
        let faults = if e == CRASH_EPOCH {
            vec![SimFault::crash(CRASH_WORKER)]
        } else {
            vec![]
        };
        let trace = des_trace(workers, &faults);
        for w in 0..workers {
            assert_eq!(
                has_compute(&trace, w),
                report.worker_stats[e][w].updates > 0,
                "epoch {e}, worker {w}"
            );
        }
    }
}

#[test]
fn stall_delays_but_never_drops_work_in_both_engines() {
    const STALL_WORKER: usize = 2;
    const STALL_EPOCH: usize = 1;
    let ds = dataset(3);
    let plan = FaultPlan::new(3).stall(STALL_WORKER, STALL_EPOCH, 150);
    let report = HccMf::new(config(3).fault_plan(plan).build())
        .train(&ds.matrix)
        .unwrap();

    // Threaded: the straggler still finishes its whole shard every epoch.
    for e in 0..EPOCHS {
        assert_updates_match_plan(&ds.matrix, &report, e, &[]);
    }
    // The stall is visible in time, not in work: the stalled epoch's compute
    // for that worker includes the injected 150 ms.
    assert!(
        report.worker_stats[STALL_EPOCH][STALL_WORKER].compute >= Duration::from_millis(150),
        "stall must show up in compute time"
    );

    // DES: same story — the stalled worker computes (participation
    // unchanged) and the epoch's makespan stretches by about the stall.
    let plain = des_trace(WORKERS, &[]);
    let stalled = des_trace(WORKERS, &[SimFault::stall(STALL_WORKER, plain.epoch_time)]);
    assert!(has_compute(&stalled, STALL_WORKER));
    assert!(stalled.epoch_time > plain.epoch_time * 1.5);
}

#[test]
fn dropped_push_wastes_the_bus_but_not_the_compute_in_both_engines() {
    const DROP_WORKER: usize = 0;
    const DROP_EPOCH: usize = 2;
    let ds = dataset(4);
    let plan = FaultPlan::new(4).drop_push(DROP_WORKER, DROP_EPOCH);
    let report = HccMf::new(config(4).fault_plan(plan).build())
        .train(&ds.matrix)
        .unwrap();

    // Threaded: the work was done — updates follow the plan even in the
    // epoch whose push vanished.
    for e in 0..EPOCHS {
        assert_updates_match_plan(&ds.matrix, &report, e, &[]);
    }

    // DES: the push occupies the bus but the merge never happens.
    let trace = des_trace(WORKERS, &[SimFault::drop_push(DROP_WORKER)]);
    assert!(has_compute(&trace, DROP_WORKER));
    let spans = trace.worker_spans(DROP_WORKER);
    assert!(spans.iter().any(|s| s.phase == Phase::Push));
    assert!(spans.iter().all(|s| s.phase != Phase::Sync));
}
