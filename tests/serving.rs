//! Differential and chaos tests for the serving stack (`hcc-serve` plus the
//! checkpoint glue in `hcc-mf`).
//!
//! The optimized path — item-sharded store, SIMD dot kernels, bounded
//! per-shard heaps, batched fan-out — must be *rank-equivalent* to
//! [`hcc_serve::naive_top_k`], the deliberately naive scalar full-sort
//! oracle. "Rank-equivalent" rather than bit-identical: SIMD reassociates
//! float sums, so scores may differ in the last bits, and items whose
//! oracle scores tie within that tolerance may legally swap places.

use hcc_mf::{
    load_served_model, reload_from_checkpoint, save_model, HccConfig, HccError, HccMf,
    LearningRate, PartitionMode, WorkerSpec,
};
use hcc_serve::{naive_top_k, FoldInConfig, Precision, ServeEngine, ServedModel};
use hcc_sgd::{int8, FactorMatrix};
use hcc_sparse::{CooMatrix, CsrMatrix, GenConfig, Rating, SyntheticDataset};
use proptest::prelude::*;
use proptest::TestRng;
use rand::SeedableRng;
use std::fs;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// Rank-equivalence checker
// ---------------------------------------------------------------------------

/// Absolute score tolerance: factor entries are O(1) and k ≤ 128, so scalar
/// and SIMD dots agree to far better than this; ties inside the band are
/// allowed to permute.
const SCORE_EPS: f32 = 1e-4;

/// Asserts `got` is the same ranking as `want` up to score ties: identical
/// length, scores elementwise within [`SCORE_EPS`], and within every run of
/// oracle scores closer than the tolerance the item *sets* match (order
/// inside a tie band is unspecified).
fn assert_rank_equivalent(got: &[(u32, f32)], want: &[(u32, f32)], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: result length");
    let mut i = 0;
    while i < want.len() {
        let mut j = i + 1;
        while j < want.len() && (want[j - 1].1 - want[j].1).abs() <= SCORE_EPS {
            j += 1;
        }
        let mut a: Vec<u32> = got[i..j].iter().map(|e| e.0).collect();
        let mut b: Vec<u32> = want[i..j].iter().map(|e| e.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{ctx}: tie group at ranks {i}..{j}");
        for t in i..j {
            assert!(
                (got[t].1 - want[t].1).abs() <= SCORE_EPS,
                "{ctx}: score at rank {t}: got {}, oracle {}",
                got[t].1,
                want[t].1
            );
        }
        i = j;
    }
}

// ---------------------------------------------------------------------------
// Property: sharded + SIMD + heap == naive oracle
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Scenario {
    users: u32,
    items: u32,
    k: usize,
    seed: u64,
    shards: usize,
    count: usize,
    ratings: Vec<(u32, u32, f32)>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (1u32..24, 1u32..80, 1usize..12),
        // count_sel 13 maps to 100, exercising count ≫ items.
        (0u64..1 << 48, 1usize..7, 0usize..14),
    )
        .prop_flat_map(|((users, items, k), (seed, shards, count_sel))| {
            proptest::collection::vec((0..users, 0..items, 0.5f32..5.0), 0..200).prop_map(
                move |ratings| Scenario {
                    users,
                    items,
                    k,
                    seed,
                    shards,
                    count: if count_sel == 13 { 100 } else { count_sel },
                    ratings,
                },
            )
        })
}

/// The issue requires ≥256 cases; the vendored proptest shim's `proptest!`
/// macro runs 48 by default (env-tunable), so drive the strategy explicitly:
/// a deterministic per-case RNG, failure labelled with its case index and
/// full scenario (the shim has no shrinking).
const CASES: u64 = 256;

fn run_scenarios(salt: u64, f: impl Fn(&Scenario)) {
    let strat = scenario();
    for case in 0..CASES {
        let mut rng = TestRng::seed_from_u64(salt ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let s = Strategy::generate(&strat, &mut rng);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&s))) {
            eprintln!("failed at case {case}: {s:?}");
            resume_unwind(payload);
        }
    }
}

fn build_scenario(s: &Scenario) -> (FactorMatrix, FactorMatrix, Option<CooMatrix>) {
    let p = FactorMatrix::random(s.users as usize, s.k, s.seed);
    let q = FactorMatrix::random(s.items as usize, s.k, s.seed ^ 0x9e37_79b9);
    let train = (!s.ratings.is_empty()).then(|| {
        let entries = s
            .ratings
            .iter()
            .map(|&(u, i, r)| Rating::new(u, i, r))
            .collect();
        CooMatrix::new(s.users, s.items, entries).unwrap()
    });
    (p, q, train)
}

/// The tentpole invariant: for random shapes, shard counts, seen sets,
/// and k, every user's sharded top-k — single *and* batched — is
/// rank-equivalent to the scalar full-sort oracle.
#[test]
fn sharded_engine_matches_naive_oracle_over_256_cases() {
    run_scenarios(0x5e41_13c0, |s| {
        let (p, q, train) = build_scenario(s);
        let seen = train.as_ref().map(CsrMatrix::from);
        let model = ServedModel::build(p.clone(), q.clone(), train.as_ref(), s.shards).unwrap();
        assert!(model.shard_count() >= 1 && model.shard_count() <= s.items as usize);
        let engine = ServeEngine::new(model);

        let users: Vec<u32> = (0..s.users).collect();
        let mut singles = Vec::with_capacity(users.len());
        for &user in &users {
            let want = naive_top_k(&p, &q, seen.as_ref(), user, s.count);
            let got = engine.top_k(user, s.count).unwrap();
            assert_rank_equivalent(&got, &want, &format!("user {user}"));
            singles.push(got);
        }

        // The batched fan-out answers one snapshot and must agree with the
        // single-query path (same scan per shard, same merge order).
        let batch = engine.top_k_batch(&users, s.count).unwrap();
        assert_eq!(batch.len(), singles.len());
        for (user, (b, s1)) in users.iter().zip(batch.iter().zip(&singles)) {
            assert_rank_equivalent(b, s1, &format!("batch vs single, user {user}"));
        }
    });
}

/// Fold-in is deterministic and never mutates the served snapshot.
#[test]
fn fold_in_is_deterministic_and_pure_over_256_cases() {
    run_scenarios(0xf01d_ca5e, |s| {
        if s.ratings.is_empty() {
            return; // empty fold-in is a typed error, covered in unit tests
        }
        let (p, q, train) = build_scenario(s);
        let model = ServedModel::build(p.clone(), q.clone(), train.as_ref(), s.shards).unwrap();
        let engine = ServeEngine::new(model);
        let ratings: Vec<(u32, f32)> = s.ratings.iter().map(|&(_, i, r)| (i, r)).collect();
        let cfg = FoldInConfig {
            seed: s.seed,
            ..FoldInConfig::default()
        };
        let row_a = engine.fold_in(&ratings, &cfg).unwrap();
        let row_b = engine.fold_in(&ratings, &cfg).unwrap();
        assert_eq!(row_a, row_b);
        assert_eq!(row_a.len(), s.k);
        // Snapshot untouched: existing users still answer from the same Q.
        let want = naive_top_k(&p, &q, train.as_ref().map(CsrMatrix::from).as_ref(), 0, 5);
        assert_rank_equivalent(&engine.top_k(0, 5).unwrap(), &want, "post-fold-in query");
    });
}

// ---------------------------------------------------------------------------
// Property: quantized precision tiers
// ---------------------------------------------------------------------------

/// Round-trips a row through the int8 codec exactly the way `QueryPrep`
/// and the shard builder do: per-row scale, quantize, dequantize.
fn int8_roundtrip(row: &[f32]) -> (Vec<f32>, f32) {
    let scale = int8::scale_for(row);
    let mut q = vec![0i8; row.len()];
    int8::quantize(row, scale, &mut q);
    let mut back = vec![0.0f32; row.len()];
    int8::dequantize(&q, scale, &mut back);
    (back, scale)
}

/// The int8 codec contract the serving tiers rest on: round-to-nearest
/// quantization against a per-row max-abs scale never moves any element by
/// more than half a quantization step.
#[test]
fn int8_round_trip_error_is_within_half_a_step_over_256_cases() {
    run_scenarios(0x1008_c0de, |s| {
        let (p, q, _) = build_scenario(s);
        for (mat, name) in [(&p, "P"), (&q, "Q")] {
            for r in 0..mat.rows() {
                let row = mat.row(r);
                let (back, scale) = int8_roundtrip(row);
                // Half a step plus a whisker of f32 rounding slack from the
                // quantize divide and dequantize multiply.
                let bound = scale * 0.5 * (1.0 + 1e-5) + f32::EPSILON;
                for (j, (&x, &y)) in row.iter().zip(&back).enumerate() {
                    assert!(
                        (x - y).abs() <= bound,
                        "{name}[{r}][{j}]: {x} -> {y} strayed past scale/2 = {}",
                        scale * 0.5
                    );
                }
            }
        }
    });
}

/// Rank equivalence for the quantized tiers, pruned and exhaustive. The
/// oracle is `naive_top_k` over the *dequantized* factors — the stored
/// representation the engine actually scores — because quantization
/// legitimately perturbs scores beyond the 1e-4 tie band, while the scan
/// order, pruning bound, and merge must not add any error of their own.
/// (f32 + pruned vs the raw-factor oracle is the earlier 256-case test.)
#[test]
fn quantized_tiers_match_their_dequantized_oracle_over_256_cases() {
    run_scenarios(0x0a17_f16e, |s| {
        let (p, q, train) = build_scenario(s);
        for precision in [Precision::Fp16, Precision::Int8] {
            // Effective user factors: int8 scoring quantizes the query row
            // too (per-row scale, like `QueryPrep`); fp16 leaves it f32.
            let eff_p = match precision {
                Precision::Int8 => {
                    let data: Vec<f32> = (0..p.rows())
                        .flat_map(|r| int8_roundtrip(p.row(r)).0)
                        .collect();
                    FactorMatrix::from_vec(p.rows(), s.k, data)
                }
                _ => p.clone(),
            };
            for pruned in [false, true] {
                let model = ServedModel::build_with(
                    p.clone(),
                    q.clone(),
                    train.as_ref(),
                    s.shards,
                    precision,
                    pruned,
                )
                .unwrap();
                // Effective item factors: whatever the shards stored, read
                // back dequantized (also exercises `item_row` per tier).
                let eff_q_data: Vec<f32> = (0..s.items)
                    .flat_map(|i| model.item_row(i).unwrap())
                    .collect();
                let eff_q = FactorMatrix::from_vec(s.items as usize, s.k, eff_q_data);
                let seen = train.as_ref().map(CsrMatrix::from);
                let engine = ServeEngine::new(model);

                let users: Vec<u32> = (0..s.users).collect();
                for &user in &users {
                    let want = naive_top_k(&eff_p, &eff_q, seen.as_ref(), user, s.count);
                    let got = engine.top_k(user, s.count).unwrap();
                    assert_rank_equivalent(
                        &got,
                        &want,
                        &format!("{} pruned={pruned}, user {user}", precision.name()),
                    );
                }
                let batch = engine.top_k_batch(&users, s.count).unwrap();
                for (user, b) in users.iter().zip(&batch) {
                    let want = naive_top_k(&eff_p, &eff_q, seen.as_ref(), *user, s.count);
                    assert_rank_equivalent(
                        b,
                        &want,
                        &format!("{} pruned={pruned}, batch user {user}", precision.name()),
                    );
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Deterministic edge cases the proptest shrinker should never have to find
// ---------------------------------------------------------------------------

fn fixture(users: usize, items: usize, k: usize, seed: u64) -> (FactorMatrix, FactorMatrix) {
    (
        FactorMatrix::random(users, k, seed),
        FactorMatrix::random(items, k, seed + 1),
    )
}

#[test]
fn oracle_agreement_at_paper_scale_counts() {
    // k ∈ {1, 8, 100} from the issue, on a model big enough that every
    // shard holds many items and SIMD lanes are fully occupied.
    let (p, q) = fixture(50, 300, 16, 11);
    let entries: Vec<Rating> = (0..50u32)
        .flat_map(|u| (0..6u32).map(move |t| Rating::new(u, (u * 37 + t * 53) % 300, 3.0)))
        .collect();
    let train = CooMatrix::new(50, 300, entries).unwrap();
    let seen = CsrMatrix::from(&train);
    let engine =
        ServeEngine::new(ServedModel::build(p.clone(), q.clone(), Some(&train), 5).unwrap());
    for count in [1usize, 8, 100] {
        for user in [0u32, 17, 49] {
            let want = naive_top_k(&p, &q, Some(&seen), user, count);
            let got = engine.top_k(user, count).unwrap();
            assert_rank_equivalent(&got, &want, &format!("count {count}, user {user}"));
        }
    }
}

#[test]
fn fewer_items_than_shards_clamps_cleanly() {
    let (p, q) = fixture(4, 3, 2, 21);
    let model = ServedModel::build(p.clone(), q.clone(), None, 6).unwrap();
    assert!(model.shard_count() <= 3);
    let engine = ServeEngine::new(model);
    let got = engine.top_k(2, 10).unwrap();
    assert_rank_equivalent(&got, &naive_top_k(&p, &q, None, 2, 10), "items < shards");
    assert_eq!(got.len(), 3); // count clamps to the catalogue size
}

#[test]
fn all_items_seen_yields_empty_results() {
    let (p, q) = fixture(2, 4, 3, 31);
    let entries: Vec<Rating> = (0..4u32).map(|i| Rating::new(0, i, 4.0)).collect();
    let train = CooMatrix::new(2, 4, entries).unwrap();
    let engine = ServeEngine::new(ServedModel::build(p, q, Some(&train), 2).unwrap());
    assert!(engine.top_k(0, 5).unwrap().is_empty());
    // User 1 saw nothing; the batch mixes empty and full rows.
    let batch = engine.top_k_batch(&[0, 1], 5).unwrap();
    assert!(batch[0].is_empty());
    assert_eq!(batch[1].len(), 4);
}

#[test]
fn count_zero_is_a_valid_query() {
    let (p, q) = fixture(3, 10, 4, 41);
    let engine = ServeEngine::new(ServedModel::build(p, q, None, 3).unwrap());
    assert!(engine.top_k(1, 0).unwrap().is_empty());
    assert!(engine
        .top_k_batch(&[0, 1, 2], 0)
        .unwrap()
        .iter()
        .all(Vec::is_empty));
}

// ---------------------------------------------------------------------------
// Fold-in against a genuinely trained model
// ---------------------------------------------------------------------------

#[test]
fn folded_in_user_predicts_close_to_its_trained_row() {
    // Train a real model, then pretend user 0 arrived *after* training:
    // fold its ratings in against the frozen Q and demand the folded row
    // predicts user 0's own ratings about as well as the trained P row did.
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 200,
        cols: 100,
        nnz: 6_000,
        noise: 0.1,
        seed: 5,
        ..GenConfig::default()
    });
    let config = HccConfig::builder()
        .k(8)
        .epochs(12)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.01)
        .workers(vec![WorkerSpec::cpu(1); 2])
        .partition(PartitionMode::Uniform)
        .seed(5)
        .build();
    let report = HccMf::new(config).train(&ds.matrix).unwrap();

    let ratings: Vec<(u32, f32)> = ds
        .matrix
        .entries()
        .iter()
        .filter(|e| e.u == 0)
        .map(|e| (e.i, e.r))
        .collect();
    assert!(!ratings.is_empty(), "user 0 must have training ratings");

    let model =
        ServedModel::build(report.p.clone(), report.q.clone(), Some(&ds.matrix), 4).unwrap();
    let engine = ServeEngine::new(model);
    let cfg = FoldInConfig {
        epochs: 60,
        lr: 0.05,
        lambda: 0.01,
        seed: 7,
    };
    let row = engine.fold_in(&ratings, &cfg).unwrap();

    let user_rmse = |user_row: &[f32]| -> f64 {
        let se: f64 = ratings
            .iter()
            .map(|&(i, r)| {
                let pred: f32 = user_row
                    .iter()
                    .zip(report.q.row(i as usize))
                    .map(|(a, b)| a * b)
                    .sum();
                ((pred - r) as f64).powi(2)
            })
            .sum();
        (se / ratings.len() as f64).sqrt()
    };
    let trained = user_rmse(report.p.row(0));
    let folded = user_rmse(&row);
    assert!(
        folded <= trained + 0.3,
        "fold-in RMSE {folded:.4} vs trained-row RMSE {trained:.4}"
    );

    // And the folded row can be served: it must exclude the user's own items.
    let exclude: Vec<u32> = ratings.iter().map(|&(i, _)| i).collect();
    let mut distinct = exclude.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let top = engine.top_k_folded(&row, 10, &exclude).unwrap();
    assert_eq!(top.len(), 10.min(100 - distinct.len()));
    assert!(top.iter().all(|(i, _)| !exclude.contains(i)));
}

// ---------------------------------------------------------------------------
// Hot-reload chaos: corrupt deploy artifacts must never take the engine down
// ---------------------------------------------------------------------------

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hcc_serving_it");
    fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn hot_reload_survives_corruption_then_applies_a_good_checkpoint() {
    let path = tmp("deploy.hccmf");
    let (p1, q1) = fixture(12, 30, 4, 71);
    save_model(&path, &p1, &q1).unwrap();
    let engine = ServeEngine::new(load_served_model(&path, None, 3).unwrap());
    let before: Vec<_> = (0..12).map(|u| engine.top_k(u, 5).unwrap()).collect();

    // Bit-flip in the payload: CRC footer rejects it, nothing swaps.
    let good = fs::read(&path).unwrap();
    let mut bad = good.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x08;
    fs::write(&path, &bad).unwrap();
    let err = reload_from_checkpoint(&engine, &path, None, 3).unwrap_err();
    assert!(matches!(err, HccError::CorruptCheckpoint(_)), "{err:?}");

    // Truncation: also rejected before the swap.
    fs::write(&path, &good[..good.len() / 3]).unwrap();
    assert!(reload_from_checkpoint(&engine, &path, None, 3).is_err());

    // The engine never wavered.
    for (u, want) in before.iter().enumerate() {
        assert_eq!(&engine.top_k(u as u32, 5).unwrap(), want, "user {u}");
    }
    assert_eq!(engine.stats().reloads, 0);

    // A good artifact with *different* factors finally lands.
    let (p2, q2) = fixture(12, 30, 4, 72);
    save_model(&path, &p2, &q2).unwrap();
    assert_eq!(reload_from_checkpoint(&engine, &path, None, 3).unwrap(), 1);
    let want = naive_top_k(&p2, &q2, None, 3, 5);
    assert_rank_equivalent(&engine.top_k(3, 5).unwrap(), &want, "post-reload");
    fs::remove_file(&path).ok();
}

#[test]
fn trained_checkpoint_serves_end_to_end() {
    // The full production path: train → save_model → load_served_model →
    // query, with the training matrix as the seen filter.
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 60,
        cols: 40,
        nnz: 1_200,
        noise: 0.1,
        seed: 9,
        ..GenConfig::default()
    });
    let config = HccConfig::builder()
        .k(8)
        .epochs(5)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.01)
        .workers(vec![WorkerSpec::cpu(1); 2])
        .partition(PartitionMode::Uniform)
        .seed(9)
        .build();
    let report = HccMf::new(config).train(&ds.matrix).unwrap();
    let path = tmp("trained.hccmf");
    save_model(&path, &report.p, &report.q).unwrap();

    let model = load_served_model(&path, Some(&ds.matrix), 4).unwrap();
    let engine = ServeEngine::new(model);
    let seen = CsrMatrix::from(&ds.matrix);
    for user in [0u32, 30, 59] {
        let want = naive_top_k(&report.p, &report.q, Some(&seen), user, 10);
        let got = engine.top_k(user, 10).unwrap();
        assert_rank_equivalent(&got, &want, &format!("trained, user {user}"));
        // Recommendations never include already-rated items.
        let rated = seen.row(user).0;
        assert!(got.iter().all(|(i, _)| !rated.contains(i)));
    }
    let stats = engine.stats();
    assert_eq!(stats.queries, 3);
    fs::remove_file(&path).ok();
}
