//! Differential multi-node tests: a node-sharded parameter server must be
//! observationally identical to the single-node server — bit-for-bit at
//! Fp32 — while shipping strictly fewer push bytes (row deltas instead of
//! full buffers). Delta accounting is cross-checked against the inner
//! transports' [`hcc_comm::NetStats`].

use hcc_comm::{delta_len, CommShared, CommSocket, Precision, SocketConfig, Transport};
use hcc_mf::{
    HccConfig, HccMf, HccReport, LearningRate, PartitionMode, ShardedServer, TransportKind,
    WorkerSpec,
};
use hcc_partition::ShardRouter;
use hcc_sparse::{GenConfig, SyntheticDataset};
use std::sync::Arc;

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(GenConfig {
        rows: 300,
        cols: 150,
        nnz: 9_000,
        planted_rank: 6,
        noise: 0.0,
        ..GenConfig::default()
    })
}

/// Deterministic config: single-threaded workers (no Hogwild races), a
/// fixed uniform partition (no wall-clock-driven adaptation), Fp32 wire.
fn base() -> hcc_mf::HccConfigBuilder {
    HccConfig::builder()
        .k(8)
        .epochs(8)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.005)
        .workers(vec![
            WorkerSpec::cpu(1),
            WorkerSpec::cpu(1),
            WorkerSpec::cpu(1),
        ])
        .partition(PartitionMode::Uniform)
        .adapt_epochs(0)
        .strategy(hcc_mf::TransferStrategy::QOnly)
        .track_rmse(true)
}

fn train(transport: TransportKind, shards: usize) -> HccReport {
    HccMf::new(base().transport(transport).server_shards(shards).build())
        .train(&dataset().matrix)
        .unwrap()
}

fn bits(m: &hcc_mf::FactorMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn assert_bit_identical(a: &HccReport, b: &HccReport, label: &str) {
    assert_eq!(bits(&a.p), bits(&b.p), "{label}: P diverged");
    assert_eq!(bits(&a.q), bits(&b.q), "{label}: Q diverged");
    assert_eq!(a.rmse_history, b.rmse_history, "{label}: RMSE diverged");
}

#[test]
fn sharded_training_is_bit_identical_to_single_node() {
    // `server_shards == 1` is the plain single-node `CommShared` path — the
    // reference. Sharding the server 2 and 4 ways must not move one bit.
    let reference = train(TransportKind::Shared, 1);
    assert!(
        reference.rmse_history.last().unwrap() < &(reference.rmse_history[0] * 0.5),
        "reference did not converge: {:?}",
        reference.rmse_history
    );
    for shards in [2, 4] {
        let sharded = train(TransportKind::Shared, shards);
        assert_bit_identical(&reference, &sharded, &format!("{shards} shards"));
    }
}

#[test]
fn socket_and_tcp_sharded_training_match_shared_memory() {
    // The same differential across real wires: per-shard socket endpoints
    // (Unix and TCP) with delta shipping reconstruct the exact trajectory.
    let reference = train(TransportKind::Shared, 1);
    let unix = train(TransportKind::Socket, 2);
    assert_bit_identical(&reference, &unix, "2 unix-socket shards");
    let tcp = train(TransportKind::Tcp, 4);
    assert_bit_identical(&reference, &tcp, "4 tcp shards");
}

/// A sharded server over per-shard `CommShared` endpoints.
fn sharded_shared(workers: usize, rows: usize, k: usize, shards: usize) -> ShardedServer {
    let router = ShardRouter::uniform(rows, shards);
    let inners: Vec<Arc<dyn Transport>> = (0..shards)
        .map(|s| {
            let pull = router.range(s).len() * k;
            let push = ShardedServer::shard_push_len(&router, s, k);
            Arc::new(CommShared::new(workers, pull, push, Precision::Fp32)) as Arc<dyn Transport>
        })
        .collect();
    ShardedServer::new(router, k, rows * k, Precision::Fp32, inners)
}

#[test]
fn delta_accounting_is_exact() {
    let (rows, k) = (32, 4);
    let server = sharded_shared(1, rows, k, 4);
    let region: Vec<f32> = (0..rows * k).map(|i| i as f32 * 0.5).collect();
    server.publish(&region);

    let mut local = region.clone();
    // Touch rows 0 and 1 (shard 0), row 20 (shard 2). Shards 1 and 3 ship
    // header-only deltas.
    local[0] += 1.0;
    local[k + 1] -= 1.0;
    local[20 * k] = 7.0;
    server.push(0, &local);

    let stats = server.delta_stats();
    assert_eq!(stats.rows_shipped, 3);
    assert_eq!(stats.rows_total, rows as u64);
    // Bytes shipped: per shard, `delta_len(touched, k)` Fp32 elements —
    // touched rows × row size plus one count and one index per row.
    let expect = (delta_len(2, k) + delta_len(0, k) + delta_len(1, k) + delta_len(0, k)) as u64 * 4;
    assert_eq!(stats.bytes_shipped, expect);
    assert_eq!(stats.bytes_full, (rows * k) as u64 * 4);
    assert!(
        stats.bytes_shipped < stats.bytes_full,
        "delta shipping must beat full shipping: {stats:?}"
    );

    // The worker's buffer reconstructs bit-for-bit from snapshot + deltas.
    let mut collected = vec![0f32; rows * k];
    server.collect(0, &mut collected);
    let a: Vec<u32> = collected.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = local.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
}

#[test]
fn untouched_push_ships_headers_only() {
    let (rows, k) = (16, 8);
    let server = sharded_shared(2, rows, k, 2);
    let region = vec![1.5f32; rows * k];
    server.publish(&region);
    server.push(1, &region); // nothing changed
    let stats = server.delta_stats();
    assert_eq!(stats.rows_shipped, 0);
    assert_eq!(stats.bytes_shipped, 2 * delta_len(0, k) as u64 * 4);
}

#[test]
fn sharded_socket_dedup_verified_against_net_stats() {
    let (rows, k) = (24, 4);
    let router = ShardRouter::uniform(rows, 3);
    let cfg = SocketConfig {
        delta_push: true,
        ..SocketConfig::default()
    };
    let sockets: Vec<Arc<CommSocket>> = (0..3)
        .map(|s| {
            let pull = router.range(s).len() * k;
            let push = ShardedServer::shard_push_len(&router, s, k);
            Arc::new(CommSocket::with_config(1, pull, push, Precision::Fp32, cfg.clone()).unwrap())
        })
        .collect();
    let inners: Vec<Arc<dyn Transport>> = sockets
        .iter()
        .map(|s| Arc::clone(s) as Arc<dyn Transport>)
        .collect();
    let server = ShardedServer::new(router, k, rows * k, Precision::Fp32, inners);

    let region: Vec<f32> = (0..rows * k).map(|i| (i as f32).sin()).collect();
    server.publish(&region);
    let mut local = vec![0f32; rows * k];
    server.pull(0, &mut local);
    local[0] = -2.0; // shard 0
    local[23 * k + 1] = 9.0; // shard 2
    server.push(0, &local);
    // A wire duplicate (what a retransmit after a lost ack looks like):
    // every shard's idempotent dedup must absorb it.
    server.push_duplicate(0, &local);
    let mut collected = vec![0f32; rows * k];
    server.collect(0, &mut collected);
    let a: Vec<u32> = collected.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = local.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b, "duplicate delta pushes corrupted the region");
    for (s, sock) in sockets.iter().enumerate() {
        assert_eq!(
            sock.net_stats().dedup_hits,
            1,
            "shard {s} did not dedup the duplicate delta push"
        );
    }
}

#[test]
fn every_user_routes_to_exactly_one_live_shard() {
    // The training-path router: uniform over the synchronized region's
    // rows. Each row must land in exactly one shard whose range contains it.
    for shards in [1, 2, 4, 7] {
        let router = ShardRouter::uniform(150, shards);
        for row in 0..150 {
            let s = router.shard_of(row).unwrap();
            assert!(router.range(s).contains(&row), "row {row} shard {s}");
            let owners = (0..shards)
                .filter(|&i| router.range(i).contains(&row))
                .count();
            assert_eq!(owners, 1, "row {row} owned by {owners} shards");
        }
    }
}
