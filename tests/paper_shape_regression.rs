//! Shape-regression suite: the qualitative results recorded in
//! EXPERIMENTS.md, pinned as assertions so refactors of the simulator,
//! planner, or profiles can't silently drift the reproduction away from
//! the paper. Every tolerance here is deliberately loose — these are
//! *shape* checks, not golden floats.

use hcc_comm::TransferStrategy;
use hcc_hetsim::{
    cost_model_for, ideal_computing_power, simulate_training, standalone_times, virtual_measure,
    virtual_measure_total, worker_classes, Platform, ProcessorProfile, SimConfig, Workload,
};
use hcc_partition::{dp0, dp1, dp2, Dp1Options, PartitionPlanner, StrategyChoice};
use hcc_sparse::DatasetProfile;

fn plan_with(platform: &Platform, wl: &Workload, cfg: &SimConfig) -> hcc_partition::PartitionPlan {
    PartitionPlanner::default().plan(
        &cost_model_for(platform, wl, cfg),
        &standalone_times(platform, wl),
        &worker_classes(platform),
        virtual_measure_total(platform, wl, cfg),
    )
}

/// Fig 3(a): single-processor 20-epoch Netflix times sit near the paper's
/// bars, and every good collaboration beats its best member.
#[test]
fn fig3_platform_ordering() {
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let time = |rate: f64| wl.nnz as f64 * 20.0 / rate;
    let cpu = time(ProcessorProfile::xeon_6242_24t().rates.netflix);
    let gpu2080 = time(ProcessorProfile::rtx_2080().rates.netflix);
    let gpu2080s = time(ProcessorProfile::rtx_2080_super().rates.netflix);
    assert!((cpu - 5.68).abs() < 0.1, "cpu {cpu}");
    assert!((gpu2080 - 2.16).abs() < 0.1, "2080 {gpu2080}");
    assert!(gpu2080s < gpu2080 && gpu2080 < cpu);

    let cfg = SimConfig::default();
    let pair = Platform::pair(
        ProcessorProfile::xeon_6242_16t(),
        ProcessorProfile::rtx_2080_super(),
    );
    let p = plan_with(&pair, &wl, &cfg);
    let collab = simulate_training(&pair, &wl, &cfg, &p.fractions, 20).total_time;
    assert!(
        collab < gpu2080s,
        "collab {collab} !< best member {gpu2080s}"
    );
}

/// Fig 8: DP1 improves on DP0 by ~10% on the 4-worker testbed for Netflix
/// and R2 (paper: 12.2% / 10%).
#[test]
fn fig8_dp1_improvement_band() {
    let cfg = SimConfig::default();
    for (profile, lo, hi) in [
        (DatasetProfile::netflix(), 0.05, 0.20),
        (DatasetProfile::yahoo_r2(), 0.04, 0.20),
    ] {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let x0 = dp0(&standalone_times(&platform, &wl));
        let x1 = dp1(
            &x0,
            &worker_classes(&platform),
            Dp1Options::default(),
            virtual_measure(&platform, &wl),
        );
        let t0 = simulate_training(&platform, &wl, &cfg, &x0, 20).total_time;
        let t1 = simulate_training(&platform, &wl, &cfg, &x1, 20).total_time;
        let gain = (t0 - t1) / t0;
        assert!(
            (lo..hi).contains(&gain),
            "{}: DP1 gain {:.1}% outside [{}%, {}%]",
            profile.name,
            gain * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
}

/// Fig 8 (R1*): DP2 improves on DP1 by 5–15% (paper: 12.1% at 4 workers).
#[test]
fn fig8_dp2_improvement_band() {
    let cfg = SimConfig::default();
    let platform = Platform::paper_testbed_4workers();
    let wl = Workload::from_profile(&DatasetProfile::r1_star());
    let x0 = dp0(&standalone_times(&platform, &wl));
    let x1 = dp1(
        &x0,
        &worker_classes(&platform),
        Dp1Options::default(),
        virtual_measure(&platform, &wl),
    );
    let mut measure = virtual_measure(&platform, &wl);
    let t = measure(&x1);
    let model = cost_model_for(&platform, &wl, &cfg);
    let x2 = dp2(&x1, &t, model.sync_time_per_worker());
    let t1 = simulate_training(&platform, &wl, &cfg, &x1, 20).total_time;
    let t2 = simulate_training(&platform, &wl, &cfg, &x2, 20).total_time;
    let gain = (t1 - t2) / t1;
    assert!(
        (0.03..0.20).contains(&gain),
        "DP2 gain {:.1}%",
        gain * 100.0
    );
}

/// Table 4: utilization bands — Netflix/R2 high, R1 middle, MovieLens low.
#[test]
fn table4_utilization_bands() {
    let expect: [(DatasetProfile, f64, f64); 4] = [
        (DatasetProfile::netflix(), 0.80, 1.0),
        (DatasetProfile::yahoo_r2(), 0.80, 1.0),
        (DatasetProfile::yahoo_r1(), 0.35, 0.75),
        (DatasetProfile::movielens_20m(), 0.20, 0.55),
    ];
    for (profile, lo, hi) in expect {
        let (platform, cfg) = if profile.name.contains("R1") {
            (
                Platform::paper_testbed_3workers(),
                SimConfig {
                    streams: 4,
                    ..Default::default()
                },
            )
        } else {
            (Platform::paper_testbed_overall(), SimConfig::default())
        };
        let wl = Workload::from_profile(&profile);
        let p = plan_with(&platform, &wl, &cfg);
        let sim = simulate_training(&platform, &wl, &cfg, &p.fractions, 20);
        let util = sim.computing_power / ideal_computing_power(&platform, &wl);
        assert!(
            (lo..hi).contains(&util),
            "{}: utilization {:.0}% outside [{:.0}%, {:.0}%]",
            profile.name,
            util * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
}

/// Fig 7(d–f): simulated paper-scale speedup of HCC over CuMF_SGD lands
/// near the paper's 2.3× (Netflix) and 2.9× (R2).
#[test]
fn fig7_speedup_bands() {
    let cfg = SimConfig::default();
    for (profile, paper, tol) in [
        (DatasetProfile::netflix(), 2.3, 0.5),
        (DatasetProfile::yahoo_r2(), 2.9, 0.7),
    ] {
        let platform = Platform::paper_testbed_overall();
        let wl = Workload::from_profile(&profile);
        let p = plan_with(&platform, &wl, &cfg);
        let hcc = simulate_training(&platform, &wl, &cfg, &p.fractions, 20).total_time;
        let cumf = wl.nnz as f64 * 20.0
            / ProcessorProfile::rtx_2080_super()
                .rates
                .rate(&wl.name, wl.m, wl.n, wl.nnz);
        let speedup = cumf / hcc;
        assert!(
            (speedup - paper).abs() < tol,
            "{}: speedup {speedup:.2} vs paper {paper}",
            profile.name
        );
    }
}

/// Table 5: Q-only communication speedup equals the volume law, ~18.6× on
/// Netflix (paper measures 18.3×).
#[test]
fn table5_q_only_speedup() {
    let cfg_full = SimConfig {
        strategy: TransferStrategy::FullPq,
        ..Default::default()
    };
    let cfg_q = SimConfig::default();
    let platform = Platform::paper_testbed_4workers();
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let x = dp0(&standalone_times(&platform, &wl));
    let comm = |cfg: &SimConfig| -> f64 {
        let sim = simulate_training(&platform, &wl, cfg, &x, 20);
        sim.epoch
            .totals
            .iter()
            .map(|t| (t.pull + t.push) * 20.0)
            .sum()
    };
    let speedup = comm(&cfg_full) / comm(&cfg_q);
    assert!((speedup - 18.6).abs() < 1.0, "Q-only speedup {speedup}");
}

/// Table 6: the second GPU on MovieLens buys only ~1.2–1.6× (paper 1.24×).
#[test]
fn table6_limitation_band() {
    let cfg = SimConfig::default();
    let wl = Workload::from_profile(&DatasetProfile::movielens_20m());
    let single = Platform::single(ProcessorProfile::rtx_2080_super());
    let pair = Platform::pair(
        ProcessorProfile::rtx_2080_super(),
        ProcessorProfile::rtx_2080(),
    );
    let p1 = plan_with(&single, &wl, &cfg);
    let p2 = plan_with(&pair, &wl, &cfg);
    let t1 = simulate_training(&single, &wl, &cfg, &p1.fractions, 20).total_time;
    let t2 = simulate_training(&pair, &wl, &cfg, &p2.fractions, 20).total_time;
    let speedup = t1 / t2;
    assert!(
        (1.1..1.7).contains(&speedup),
        "MovieLens 2nd-GPU speedup {speedup:.2} outside the limitation band"
    );
}

/// λ dispatch: the planner's choices per dataset are stable.
#[test]
fn lambda_dispatch_choices() {
    let cfg = SimConfig::default();
    let expect = [
        (DatasetProfile::netflix(), StrategyChoice::Dp1),
        (DatasetProfile::yahoo_r2(), StrategyChoice::Dp1),
        (DatasetProfile::yahoo_r1(), StrategyChoice::Dp2),
        (DatasetProfile::r1_star(), StrategyChoice::Dp2),
        (DatasetProfile::movielens_20m(), StrategyChoice::Dp2),
    ];
    for (profile, want) in expect {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let plan = plan_with(&platform, &wl, &cfg);
        assert_eq!(
            plan.strategy, want,
            "{} (ratio {:.1})",
            profile.name, plan.sync_ratio
        );
    }
}
