//! Chaos tests: seeded fault injection against the supervised training loop.
//!
//! Every test is driven by the `CHAOS_SEED` environment variable (default 1)
//! so CI can sweep a seed matrix; for a fixed seed each run exercises exactly
//! the same failure schedule — the [`hcc_mf::FaultPlan`] has no wall-clock
//! dependence.

use hcc_comm::{ChaosTransport, CommSocket, NetChaosPlan, Precision, Transport};
use hcc_mf::{
    FaultPlan, HccConfig, HccError, HccMf, LearningRate, PartitionMode, SupervisorConfig,
    TransportKind, WorkerHealth, WorkerSpec,
};
use hcc_sparse::{GenConfig, SyntheticDataset};
use std::sync::Arc;
use std::time::Duration;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn dataset(seed: u64) -> SyntheticDataset {
    SyntheticDataset::generate(GenConfig {
        rows: 200,
        cols: 100,
        nnz: 6_000,
        noise: 0.1,
        seed,
        ..GenConfig::default()
    })
}

/// Supervisor tuned for tests: short timeouts so a dead worker costs
/// milliseconds, not seconds.
fn test_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        heartbeat_timeout: Duration::from_millis(200),
        collect_retries: 2,
        retry_backoff: 1.5,
        ..SupervisorConfig::default()
    }
}

fn base(seed: u64) -> hcc_mf::HccConfigBuilder {
    HccConfig::builder()
        .k(8)
        .epochs(10)
        .learning_rate(LearningRate::Constant(0.02))
        .lambda(0.01)
        .workers(vec![WorkerSpec::cpu(1); 4])
        .partition(PartitionMode::Uniform)
        .seed(seed)
        .track_rmse(true)
}

fn serial_rmse(ds: &SyntheticDataset, report: &hcc_mf::HccReport) -> f64 {
    hcc_sgd::rmse(ds.matrix.entries(), &report.p, &report.q)
}

#[test]
fn fault_free_supervision_matches_plain_training_exactly() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let plain = HccMf::new(base(seed).build()).train(&ds.matrix).unwrap();
    let supervised = HccMf::new(base(seed).fault_tolerance(test_supervisor()).build())
        .train(&ds.matrix)
        .unwrap();
    // The supervisor must be a pure observer on the happy path: identical
    // factors bit-for-bit, no rollbacks, everyone healthy every epoch.
    assert_eq!(plain.p, supervised.p);
    assert_eq!(plain.q, supervised.q);
    assert_eq!(supervised.rollbacks, 0);
    assert!(supervised
        .health_history
        .iter()
        .flatten()
        .all(|h| *h == WorkerHealth::Healthy));
}

#[test]
fn crash_one_of_four_workers_converges_on_survivors() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let fault_free = HccMf::new(base(seed).build()).train(&ds.matrix).unwrap();
    let plan = FaultPlan::new(seed).crash(1, 3);
    let report = HccMf::new(
        base(seed)
            .fault_tolerance(test_supervisor())
            .fault_plan(plan)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();

    // The dead worker is spotted at epoch 3 and removed for the rest of
    // the run.
    assert_eq!(report.health_history[3].len(), 4);
    assert_eq!(report.health_history[3][1], WorkerHealth::Dead);
    assert!(report.health_history[4..].iter().all(|h| h.len() == 3));

    // Training completes and lands within 2% of the fault-free RMSE.
    let rmse_faulty = serial_rmse(&ds, &report);
    let rmse_clean = serial_rmse(&ds, &fault_free);
    assert!(
        rmse_faulty <= rmse_clean * 1.02,
        "crash cost too much accuracy: {rmse_faulty} vs {rmse_clean}"
    );
}

#[test]
fn stalled_worker_is_classified_straggler_and_training_converges() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    // 400 ms stall against ~ms compute times: far beyond 3x the median.
    let plan = FaultPlan::new(seed).stall(2, 2, 400);
    let report = HccMf::new(
        base(seed)
            .fault_tolerance(SupervisorConfig {
                heartbeat_timeout: Duration::from_secs(2), // don't drop it
                ..test_supervisor()
            })
            .fault_plan(plan)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_eq!(report.health_history[2][2], WorkerHealth::Straggler);
    // The straggler is kept: the fleet never shrinks.
    assert!(report.health_history.iter().all(|h| h.len() == 4));
    assert!(serial_rmse(&ds, &report) < report.rmse_history[0]);
}

#[test]
fn corrupted_push_is_quarantined_not_merged() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let plan = FaultPlan::new(seed).corrupt_push(0, 1);
    let report = HccMf::new(
        base(seed)
            .fault_tolerance(test_supervisor())
            .fault_plan(plan)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    // NaNs must never reach the global factors, and the poisoned worker is
    // alive (heartbeat current) so it is kept as a straggler.
    assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
    assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
    assert_eq!(report.health_history[1][0], WorkerHealth::Straggler);
    assert!(report.health_history.iter().all(|h| h.len() == 4));
    assert!(serial_rmse(&ds, &report) < report.rmse_history[0]);
}

#[test]
fn dropped_push_times_out_and_training_converges() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let plan = FaultPlan::new(seed).drop_push(3, 2);
    let report = HccMf::new(
        base(seed)
            .fault_tolerance(test_supervisor())
            .fault_plan(plan)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_eq!(report.health_history[2][3], WorkerHealth::Straggler);
    assert!(serial_rmse(&ds, &report) < report.rmse_history[0]);
}

#[test]
fn divergence_guard_rolls_back_or_fails_typed_never_panics() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    // γ = 5 explodes immediately; the guard must roll back with LR backoff
    // and either recover or exhaust its budget with the typed error.
    let result = HccMf::new(
        base(seed)
            .learning_rate(LearningRate::Constant(5.0))
            .epochs(4)
            .fault_tolerance(SupervisorConfig {
                max_rollbacks: 3,
                ..test_supervisor()
            })
            .build(),
    )
    .train(&ds.matrix);
    match result {
        Ok(report) => {
            assert!(report.rollbacks > 0, "5.0 LR cannot have been clean");
            assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
            assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
        }
        Err(HccError::Diverged { rollbacks, .. }) => assert_eq!(rollbacks, 3),
        Err(other) => panic!("expected Diverged, got {other:?}"),
    }
}

#[test]
fn resume_reproduces_uninterrupted_run_exactly() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let dir = std::env::temp_dir().join("hcc_chaos_resume");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("resume_{seed}.hccmf"));

    // Determinism needs a single single-threaded worker and a fixed grid.
    let solo = || {
        HccConfig::builder()
            .k(8)
            .learning_rate(LearningRate::Constant(0.02))
            .lambda(0.01)
            .workers(vec![WorkerSpec::cpu(1)])
            .partition(PartitionMode::Uniform)
            .seed(seed)
            .track_rmse(true)
    };

    let full = HccMf::new(solo().epochs(5).build())
        .train(&ds.matrix)
        .unwrap();

    // "Killed" run: train 3 epochs, checkpointing at epoch 3...
    let partial = HccMf::new(solo().epochs(3).checkpoint(&ckpt, 3).build())
        .train(&ds.matrix)
        .unwrap();
    assert_eq!(partial.rmse_history.len(), 3);
    assert!(ckpt.exists());

    // ...then resume to epoch 5: factors must match the uninterrupted run
    // bit-for-bit, and the resumed run must report where it started.
    let resumed = HccMf::new(solo().epochs(5).resume(&ckpt).build())
        .train(&ds.matrix)
        .unwrap();
    std::fs::remove_file(&ckpt).ok();
    assert_eq!(resumed.start_epoch, 3);
    assert_eq!(resumed.rmse_history.len(), 2);
    assert_eq!(full.p, resumed.p);
    assert_eq!(full.q, resumed.q);
}

#[test]
fn resume_rejects_mismatched_shapes_with_typed_error() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let dir = std::env::temp_dir().join("hcc_chaos_resume_mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join(format!("mismatch_{seed}.hccmf"));

    let cfg = HccConfig::builder()
        .k(8)
        .epochs(2)
        .workers(vec![WorkerSpec::cpu(1)])
        .seed(seed)
        .checkpoint(&ckpt, 2)
        .build();
    HccMf::new(cfg).train(&ds.matrix).unwrap();

    // Wrong k: the resume must fail loudly, not train garbage.
    let err = HccMf::new(
        HccConfig::builder()
            .k(16)
            .epochs(4)
            .workers(vec![WorkerSpec::cpu(1)])
            .seed(seed)
            .resume(&ckpt)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap_err();
    std::fs::remove_file(&ckpt).ok();
    assert!(matches!(err, HccError::BadConfig(_)), "{err:?}");
}

#[test]
fn multiple_simultaneous_faults_still_converge() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let plan = FaultPlan::new(seed)
        .crash(0, 4)
        .stall(2, 1, 120)
        .drop_push(3, 6)
        .corrupt_push(1, 2);
    let report = HccMf::new(
        base(seed)
            .epochs(12)
            .fault_tolerance(test_supervisor())
            .fault_plan(plan)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
    assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
    // Worker 0 died at epoch 4: the last epochs run on three survivors.
    assert_eq!(report.health_history.last().unwrap().len(), 3);
    assert!(serial_rmse(&ds, &report) < report.rmse_history[0]);
}

// ---------------------------------------------------------------------------
// Network chaos: the socket transport under a seeded hostile network.
// ---------------------------------------------------------------------------

#[test]
fn socket_transport_matches_shared_memory_bit_for_bit() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let shared = HccMf::new(base(seed).build()).train(&ds.matrix).unwrap();
    let socket = HccMf::new(base(seed).transport(TransportKind::Socket).build())
        .train(&ds.matrix)
        .unwrap();
    // Fp32 frames round-trip exactly and merges happen in the same worker
    // order, so moving the wire under the run must not move a single bit.
    assert_eq!(shared.p, socket.p);
    assert_eq!(shared.q, socket.q);
}

#[test]
fn network_chaos_converges_within_two_percent_of_fault_free() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let fault_free = HccMf::new(base(seed).build()).train(&ds.matrix).unwrap();
    // The CLI recipe: 10% drops, 10% delays, 15% duplicates, 5% corruption.
    let report = HccMf::new(
        base(seed)
            .transport(TransportKind::Socket)
            .fault_tolerance(test_supervisor())
            .net_chaos(seed)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
    assert!(report.q.as_slice().iter().all(|v| v.is_finite()));
    // Drops and corruption are transient: nobody gets voted off the fleet.
    assert!(report.health_history.iter().all(|h| h.len() == 4));
    let rmse_chaos = serial_rmse(&ds, &report);
    let rmse_clean = serial_rmse(&ds, &fault_free);
    assert!(
        rmse_chaos <= rmse_clean * 1.02,
        "chaos cost too much accuracy: {rmse_chaos} vs {rmse_clean}"
    );
}

#[test]
fn partitioned_worker_is_marked_dead_and_survivors_replan() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let report = HccMf::new(
        base(seed)
            .transport(TransportKind::Socket)
            .fault_tolerance(test_supervisor())
            .net_chaos_plan(NetChaosPlan::quiet(seed).with_partition(3, 2))
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    // Before the partition bites, everyone is healthy.
    assert!(report.health_history[..2]
        .iter()
        .all(|h| h.iter().all(|w| *w == WorkerHealth::Healthy)));
    // The partition starts at push 2; the worker keeps computing and
    // heartbeating, so only the PartitionedLink collect error can kill it —
    // a straggler classification would keep it forever.
    let dead_epoch = report
        .health_history
        .iter()
        .position(|h| h.len() == 4 && h[3] == WorkerHealth::Dead)
        .expect("partitioned worker was never marked dead");
    assert!((2..=4).contains(&dead_epoch), "died at epoch {dead_epoch}");
    // Survivors re-plan: every later epoch runs on exactly three workers.
    assert!(report.health_history[dead_epoch + 1..]
        .iter()
        .all(|h| h.len() == 3));
    assert!(serial_rmse(&ds, &report) < report.rmse_history[0]);
}

#[test]
fn node_kill_on_a_four_shard_cluster_replans_and_converges() {
    // The sharded-server variant of the partition test: four socket shard
    // endpoints behind the row router, one worker's node severed mid-run.
    // The survivors must detect the kill, re-plan to three workers, and
    // land within 2% of the fault-free sharded run.
    let seed = chaos_seed();
    let ds = dataset(seed);
    let sharded = |b: hcc_mf::HccConfigBuilder| b.transport(TransportKind::Socket).server_shards(4);
    let fault_free = HccMf::new(sharded(base(seed)).build())
        .train(&ds.matrix)
        .unwrap();
    let report = HccMf::new(
        sharded(base(seed))
            .fault_tolerance(test_supervisor())
            .net_chaos_plan(NetChaosPlan::quiet(seed).with_partition(3, 2))
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    let dead_epoch = report
        .health_history
        .iter()
        .position(|h| h.len() == 4 && h[3] == WorkerHealth::Dead)
        .expect("killed node's worker was never marked dead");
    assert!((2..=4).contains(&dead_epoch), "died at epoch {dead_epoch}");
    assert!(report.health_history[dead_epoch + 1..]
        .iter()
        .all(|h| h.len() == 3));
    let rmse_faulty = serial_rmse(&ds, &report);
    let rmse_clean = serial_rmse(&ds, &fault_free);
    assert!(
        rmse_faulty <= rmse_clean * 1.02,
        "node kill cost too much accuracy: {rmse_faulty} vs {rmse_clean}"
    );
}

#[test]
fn duplicate_only_chaos_is_invisible_to_training() {
    let seed = chaos_seed();
    let ds = dataset(seed);
    let plain = HccMf::new(base(seed).build()).train(&ds.matrix).unwrap();
    // Every push is wire-duplicated; the server's idempotent dedup must
    // apply each exactly once, so the factors cannot move a single bit.
    let plan = NetChaosPlan {
        duplicate_rate: 1.0,
        ..NetChaosPlan::quiet(seed)
    };
    let dup = HccMf::new(
        base(seed)
            .transport(TransportKind::Socket)
            .fault_tolerance(test_supervisor())
            .net_chaos_plan(plan)
            .build(),
    )
    .train(&ds.matrix)
    .unwrap();
    assert_eq!(plain.p, dup.p);
    assert_eq!(plain.q, dup.q);
}

#[test]
fn wire_duplicates_are_deduplicated_exactly() {
    let seed = chaos_seed();
    let (workers, len) = (2usize, 8usize);
    let socket = Arc::new(CommSocket::new(workers, len, len, Precision::Fp32).unwrap());
    let plan = NetChaosPlan {
        duplicate_rate: 1.0,
        ..NetChaosPlan::quiet(seed)
    };
    let chaos = ChaosTransport::new(socket.clone() as Arc<dyn Transport>, plan);

    // Drive the pull → push → collect cycle by hand for a few epochs. The
    // chaos layer re-sends every push under its original sequence number;
    // the server must ack the duplicate without re-applying it, or a later
    // collect would observe the stale payload.
    let rounds = 5u64;
    for round in 0..rounds {
        let q = vec![round as f32; len];
        chaos.publish(&q);
        for w in 0..workers {
            let mut pulled = vec![0.0f32; len];
            chaos.pull(w, &mut pulled);
            assert_eq!(pulled, q, "round {round} worker {w} pulled stale data");
            chaos.push(w, &vec![(round * 10 + w as u64) as f32; len]);
        }
        for w in 0..workers {
            let mut got = vec![0.0f32; len];
            chaos.collect(w, &mut got);
            let expect = vec![(round * 10 + w as u64) as f32; len];
            assert_eq!(
                got, expect,
                "round {round} worker {w} saw a re-applied push"
            );
        }
    }

    // Exact accounting: one wire duplicate per push, one dedup hit per
    // duplicate, zero drift between the injector and the server.
    let stats = chaos.stats();
    assert_eq!(stats.duplicated, (workers as u64) * rounds);
    assert_eq!(socket.net_stats().dedup_hits, stats.duplicated);
    assert_eq!(socket.net_stats().retrans_bytes, 0);
}
