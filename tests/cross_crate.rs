//! Cross-crate integration: the simulator, the cost model, and the planner
//! agree with each other and with the paper's qualitative results — and the
//! trainer's wire implementations agree with one another.

use hcc_comm::TransferStrategy;
use hcc_hetsim::{
    cost_model_for, ideal_computing_power, simulate_epoch, simulate_training, standalone_times,
    virtual_measure, worker_classes, Phase, Platform, ProcessorProfile, SimConfig, Workload,
};
use hcc_partition::{dp0, dp2, PartitionPlanner, StrategyChoice};
use hcc_sparse::DatasetProfile;

fn netflix() -> Workload {
    Workload::from_profile(&DatasetProfile::netflix())
}

#[test]
fn simulator_matches_cost_model_epoch_time() {
    // With one stream and one worker the simulator must equal the closed
    // form: pull + compute + push + sync.
    let platform = Platform::single(ProcessorProfile::rtx_2080());
    let wl = netflix();
    let cfg = SimConfig::default();
    let model = cost_model_for(&platform, &wl, &cfg);
    let trace = simulate_epoch(&platform, &wl, &cfg, &[1.0]);
    let expect = model.worker_time(0, 1.0) + model.sync_time_per_worker();
    // The model's sync uses the average assigned rows; with one worker the
    // simulator's matches exactly.
    assert!(
        (trace.epoch_time - expect).abs() / expect < 1e-9,
        "sim {} vs model {}",
        trace.epoch_time,
        expect
    );
}

#[test]
fn dp1_beats_uniform_and_dp0_beats_nothing_on_heterogeneous_platform() {
    let platform = Platform::paper_testbed_4workers();
    let wl = netflix();
    let cfg = SimConfig::default();
    let uniform = vec![0.25; 4];
    let x0 = dp0(&standalone_times(&platform, &wl));
    let plan = PartitionPlanner::default().plan(
        &cost_model_for(&platform, &wl, &cfg),
        &standalone_times(&platform, &wl),
        &worker_classes(&platform),
        virtual_measure(&platform, &wl),
    );
    let t_uniform = simulate_epoch(&platform, &wl, &cfg, &uniform).epoch_time;
    let t_dp0 = simulate_epoch(&platform, &wl, &cfg, &x0).epoch_time;
    let t_planned = simulate_epoch(&platform, &wl, &cfg, &plan.fractions).epoch_time;
    assert!(t_dp0 < t_uniform, "dp0 {t_dp0} !< uniform {t_uniform}");
    assert!(
        t_planned <= t_dp0 * 1.001,
        "planned {t_planned} > dp0 {t_dp0}"
    );
}

#[test]
fn dp2_hides_sync_on_r1_class_workload() {
    // On R1 the sync tail matters; DP2's stagger should cut the epoch
    // makespan relative to the balanced DP1 partition.
    let platform = Platform::paper_testbed_3workers();
    let wl = Workload::from_profile(&DatasetProfile::yahoo_r1());
    let cfg = SimConfig::default();
    let x0 = dp0(&standalone_times(&platform, &wl));
    let model = cost_model_for(&platform, &wl, &cfg);
    let mut measure = virtual_measure(&platform, &wl);
    let t1 = measure(&x0);
    let x2 = dp2(&x0, &t1, model.sync_time_per_worker());
    let epoch_dp1 = simulate_epoch(&platform, &wl, &cfg, &x0);
    let epoch_dp2 = simulate_epoch(&platform, &wl, &cfg, &x2);
    assert!(
        epoch_dp2.epoch_time < epoch_dp1.epoch_time,
        "dp2 {} !< dp1 {}",
        epoch_dp2.epoch_time,
        epoch_dp1.epoch_time
    );
}

#[test]
fn q_only_strategy_shrinks_simulated_comm() {
    let platform = Platform::paper_testbed_4workers();
    let wl = netflix();
    let x = vec![0.25; 4];
    let full = simulate_epoch(
        &platform,
        &wl,
        &SimConfig {
            strategy: TransferStrategy::FullPq,
            ..Default::default()
        },
        &x,
    );
    let qonly = simulate_epoch(
        &platform,
        &wl,
        &SimConfig {
            strategy: TransferStrategy::QOnly,
            ..Default::default()
        },
        &x,
    );
    let half = simulate_epoch(
        &platform,
        &wl,
        &SimConfig {
            strategy: TransferStrategy::HalfQ,
            ..Default::default()
        },
        &x,
    );
    let comm = |t: &hcc_hetsim::EpochTrace| t.totals.iter().map(|w| w.pull + w.push).sum::<f64>();
    assert!(
        comm(&qonly) < comm(&full) / 10.0,
        "Netflix Q-only must slash comm"
    );
    assert!((comm(&half) - comm(&qonly) / 2.0).abs() / comm(&qonly) < 0.01);
    // Compute is untouched by the strategy.
    assert!((full.totals[2].compute - qonly.totals[2].compute).abs() < 1e-12);
}

#[test]
fn utilization_shape_matches_table4() {
    // Netflix and R2 land high (>75%), R1 lands low — the Table 4 ordering.
    let cfg = SimConfig::default();
    let mut utils = Vec::new();
    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r2(),
        DatasetProfile::yahoo_r1(),
    ] {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let plan = PartitionPlanner::default().plan(
            &cost_model_for(&platform, &wl, &cfg),
            &standalone_times(&platform, &wl),
            &worker_classes(&platform),
            virtual_measure(&platform, &wl),
        );
        let sim = simulate_training(&platform, &wl, &cfg, &plan.fractions, 20);
        utils.push(sim.computing_power / ideal_computing_power(&platform, &wl));
    }
    assert!(utils[0] > 0.75, "netflix {utils:?}");
    assert!(utils[1] > 0.75, "r2 {utils:?}");
    assert!(
        utils[2] < utils[0] && utils[2] < utils[1],
        "r1 should be lowest {utils:?}"
    );
}

#[test]
fn planner_strategy_choices_match_paper() {
    let cfg = SimConfig::default();
    let expect = [
        (DatasetProfile::netflix(), StrategyChoice::Dp1),
        (DatasetProfile::yahoo_r2(), StrategyChoice::Dp1),
        (DatasetProfile::yahoo_r1(), StrategyChoice::Dp2),
        (DatasetProfile::r1_star(), StrategyChoice::Dp2),
    ];
    for (profile, want) in expect {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let plan = PartitionPlanner::default().plan(
            &cost_model_for(&platform, &wl, &cfg),
            &standalone_times(&platform, &wl),
            &worker_classes(&platform),
            virtual_measure(&platform, &wl),
        );
        assert_eq!(
            plan.strategy, want,
            "{} (ratio {})",
            profile.name, plan.sync_ratio
        );
    }
}

#[test]
fn multi_stream_simulation_reduces_exposed_comm_on_r1() {
    let platform = Platform::paper_testbed_3workers();
    let wl = Workload::from_profile(&DatasetProfile::yahoo_r1());
    let x = dp0(&standalone_times(&platform, &wl));
    let sync_cfg = SimConfig {
        streams: 1,
        ..Default::default()
    };
    let async_cfg = SimConfig {
        streams: 4,
        ..Default::default()
    };
    let t_sync = simulate_epoch(&platform, &wl, &sync_cfg, &x).epoch_time;
    let t_async = simulate_epoch(&platform, &wl, &async_cfg, &x).epoch_time;
    assert!(t_async < t_sync, "async {t_async} !< sync {t_sync}");
}

#[test]
fn trainer_is_transport_invariant_across_wires() {
    // The same deterministic run over every wire the trainer supports:
    // in-process shared memory, the lock-free CommP buffers, Unix sockets,
    // and TCP. Fp32 frames round-trip exactly and merges happen in the
    // same worker order, so the factors must agree bit-for-bit.
    use hcc_mf::{HccConfig, HccMf, TransportKind, WorkerSpec};
    let ds = hcc_sparse::SyntheticDataset::generate(hcc_sparse::GenConfig {
        rows: 200,
        cols: 100,
        nnz: 5_000,
        planted_rank: 4,
        noise: 0.0,
        ..hcc_sparse::GenConfig::default()
    });
    let cfg = |transport: TransportKind| {
        HccConfig::builder()
            .k(8)
            .epochs(6)
            .learning_rate(hcc_mf::LearningRate::Constant(0.02))
            .lambda(0.01)
            .workers(vec![WorkerSpec::cpu(1), WorkerSpec::cpu(1)])
            .partition(hcc_mf::PartitionMode::Uniform)
            .adapt_epochs(0)
            .track_rmse(true)
            .transport(transport)
            .build()
    };
    let reference = HccMf::new(cfg(TransportKind::Shared))
        .train(&ds.matrix)
        .unwrap();
    for transport in [
        TransportKind::CommP,
        TransportKind::Socket,
        TransportKind::Tcp,
    ] {
        let report = HccMf::new(cfg(transport)).train(&ds.matrix).unwrap();
        assert_eq!(reference.p, report.p, "{transport:?}: P diverged");
        assert_eq!(reference.q, report.q, "{transport:?}: Q diverged");
        assert_eq!(
            reference.rmse_history, report.rmse_history,
            "{transport:?}: RMSE diverged"
        );
    }
}

#[test]
fn timeline_phases_are_complete_and_ordered() {
    let platform = Platform::paper_testbed_4workers();
    let wl = netflix();
    let trace = simulate_epoch(&platform, &wl, &SimConfig::default(), &[0.25; 4]);
    for w in 0..4 {
        let spans = trace.worker_spans(w);
        let phases: Vec<Phase> = spans.iter().map(|s| s.phase).collect();
        assert!(phases.contains(&Phase::Pull));
        assert!(phases.contains(&Phase::Compute));
        assert!(phases.contains(&Phase::Push));
        assert!(phases.contains(&Phase::Sync));
        for s in &spans {
            assert!(s.end >= s.start);
        }
    }
}
