//! Overload chaos for the async admission pipeline: saturate the bounded
//! queue well past capacity and demand the three load-shedding guarantees
//! hold together — admitted queries finish with bounded tail latency,
//! everything over capacity is shed with a typed error (never silently
//! dropped, never blocking the caller), and the sheds are visible in the
//! telemetry timeline, not just the in-process counters.
//!
//! Seeded by `CHAOS_SEED` (default 1) like `tests/chaos.rs`, so CI can
//! sweep a seed matrix while any single seed replays the same query
//! schedule. The *interleaving* of submitter vs dispatcher is still the
//! OS's choice — the assertions are therefore structural (counts balance,
//! bounds hold) rather than exact-trace.

use hcc_serve::{
    AdmissionConfig, AdmissionPipeline, Precision, ServeEngine, ServeError, ServedModel, Ticket,
};
use hcc_sgd::FactorMatrix;
use hcc_telemetry::{Event, Header, Telemetry};
use std::sync::Arc;
use std::time::Instant;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

const USERS: usize = 128;
const ITEMS: usize = 4_096;
const K: usize = 32;
const SHARDS: usize = 4;

/// f32 exhaustive (no norm pruning), so every query pays a full catalogue
/// scan: the point is queueing behaviour under real per-query work, and
/// pruning would make the skewless random catalogue artificially cheap.
fn overload_engine(seed: u64, lane_capacity: usize) -> Arc<ServeEngine> {
    let model = ServedModel::build_with(
        FactorMatrix::random(USERS, K, seed),
        FactorMatrix::random(ITEMS, K, seed ^ 0x5eed),
        None,
        SHARDS,
        Precision::F32,
        false,
    )
    .unwrap();
    let telemetry = Telemetry::enabled(
        Header {
            workers: model.shard_count() as u32,
            k: K as u32,
            nnz: 0,
            strategy: "serve".into(),
            streams: 1,
            backend: hcc_sgd::simd::active_backend().name().into(),
            schedule: "serve".into(),
        },
        lane_capacity,
    );
    Arc::new(ServeEngine::with_telemetry(model, telemetry))
}

#[test]
fn overload_sheds_typed_and_keeps_admitted_tail_latency_bounded() {
    let seed = chaos_seed();
    let capacity = 16usize;
    let max_batch = 8usize;
    let total = 4 * capacity; // saturate at 4x queue capacity
    let engine = overload_engine(seed, 4 * total);

    // Calibrate per-query service time on the synchronous path (also warms
    // the scan): the latency bound below is relative to real machine speed,
    // not an absolute number that flakes on slow CI.
    let calib = 8u32;
    let t0 = Instant::now();
    for u in 0..calib {
        engine.top_k(u % USERS as u32, 10).unwrap();
    }
    let per_query_us = t0.elapsed().as_secs_f64() * 1e6 / calib as f64;

    let pipeline = AdmissionPipeline::new(
        Arc::clone(&engine),
        AdmissionConfig {
            capacity,
            max_batch,
        },
    );

    // Burst `total` submissions as fast as the queue lock allows; a seeded
    // LCG picks the users. The submitter never blocks: each query either
    // admits with a ticket or sheds with the typed overload error.
    let mut state = seed | 1;
    let mut tickets: Vec<(u32, Ticket)> = Vec::new();
    let mut shed = 0u64;
    for _ in 0..total {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let user = (state >> 33) as u32 % USERS as u32;
        match pipeline.submit(user, 10) {
            Ok(t) => tickets.push((user, t)),
            Err(ServeError::Overloaded { capacity: c }) => {
                assert_eq!(
                    c, capacity,
                    "overload error reports the configured capacity"
                );
                shed += 1;
            }
            Err(other) => panic!("unexpected submit error: {other:?}"),
        }
    }

    // Conservation: every submission either got a ticket or was shed, and
    // the pipeline's own counters agree with the caller's view.
    assert_eq!(tickets.len() as u64 + shed, total as u64);
    let stats = pipeline.stats();
    assert_eq!(stats.admitted, tickets.len() as u64);
    assert_eq!(stats.shed, shed);
    assert!(
        shed > 0,
        "4x-capacity burst must shed: {total} submitted into capacity {capacity}"
    );

    // Every admitted query completes; latencies land in the engine
    // reservoir as each micro-batch answers.
    let answers: Vec<(u32, Vec<(u32, f32)>)> = tickets
        .into_iter()
        .map(|(user, t)| {
            let got = t.wait().unwrap_or_else(|e| panic!("user {user}: {e:?}"));
            (user, got)
        })
        .collect();

    // Bounded tail latency for admitted queries: the worst admitted query
    // waits behind at most (queue capacity + two in-flight jobs) queries
    // plus its own batch — the sync_channel backpressure between
    // dispatcher and workers is what caps the in-flight part. Slack
    // factor 50 absorbs debug-build scheduling noise while still failing
    // if backpressure stops working and latency grows with the burst size
    // instead of the queue bound.
    let backlog_bound = (capacity + 3 * max_batch) as f64;
    let p99_bound_us = 50.0 * backlog_bound * per_query_us;
    let p99_us = engine.stats().p99_us as f64;
    assert!(
        p99_us > 0.0 && p99_us <= p99_bound_us,
        "admitted p99 {p99_us:.0}us outside (0, {p99_bound_us:.0}us] \
         (per-query ~{per_query_us:.0}us, backlog bound {backlog_bound})"
    );

    // Answers match the synchronous path exactly (same scan kernels, same
    // deterministic merge tie-break).
    for (user, got) in &answers {
        assert_eq!(got, &engine.top_k(*user, 10).unwrap(), "user {user}");
    }

    // Shutdown joins dispatcher + workers, releasing the engine Arc; the
    // drained timeline must carry the sheds, not just the atomic counters.
    drop(pipeline);
    let timeline = Arc::try_unwrap(engine)
        .expect("pipeline shutdown released every engine handle")
        .finish_telemetry()
        .expect("telemetry was enabled");
    let mut max_shed = 0u64;
    let mut admitted_via_events = 0u64;
    let mut saw_admission_event = false;
    for e in &timeline.events {
        if let Event::Admission {
            epoch,
            depth,
            shed: s,
            admitted,
        } = e
        {
            saw_admission_event = true;
            assert_eq!(*epoch, 0, "serving admission events carry epoch 0");
            assert!(
                *depth <= capacity as u64,
                "sampled queue depth {depth} exceeds capacity {capacity}"
            );
            max_shed = max_shed.max(*s);
            admitted_via_events += admitted;
        }
    }
    assert!(saw_admission_event, "dispatcher records admission samples");
    assert_eq!(
        max_shed, shed,
        "cumulative shed count in the timeline matches the caller's"
    );
    assert_eq!(
        admitted_via_events, stats.admitted,
        "per-drain admitted counts sum to the admitted total"
    );
}
