//! A bounded top-k accumulator: a size-`k` min-heap over `(score, item)`.
//!
//! Candidate ordering matches the historical recommender contract exactly —
//! higher score first, ties broken by the *smaller* item id — so the heap
//! selection is rank-identical to sorting the full score vector and
//! truncating, at `O(n log k)` instead of `O(n log n)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scored candidate. `Ord` is "better-than": greater = higher score,
/// ties = smaller item id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Candidate {
    pub item: u32,
    pub score: f32,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp gives a total order on f32 (scores from finite factors
        // are finite, but a NaN must still not poison the heap invariant).
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.item.cmp(&self.item))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Keeps the `k` best candidates seen so far.
#[derive(Debug)]
pub(crate) struct TopK {
    k: usize,
    /// Min-heap via `Reverse`: the root is the *worst* kept candidate, the
    /// one a better newcomer evicts.
    heap: BinaryHeap<std::cmp::Reverse<Candidate>>,
}

impl TopK {
    pub fn new(k: usize) -> TopK {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers a candidate; keeps it only if it beats the current worst.
    #[inline]
    pub fn offer(&mut self, item: u32, score: f32) {
        if self.k == 0 {
            return;
        }
        let cand = Candidate { item, score };
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(cand));
        } else if self.heap.peek().is_some_and(|worst| cand > worst.0) {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(cand));
        }
    }

    /// Whether the heap already holds `k` candidates — the precondition
    /// for pruning on [`floor`](TopK::floor) (a non-full heap accepts any
    /// candidate, so nothing may be skipped yet). Vacuously true for
    /// `k = 0`, where every candidate is refused.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The score a newcomer must *beat* to enter a full heap (the worst
    /// kept candidate's score), or `None` when `k = 0` and nothing can
    /// ever enter. A scan may skip any candidate whose score upper bound
    /// is strictly below this floor; a bound exactly equal to the floor
    /// must still be scored (equal scores win on smaller item id).
    #[inline]
    pub fn floor(&self) -> Option<f32> {
        self.heap.peek().map(|worst| worst.0.score)
    }

    /// Drains into a best-first `(item, score)` list.
    pub fn into_sorted(self) -> Vec<(u32, f32)> {
        let mut out: Vec<Candidate> = self.heap.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        out.into_iter().map(|c| (c.item, c.score)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k_in_rank_order() {
        let mut t = TopK::new(3);
        for (i, s) in [(0, 1.0), (1, 5.0), (2, 3.0), (3, 4.0), (4, 2.0)] {
            t.offer(i, s);
        }
        assert_eq!(t.into_sorted(), vec![(1, 5.0), (3, 4.0), (2, 3.0)]);
    }

    #[test]
    fn ties_break_toward_smaller_item() {
        let mut t = TopK::new(2);
        for i in [5u32, 1, 3, 2] {
            t.offer(i, 7.0);
        }
        assert_eq!(t.into_sorted(), vec![(1, 7.0), (2, 7.0)]);
    }

    #[test]
    fn zero_k_stays_empty_and_fewer_candidates_than_k_is_fine() {
        let mut t = TopK::new(0);
        t.offer(0, 1.0);
        assert!(t.into_sorted().is_empty());
        let mut t = TopK::new(10);
        t.offer(0, 1.0);
        assert_eq!(t.into_sorted().len(), 1);
    }

    #[test]
    fn floor_tracks_the_worst_kept_candidate() {
        let mut t = TopK::new(2);
        assert!(!t.is_full());
        assert_eq!(t.floor(), None);
        t.offer(0, 5.0);
        assert!(!t.is_full());
        t.offer(1, 3.0);
        assert!(t.is_full());
        assert_eq!(t.floor(), Some(3.0));
        t.offer(2, 4.0); // evicts the 3.0
        assert_eq!(t.floor(), Some(4.0));
        // k = 0: full from the start, floor never exists.
        let t = TopK::new(0);
        assert!(t.is_full());
        assert_eq!(t.floor(), None);
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        // Deterministic pseudo-random scores; compare against sort+truncate.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut scores = Vec::new();
        for i in 0..500u32 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            scores.push((i, (x % 1000) as f32 / 10.0));
        }
        for k in [1usize, 7, 100, 499, 500, 600] {
            let mut t = TopK::new(k);
            for &(i, s) in &scores {
                t.offer(i, s);
            }
            let mut want = scores.clone();
            want.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            want.truncate(k);
            assert_eq!(t.into_sorted(), want, "k={k}");
        }
    }
}
