//! The downstream recommendation API (the paper's motivating use case,
//! §2.1), now a thin compatibility facade over the serving engine.
//!
//! This is the type the old `hcc_mf::recommend` module exported; it lives
//! here so every consumer (CLI, ranking metrics, baselines, examples)
//! shares one scoring path — bounded-heap top-k over the item-sharded
//! store — instead of the historical full `O(items log items)` sort.
//!
//! One deliberate contract change: [`Recommender::top_k`] returns a typed
//! [`ServeError`] for an out-of-range user instead of panicking mid-slice
//! like the old implementation did. Everything else (ranking, tie-breaking
//! toward smaller item ids, seen-item exclusion, truncation) is
//! rank-identical.

use crate::engine::top_k_on;
use crate::error::ServeError;
use crate::model::ServedModel;
use hcc_sgd::{dot, FactorMatrix};
use hcc_sparse::CooMatrix;

/// Serves predictions and top-k recommendations from trained factors.
#[derive(Debug, Clone)]
pub struct Recommender {
    model: ServedModel,
}

impl Recommender {
    /// Builds a recommender from trained factors and the training matrix
    /// (used to exclude already-rated items).
    ///
    /// # Panics
    /// Panics if factor dimensions don't match the matrix.
    pub fn new(p: FactorMatrix, q: FactorMatrix, train: &CooMatrix) -> Recommender {
        assert_eq!(p.rows(), train.rows() as usize, "P rows must match users");
        assert_eq!(q.rows(), train.cols() as usize, "Q rows must match items");
        assert_eq!(p.k(), q.k(), "P and Q must share k");
        let model = ServedModel::build(p, q, Some(train), 1).expect("shapes asserted above");
        Recommender { model }
    }

    /// Predicted rating for `(user, item)`.
    ///
    /// # Panics
    /// Panics if `user` or `item` is out of range (unchanged historical
    /// contract; use [`crate::ServeEngine::predict`] for a typed error).
    pub fn predict(&self, user: u32, item: u32) -> f32 {
        dot(
            self.model.user_row(user).expect("user out of range"),
            &self.model.item_row(item).expect("item out of range"),
        )
    }

    /// The `count` highest-predicted items for `user`, excluding items the
    /// user already rated. Returns `(item, score)` sorted descending, ties
    /// broken toward the smaller item id; an out-of-range user is a typed
    /// error, not a panic.
    pub fn top_k(&self, user: u32, count: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        top_k_on(&self.model, user, count)
    }

    /// Number of users.
    pub fn users(&self) -> usize {
        self.model.users()
    }

    /// Number of items.
    pub fn items(&self) -> usize {
        self.model.items()
    }

    /// The underlying immutable snapshot (e.g. to hand to a
    /// [`crate::ServeEngine`] without rebuilding shards).
    pub fn into_model(self) -> ServedModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::Rating;

    fn setup() -> Recommender {
        // 2 users, 3 items, k=1: scores are products of scalars.
        let p = FactorMatrix::from_vec(2, 1, vec![1.0, 2.0]);
        let q = FactorMatrix::from_vec(3, 1, vec![3.0, 1.0, 2.0]);
        let train =
            CooMatrix::new(2, 3, vec![Rating::new(0, 0, 5.0), Rating::new(1, 2, 4.0)]).unwrap();
        Recommender::new(p, q, &train)
    }

    #[test]
    fn predict_is_dot_product() {
        let r = setup();
        assert_eq!(r.predict(0, 0), 3.0);
        assert_eq!(r.predict(1, 2), 4.0);
    }

    #[test]
    fn top_k_excludes_seen_and_sorts() {
        let r = setup();
        // User 0 has seen item 0; remaining scores: item1=1, item2=2.
        assert_eq!(r.top_k(0, 2).unwrap(), vec![(2, 2.0), (1, 1.0)]);
        // User 1 has seen item 2; remaining: item0=6, item1=2.
        assert_eq!(r.top_k(1, 1).unwrap(), vec![(0, 6.0)]);
    }

    #[test]
    fn top_k_truncates() {
        let r = setup();
        assert_eq!(r.top_k(0, 10).unwrap().len(), 2);
        assert!(r.top_k(0, 0).unwrap().is_empty());
    }

    #[test]
    fn out_of_range_user_is_an_error_not_a_panic() {
        // The old Recommender sliced past P here and panicked.
        let r = setup();
        assert!(matches!(
            r.top_k(7, 1),
            Err(ServeError::UnknownUser { user: 7, users: 2 })
        ));
    }

    #[test]
    fn dims() {
        let r = setup();
        assert_eq!(r.users(), 2);
        assert_eq!(r.items(), 3);
    }
}
