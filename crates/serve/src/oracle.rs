//! The differential test oracle: a deliberately naive top-k.
//!
//! This is the specification the optimized serving path is tested against:
//! scalar dot products (`hcc_sgd::kernel::dot`, no SIMD dispatch), a full
//! score vector, a full `O(items log items)` sort, then truncation —
//! exactly what the historical `Recommender` did. It is kept simple enough
//! to be obviously correct; `tests/serving.rs` proptests the sharded +
//! SIMD + bounded-heap engine against it, and the `serving` bench uses it
//! as the single-query baseline the sharded path must beat.

use hcc_sgd::kernel::dot;
use hcc_sgd::FactorMatrix;
use hcc_sparse::CsrMatrix;

/// Scores every unseen item for `user` with scalar dots, sorts the full
/// vector (score descending, item ascending on ties), and truncates to
/// `count`.
///
/// # Panics
/// Panics if `user` is out of range or `p`/`q` disagree on `k` — it is a
/// test oracle, not a serving surface; the engine is the one that must
/// return typed errors.
pub fn naive_top_k(
    p: &FactorMatrix,
    q: &FactorMatrix,
    seen: Option<&CsrMatrix>,
    user: u32,
    count: usize,
) -> Vec<(u32, f32)> {
    let user_row = p.row(user as usize);
    let mut seen_sorted: Vec<u32> = match seen {
        Some(csr) if user < csr.rows() => csr.row(user).0.to_vec(),
        _ => Vec::new(),
    };
    seen_sorted.sort_unstable();
    let mut scored: Vec<(u32, f32)> = (0..q.rows() as u32)
        .filter(|i| seen_sorted.binary_search(i).is_err())
        .map(|i| (i, dot(user_row, q.row(i as usize))))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(count);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::{CooMatrix, Rating};

    #[test]
    fn matches_hand_computed_scores() {
        // 2 users, 3 items, k=1: scores are products of scalars.
        let p = FactorMatrix::from_vec(2, 1, vec![1.0, 2.0]);
        let q = FactorMatrix::from_vec(3, 1, vec![3.0, 1.0, 2.0]);
        let train =
            CooMatrix::new(2, 3, vec![Rating::new(0, 0, 5.0), Rating::new(1, 2, 4.0)]).unwrap();
        let seen = CsrMatrix::from(&train);
        assert_eq!(
            naive_top_k(&p, &q, Some(&seen), 0, 2),
            vec![(2, 2.0), (1, 1.0)]
        );
        assert_eq!(naive_top_k(&p, &q, Some(&seen), 1, 1), vec![(0, 6.0)]);
        assert_eq!(naive_top_k(&p, &q, None, 0, 1), vec![(0, 3.0)]);
    }
}
