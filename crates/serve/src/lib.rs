//! # hcc-serve — sharded online serving for trained HCC-MF factors
//!
//! Training (the paper's subject) produces the factor matrices `P`, `Q` of
//! `R ≈ P·Q`; this crate is the downstream half the paper motivates in
//! §2.1: answering *"which items should user `u` see next?"* at production
//! rates from those factors. The design mirrors the training side's
//! structure on purpose:
//!
//! * **Item-sharded factor store** ([`ServedModel`]) — `Q` is split into
//!   contiguous item shards planned with the same `hcc_partition` /
//!   `GridPartition` machinery that shards the rating matrix for training,
//!   so a batch query fans out across shards exactly like an epoch fans
//!   out across workers.
//! * **SIMD scoring with a bounded heap** — per-shard scans use the
//!   runtime-dispatched dot kernel from `hcc_sgd::simd` and keep only the
//!   top `k` candidates in a size-`k` heap (`O(items · log k)` per query,
//!   not the `O(items · log items)` full sort of the old recommender).
//! * **Hot model reload** ([`ServeEngine::reload`]) — the live model is an
//!   `Arc` snapshot behind a lock held only for the pointer swap; queries
//!   in flight finish on the model they started with, new queries see the
//!   new model, and a failed checkpoint load never swaps at all.
//! * **Online fold-in** ([`ServeEngine::fold_in`]) — an unseen user's `P`
//!   row is trained on the spot with a few SGD passes against the frozen
//!   `Q`, reusing `hcc_sgd::kernel::sgd_step`.
//! * **Precision tiers** ([`Precision`]) — shards store `Q` at `f32`,
//!   `fp16` (F16C codec from `hcc_sgd::fp16`), or `int8` with one scale
//!   per shard, halving or quartering scan bandwidth; every tier is held
//!   to the rank-equivalence oracle under a score tolerance.
//! * **MIPS norm pruning** — pruned shards order items by descending
//!   stored norm with per-block norm maxima, so a full heap ends the scan
//!   at the first block whose Cauchy–Schwarz bound `‖p_u‖·‖q_i‖` cannot
//!   beat the heap floor. Exact, not approximate (see `engine` docs).
//! * **Bounded async admission** ([`AdmissionPipeline`]) — a bounded
//!   queue feeds micro-batches to persistent per-shard scan workers;
//!   overload sheds at the door with [`ServeError::Overloaded`] instead
//!   of letting queue wait destroy tail latency.
//!
//! Correctness is anchored by a differential oracle: the sharded + SIMD +
//! heap pipeline must be rank-identical (score-tie tolerant) to
//! [`oracle::naive_top_k`], the straightforward scalar full scan. The
//! proptest suite in `tests/serving.rs` (of the `hcc-mf` package) holds
//! the two paths together.
//!
//! ```
//! use hcc_serve::{ServeEngine, ServedModel};
//! use hcc_sgd::FactorMatrix;
//!
//! let p = FactorMatrix::random(100, 16, 1);
//! let q = FactorMatrix::random(500, 16, 2);
//! let model = ServedModel::build(p, q, None, 4).unwrap();
//! let engine = ServeEngine::new(model);
//! let top = engine.top_k(7, 5).unwrap();
//! assert_eq!(top.len(), 5);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod admission;
pub mod engine;
pub mod error;
pub mod foldin;
pub mod model;
pub mod oracle;
pub mod precision;
pub mod recommend;
mod topk;

pub use admission::{AdmissionConfig, AdmissionPipeline, AdmissionStats, Ticket};
pub use engine::{ServeEngine, ServeStats};
pub use error::ServeError;
pub use foldin::FoldInConfig;
pub use model::ServedModel;
pub use oracle::naive_top_k;
pub use precision::Precision;
pub use recommend::Recommender;
