//! Serving-side storage precision tiers.
//!
//! A served model stores its item factors at one of three precisions,
//! chosen at build time. Lower tiers trade a bounded quantization error
//! (fp16: ~2⁻¹¹ relative; int8: ≤ scale/2 absolute per element) for half
//! or quarter memory traffic per scanned item — the serving analog of the
//! training side's FP16 transmission strategy, following CuMF_SGD's
//! observation that MF factor values tolerate half precision.

/// Storage precision of a [`ServedModel`](crate::ServedModel)'s item shards.
/// The user matrix `P` always stays f32 (it is read once per query, not
/// once per item, so shrinking it buys nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full f32 rows — exact scores, the reference tier.
    #[default]
    F32,
    /// IEEE-754 binary16 rows decoded on the fly (F16C on x86-64).
    Fp16,
    /// Symmetric int8 rows with one scale per shard; scores are integer
    /// dots rescaled by `scale_item · scale_query`.
    Int8,
}

impl Precision {
    /// Stable name used by the CLI flag and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Fp16 => "fp16",
            Precision::Int8 => "int8",
        }
    }

    /// Inverse of [`name`](Precision::name).
    pub fn from_name(s: &str) -> Option<Precision> {
        Some(match s {
            "f32" => Precision::F32,
            "fp16" => Precision::Fp16,
            "int8" => Precision::Int8,
            _ => return None,
        })
    }
}

impl std::str::FromStr for Precision {
    type Err = String;

    fn from_str(s: &str) -> Result<Precision, String> {
        Precision::from_name(s)
            .ok_or_else(|| format!("unknown precision {s:?} (expected f32, fp16 or int8)"))
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in [Precision::F32, Precision::Fp16, Precision::Int8] {
            assert_eq!(Precision::from_name(p.name()), Some(p));
            assert_eq!(p.name().parse::<Precision>().unwrap(), p);
        }
        assert_eq!(Precision::from_name("f64"), None);
        assert!("bf16".parse::<Precision>().is_err());
    }

    #[test]
    fn default_is_f32() {
        assert_eq!(Precision::default(), Precision::F32);
    }
}
