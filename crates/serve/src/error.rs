//! Typed serving errors.
//!
//! A serving engine answers untrusted queries; a bad user id must come back
//! as a value the caller can map to an HTTP 4xx, never as a panic that
//! takes the whole process down (the latent bug in the pre-serve
//! `Recommender::top_k`).

/// Everything that can go wrong building a model or answering a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The queried user id is not a row of `P`.
    UnknownUser {
        /// Requested user.
        user: u32,
        /// Users the model actually has.
        users: usize,
    },
    /// A fold-in rating names an item that is not a row of `Q`.
    UnknownItem {
        /// Offending item.
        item: u32,
        /// Items the model actually has.
        items: usize,
    },
    /// Factor matrices (or the seen matrix) disagree on shape.
    DimMismatch(String),
    /// Fold-in was asked to learn from zero ratings.
    EmptyFoldIn,
    /// The admission queue was full and the query was shed instead of
    /// queued (backpressure: the caller should retry later or degrade).
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The admission pipeline shut down before this query was answered.
    PipelineClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownUser { user, users } => {
                write!(f, "unknown user {user} (model has {users} users)")
            }
            ServeError::UnknownItem { item, items } => {
                write!(f, "unknown item {item} (model has {items} items)")
            }
            ServeError::DimMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            ServeError::EmptyFoldIn => write!(f, "fold-in needs at least one rating"),
            ServeError::Overloaded { capacity } => {
                write!(f, "admission queue full ({capacity} queries); query shed")
            }
            ServeError::PipelineClosed => {
                write!(f, "admission pipeline shut down before answering")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = ServeError::UnknownUser { user: 9, users: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        assert!(ServeError::EmptyFoldIn.to_string().contains("fold-in"));
    }
}
