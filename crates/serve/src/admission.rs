//! Bounded admission queue + persistent per-shard worker pool.
//!
//! The old batch path spawned one thread per shard under
//! `std::thread::scope` for *every* batch: thread startup cost on the hot
//! path, and — worse — unbounded concurrency under overload, where every
//! waiting caller holds a full set of scan threads and tail latency
//! collapses. This module replaces that with the standard server-side
//! shape:
//!
//! 1. **Bounded admission.** [`AdmissionPipeline::submit`] enqueues the
//!    query or — when the queue already holds `capacity` entries — *sheds*
//!    it immediately with [`ServeError::Overloaded`]. Load the pipeline
//!    cannot serve within its latency budget is rejected at the door, so
//!    the latency of *admitted* queries stays bounded by
//!    `capacity / throughput` instead of growing with offered load.
//! 2. **Adaptive micro-batching.** A dispatcher thread drains up to
//!    `max_batch` waiting queries per wake-up. Under light load it drains
//!    batches of one (no added latency); as backlog builds, batches grow
//!    toward `max_batch` and the per-batch costs (model snapshot, fan-out,
//!    merge) amortize across more queries — throughput rises exactly when
//!    it is needed.
//! 3. **Persistent per-shard workers.** One worker thread per item shard
//!    (at construction), each owning a channel of batch jobs. Workers
//!    stride over shards (`shard s goes to worker s mod W`) so a hot
//!    reload that changes the shard count redistributes instead of
//!    crashing. The last worker to finish a job merges the per-shard
//!    heaps and answers every caller — no coordinator wake-up on the
//!    critical path.
//!
//! Per-query latency is measured enqueue→answer, so the engine's
//! percentiles include queue wait — the number that actually degrades
//! under overload. The dispatcher samples queue depth, cumulative shed
//! count, and batch size into an [`Event::Admission`] telemetry event
//! after every drain (on telemetry lane 0, which serving otherwise leaves
//! unused; the dispatcher thread is its single writer).

use crate::engine::{scan_shard, QueryPrep, ServeEngine};
use crate::error::ServeError;
use crate::model::ServedModel;
use crate::topk::TopK;
use hcc_sync::{Arc, AtomicU64, AtomicUsize, Condvar, Mutex, Ordering};
use hcc_telemetry::Event;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Admission-queue tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queries waiting in the queue; a submit beyond this sheds.
    pub capacity: usize,
    /// Maximum queries drained into one micro-batch.
    pub max_batch: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            capacity: 1024,
            max_batch: 64,
        }
    }
}

/// Counters describing the pipeline's admission behavior so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries accepted into the queue.
    pub admitted: u64,
    /// Queries rejected because the queue was full.
    pub shed: u64,
    /// Queries waiting right now.
    pub depth: usize,
}

type Answer = Result<Vec<(u32, f32)>, ServeError>;

/// One worker's best candidates per query of a batch job
/// (`partial[qi]` is worker-local top-k material for query `qi`).
type WorkerPartial = Vec<Vec<(u32, f32)>>;

/// One admitted query, owned by the queue and then by a batch job.
struct Request {
    user: u32,
    count: usize,
    enqueued: Instant,
    tx: mpsc::SyncSender<Answer>,
}

/// A pending answer; blocks on [`wait`](Ticket::wait).
pub struct Ticket {
    rx: mpsc::Receiver<Answer>,
}

impl Ticket {
    /// Blocks until the pipeline answers this query.
    pub fn wait(self) -> Answer {
        self.rx.recv().unwrap_or(Err(ServeError::PipelineClosed))
    }
}

/// One micro-batch in flight: a model snapshot, the admitted queries with
/// their per-query scan state, one partial-result slot per worker, and the
/// countdown that elects the merging worker.
struct BatchJob {
    model: Arc<ServedModel>,
    queries: Vec<Request>,
    preps: Vec<QueryPrep>,
    seens: Vec<Vec<u32>>,
    /// `partials[w][qi]`: worker `w`'s best candidates for query `qi`.
    /// Each slot is written by exactly one worker; the mutex hands the
    /// contents to the merging worker.
    partials: Vec<Mutex<WorkerPartial>>,
    /// Workers still running this job; the one that decrements to zero
    /// merges and responds.
    remaining: AtomicUsize,
}

struct QueueState {
    waiting: VecDeque<Request>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    notify: Condvar,
    config: AdmissionConfig,
    admitted: AtomicU64,
    shed: AtomicU64,
}

/// An asynchronous serving front end over a [`ServeEngine`]: bounded
/// admission, micro-batched dispatch, persistent per-shard scan workers.
///
/// Dropping the pipeline processes everything already admitted, then joins
/// the dispatcher and workers; queries submitted after the drop began get
/// [`ServeError::PipelineClosed`] from their tickets.
pub struct AdmissionPipeline {
    engine: Arc<ServeEngine>,
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl AdmissionPipeline {
    /// Starts the dispatcher and one scan worker per item shard of the
    /// engine's *current* model (a later reload with a different shard
    /// count redistributes shards across the existing workers).
    pub fn new(engine: Arc<ServeEngine>, config: AdmissionConfig) -> AdmissionPipeline {
        let config = AdmissionConfig {
            capacity: config.capacity.max(1),
            max_batch: config.max_batch.max(1),
        };
        let worker_count = engine.model().shard_count().max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                waiting: VecDeque::new(),
                shutdown: false,
            }),
            notify: Condvar::new(),
            config,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        });

        let mut senders = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        for w in 0..worker_count {
            // A buffer of one job per worker: the dispatcher blocks on
            // `send` once a worker already has an unstarted job queued, so
            // under overload the backlog accumulates in the *bounded*
            // admission queue (where it sheds) instead of growing without
            // limit inside the job channels. In-flight work is therefore
            // capped at two jobs (one scanning + one buffered), which is
            // what bounds the latency of admitted queries.
            let (tx, rx) = mpsc::sync_channel::<Arc<BatchJob>>(1);
            senders.push(tx);
            let engine = Arc::clone(&engine);
            workers.push(std::thread::spawn(move || {
                worker_loop(w, worker_count, rx, engine)
            }));
        }

        let dispatcher = {
            let shared = Arc::clone(&shared);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || dispatcher_loop(shared, engine, senders))
        };

        AdmissionPipeline {
            engine,
            shared,
            dispatcher: Some(dispatcher),
            workers,
        }
    }

    /// Admits a top-k query, or sheds it if the queue is full. The
    /// returned [`Ticket`] resolves once a worker batch answers it.
    pub fn submit(&self, user: u32, count: usize) -> Result<Ticket, ServeError> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.shared.queue.lock();
            if q.shutdown {
                return Err(ServeError::PipelineClosed);
            }
            if q.waiting.len() >= self.shared.config.capacity {
                drop(q);
                // ordering: Relaxed — statistics counter; the shed
                // decision itself is made under the queue mutex.
                self.shared.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    capacity: self.shared.config.capacity,
                });
            }
            q.waiting.push_back(Request {
                user,
                count,
                enqueued: Instant::now(),
                tx,
            });
        }
        // ordering: Relaxed — statistics counter, as above.
        self.shared.admitted.fetch_add(1, Ordering::Relaxed);
        self.shared.notify.notify_one();
        Ok(Ticket { rx })
    }

    /// Convenience: submit and wait.
    pub fn top_k(&self, user: u32, count: usize) -> Answer {
        self.submit(user, count)?.wait()
    }

    /// Admission counters (the engine's [`ServeEngine::stats`] carries the
    /// latency percentiles of the answered queries).
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            // ordering: Relaxed — statistics snapshot.
            admitted: self.shared.admitted.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            depth: self.shared.queue.lock().waiting.len(),
        }
    }

    /// The engine this pipeline answers from.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }
}

impl Drop for AdmissionPipeline {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock();
            q.shutdown = true;
        }
        self.shared.notify.notify_all();
        if let Some(d) = self.dispatcher.take() {
            // A panicked dispatcher already answered no one; joining the
            // corpse is still correct and keeps Drop panic-free.
            let _ = d.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for AdmissionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("AdmissionPipeline")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.config.capacity)
            .field("max_batch", &self.shared.config.max_batch)
            .field("admitted", &s.admitted)
            .field("shed", &s.shed)
            .finish()
    }
}

/// Dispatcher: drain a micro-batch, snapshot the model, precompute
/// per-query scan state, fan the job out, sample telemetry. Exits once
/// shutdown is flagged *and* the queue is empty, so everything admitted
/// before a drop still gets answered.
fn dispatcher_loop(
    shared: Arc<Shared>,
    engine: Arc<ServeEngine>,
    senders: Vec<mpsc::SyncSender<Arc<BatchJob>>>,
) {
    // The dispatcher is the sole writer of telemetry lane 0 from here on
    // (serving headers size lanes for shard workers, which never record);
    // adopt once, strictly after pipeline construction handed us off.
    engine.telemetry().adopt_lane(0);
    loop {
        let (batch, depth_after) = {
            let mut q = shared.queue.lock();
            while q.waiting.is_empty() && !q.shutdown {
                shared.notify.wait(&mut q);
            }
            if q.waiting.is_empty() {
                break; // shutdown and fully drained
            }
            let n = q.waiting.len().min(shared.config.max_batch);
            let batch: Vec<Request> = q.waiting.drain(..n).collect();
            (batch, q.waiting.len())
        };
        let admitted_now = batch.len() as u64;

        let model = engine.model();
        // Validate users against the snapshot the workers will scan; a bad
        // id answers immediately and never reaches a worker.
        let mut queries = Vec::with_capacity(batch.len());
        for req in batch {
            match model.user_row(req.user) {
                Ok(_) => queries.push(req),
                Err(e) => {
                    let _ = req.tx.send(Err(e));
                }
            }
        }
        if !queries.is_empty() {
            let preps: Vec<QueryPrep> = queries
                .iter()
                .map(|r| {
                    let row = model.user_row(r.user).unwrap_or(&[]);
                    QueryPrep::new(&model, row)
                })
                .collect();
            let seens: Vec<Vec<u32>> = queries.iter().map(|r| model.seen_items(r.user)).collect();
            let nq = queries.len();
            let job = Arc::new(BatchJob {
                model,
                queries,
                preps,
                seens,
                partials: (0..senders.len())
                    .map(|_| Mutex::new(vec![Vec::new(); nq]))
                    .collect(),
                remaining: AtomicUsize::new(senders.len()),
            });
            for tx in &senders {
                // Blocks while the worker's one-job buffer is full — that
                // backpressure is what keeps in-flight work bounded. A
                // worker that died takes the whole process down with it
                // (its panic propagates at join); a failed send here only
                // happens during that teardown.
                let _ = tx.send(Arc::clone(&job));
            }
        }

        if engine.telemetry().is_enabled() {
            engine.telemetry().record(
                0,
                Event::Admission {
                    epoch: 0,
                    depth: depth_after as u64,
                    // ordering: Relaxed — a sampled statistic; slight lag
                    // behind concurrent sheds is fine.
                    shed: shared.shed.load(Ordering::Relaxed),
                    admitted: admitted_now,
                },
            );
        }
    }
    // Dropping `senders` here hangs up the job channels; workers exit
    // their recv loops once in-flight jobs finish.
}

/// Scan worker `w` of `total`: scores its shards (strided `w, w+total, …`)
/// for every query of every job; the last worker done with a job merges
/// the partial heaps and answers the callers.
fn worker_loop(
    w: usize,
    total: usize,
    rx: mpsc::Receiver<Arc<BatchJob>>,
    engine: Arc<ServeEngine>,
) {
    while let Ok(job) = rx.recv() {
        let mut mine: Vec<Vec<(u32, f32)>> = Vec::with_capacity(job.queries.len());
        let mut visited = 0u64;
        let mut possible = 0u64;
        for (qi, req) in job.queries.iter().enumerate() {
            // Validated by the dispatcher against this same snapshot; an
            // empty row (unreachable) scores nothing rather than panicking.
            let row = job.model.user_row(req.user).unwrap_or(&[]);
            let mut best = TopK::new(req.count);
            for (si, shard) in job.model.shards().iter().enumerate() {
                if si % total != w {
                    continue;
                }
                visited += scan_shard(
                    shard,
                    row,
                    &job.preps[qi],
                    &job.seens[qi],
                    job.model.pruned(),
                    &mut best,
                );
                possible += shard.len as u64;
            }
            mine.push(best.into_sorted());
        }
        engine.note_scan(visited, possible);
        *job.partials[w].lock() = mine;
        // ordering: AcqRel — the Release half publishes this worker's
        // partial writes to whichever worker decrements last; the Acquire
        // half makes the last decrementer (who sees 1) observe every other
        // worker's prior Release in the RMW chain, so the merge below
        // reads fully written partials. The partial mutexes alone don't
        // give the merger that edge — it may lock a slot the owner
        // released long ago — so the countdown carries it.
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            merge_and_respond(&engine, &job);
        }
    }
}

/// Merges every worker's partial heaps and answers each caller; records
/// the per-query enqueue→answer latencies on the engine.
fn merge_and_respond(engine: &ServeEngine, job: &BatchJob) {
    let per_worker: Vec<Vec<Vec<(u32, f32)>>> = job
        .partials
        .iter()
        .map(|m| std::mem::take(&mut *m.lock()))
        .collect();
    let mut lats = Vec::with_capacity(job.queries.len());
    for (qi, req) in job.queries.iter().enumerate() {
        let mut best = TopK::new(req.count);
        for partial in &per_worker {
            for &(item, score) in &partial[qi] {
                best.offer(item, score);
            }
        }
        let _ = req.tx.send(Ok(best.into_sorted()));
        lats.push(req.enqueued.elapsed().as_micros() as u64);
    }
    engine.note_latencies(&lats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::FactorMatrix;

    fn engine(users: usize, items: usize, k: usize, shards: usize) -> Arc<ServeEngine> {
        Arc::new(ServeEngine::new(
            ServedModel::build(
                FactorMatrix::random(users, k, 5),
                FactorMatrix::random(items, k, 6),
                None,
                shards,
            )
            .unwrap(),
        ))
    }

    #[test]
    fn pipeline_answers_match_the_synchronous_path() {
        let engine = engine(16, 200, 8, 3);
        let pipeline = AdmissionPipeline::new(Arc::clone(&engine), AdmissionConfig::default());
        for u in 0..16u32 {
            let got = pipeline.top_k(u, 7).unwrap();
            let want = engine.top_k(u, 7).unwrap();
            assert_eq!(got, want, "user {u}");
        }
        assert_eq!(pipeline.stats().admitted, 16);
        assert_eq!(pipeline.stats().shed, 0);
    }

    #[test]
    fn unknown_user_is_answered_typed_through_the_pipeline() {
        let engine = engine(4, 32, 4, 2);
        let pipeline = AdmissionPipeline::new(engine, AdmissionConfig::default());
        assert!(matches!(
            pipeline.top_k(99, 3),
            Err(ServeError::UnknownUser { user: 99, users: 4 })
        ));
    }

    #[test]
    fn micro_batches_amortize_under_concurrent_load() {
        let engine = engine(64, 300, 8, 4);
        let pipeline = AdmissionPipeline::new(
            Arc::clone(&engine),
            AdmissionConfig {
                capacity: 256,
                max_batch: 16,
            },
        );
        let tickets: Vec<(u32, Ticket)> = (0..64u32)
            .map(|u| (u, pipeline.submit(u, 5).unwrap()))
            .collect();
        for (u, t) in tickets {
            assert_eq!(t.wait().unwrap(), engine.top_k(u, 5).unwrap(), "user {u}");
        }
    }

    #[test]
    fn full_queue_sheds_with_a_typed_error() {
        let engine = engine(8, 64, 4, 2);
        // Capacity 1 and a held dispatcher? Simplest deterministic route:
        // enqueue while the dispatcher races — some submits may process
        // quickly, so drive until a shed is observed or the cap proves
        // unreachable (which would fail the final assertion).
        let pipeline = AdmissionPipeline::new(
            engine,
            AdmissionConfig {
                capacity: 1,
                max_batch: 1,
            },
        );
        let mut shed = 0u64;
        let mut tickets = Vec::new();
        for round in 0..200u32 {
            match pipeline.submit(round % 8, 3) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 1);
                    shed += 1;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert_eq!(pipeline.stats().shed, shed);
        for t in tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn drop_drains_admitted_queries() {
        let engine = engine(8, 64, 4, 2);
        let pipeline = AdmissionPipeline::new(Arc::clone(&engine), AdmissionConfig::default());
        let tickets: Vec<Ticket> = (0..8u32)
            .filter_map(|u| pipeline.submit(u, 3).ok())
            .collect();
        drop(pipeline);
        for t in tickets {
            assert!(t.wait().is_ok(), "admitted before drop ⇒ answered");
        }
    }
}
