//! The serving engine: snapshot queries, pruned shard scans, hot reload.
//!
//! ## Snapshot discipline
//!
//! The live model is an `Arc<ServedModel>` behind a `parking_lot::RwLock`
//! that is only ever held long enough to clone or replace the `Arc` — never
//! across a scan. Every query (and every batch) clones the `Arc` once up
//! front and answers entirely from that snapshot, so:
//!
//! * a reload never blocks behind a long scan and a scan never observes a
//!   half-installed model (the swap is a single pointer store);
//! * a whole batch is answered against *one* model even if a reload lands
//!   mid-batch — no torn batches;
//! * the old model is freed when the last in-flight query drops its `Arc`.
//!
//! ## Query plan
//!
//! Queries scan the item shards with the precision tier's dot kernel into a
//! size-`k` heap. On a pruned model the rows come in descending-norm order
//! with per-block norm maxima, so once the heap is full the scan checks
//! `‖p_u‖ · block_norm < heap floor` per block and stops at the first
//! block that cannot beat the floor — the Cauchy–Schwarz bound makes the
//! early exit *exact* (any remaining item's score is bounded by the
//! product of norms). On realistic factor distributions this skips the
//! large majority of items; [`ServeStats::scan_frac`] reports the measured
//! fraction actually scored.
//!
//! Calls on this type run the scan on the caller's thread; the concurrent
//! fan-out lives in [`crate::AdmissionPipeline`], which feeds persistent
//! per-shard workers through a bounded admission queue (replacing the old
//! per-batch `std::thread::scope` spawn, whose thread startup cost was
//! paid on every batch and whose unbounded concurrency collapsed tail
//! latency under overload).

use crate::error::ServeError;
use crate::foldin::{fold_in, FoldInConfig};
use crate::model::{ItemShard, ServedModel, ShardData, NORM_BLOCK};
use crate::precision::Precision;
use crate::topk::TopK;
use hcc_sgd::{int8, simd};
use hcc_sync::{Arc, AtomicU64, Mutex, Ordering, RwLock};
use hcc_telemetry::{Phase, Telemetry, Timeline};
use std::time::Instant;

/// Aggregate serving statistics since the engine was built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Queries answered (each user of a batch counts once).
    pub queries: u64,
    /// Completed hot reloads.
    pub reloads: u64,
    /// Median per-query latency, µs (0 with no traffic). Batch queries
    /// report amortized per-user latency.
    pub p50_us: u64,
    /// 99th-percentile per-query latency, µs.
    pub p99_us: u64,
    /// 99.9th-percentile per-query latency, µs.
    pub p999_us: u64,
    /// Queries per second over the engine's lifetime.
    pub qps: f64,
    /// Fraction of candidate items actually scored (scored ÷ scannable);
    /// `1 − scan_frac` is the pruning skip rate. 0 with no traffic.
    pub scan_frac: f64,
}

/// An in-process serving engine over an item-sharded factor snapshot.
pub struct ServeEngine {
    current: RwLock<Arc<ServedModel>>,
    telemetry: Telemetry,
    /// Bounded reservoir of per-query latencies in µs (amortized for
    /// batches). Serving-path bookkeeping, not hot relative to an
    /// `O(items · k)` scan. This mutex also serializes writes to the
    /// telemetry server lane — see [`ServeEngine::note_queries`].
    latencies: Mutex<LatencyReservoir>,
    queries: AtomicU64,
    reloads: AtomicU64,
    /// Items scored across all queries (pruned and seen items excluded).
    scanned: AtomicU64,
    /// Items an exhaustive scan would have visited (`model.items()` summed
    /// per query) — the denominator of [`ServeStats::scan_frac`].
    scannable: AtomicU64,
    started: Instant,
}

/// Fixed-memory uniform sample of per-query latencies (Vitter's
/// algorithm R). A serving process answers queries indefinitely, so the
/// stats store must not grow with traffic; a reservoir keeps percentile
/// estimates representative of the whole run in `CAP` slots. Runs
/// shorter than `CAP` queries (every test, most benches) see exact
/// percentiles because nothing has been evicted yet.
struct LatencyReservoir {
    sample: Vec<u64>,
    /// Total latencies offered, including evicted ones.
    seen: u64,
    /// xorshift64* state — cheap in-crate PRNG; determinism across runs
    /// is fine (this only picks eviction slots), seed must be nonzero.
    rng: u64,
}

impl LatencyReservoir {
    const CAP: usize = 4096;

    fn new() -> LatencyReservoir {
        LatencyReservoir {
            sample: Vec::new(),
            seen: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn record(&mut self, us: u64) {
        self.seen += 1;
        if self.sample.len() < Self::CAP {
            self.sample.push(us);
            return;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let j = self.rng % self.seen;
        if (j as usize) < Self::CAP {
            self.sample[j as usize] = us;
        }
    }
}

/// Per-query precomputation the scan kernels need beyond the f32 user row:
/// the user-side norm for the pruning bound (in the same representation the
/// scores are computed in), and — for int8 models — the quantized user row.
/// Built once per query, reused across every shard.
pub(crate) struct QueryPrep {
    /// ‖û‖ of the scoring representation: the f32 row's norm for f32/fp16
    /// models, the *dequantized* quantized row's norm for int8 (the scan
    /// scores `scale_i·scale_u·⟨q_u, q_i⟩ = ⟨û, q̂_i⟩`, so the bound must
    /// use `‖û‖`, not `‖u‖`).
    norm: f32,
    /// `(quantized row, scale)` — present iff the model's tier is int8.
    i8: Option<(Vec<i8>, f32)>,
}

impl QueryPrep {
    pub(crate) fn new(model: &ServedModel, row: &[f32]) -> QueryPrep {
        match model.precision() {
            Precision::Int8 => {
                let scale = int8::scale_for(row);
                let mut q = vec![0i8; row.len()];
                int8::quantize(row, scale, &mut q);
                let norm = scale * (int8::dot_i8_scalar(&q, &q) as f32).sqrt();
                QueryPrep {
                    norm,
                    i8: Some((q, scale)),
                }
            }
            _ => QueryPrep {
                norm: simd::dot(row, row).sqrt(),
                i8: None,
            },
        }
    }
}

impl ServeEngine {
    /// An engine serving `model`, with telemetry off.
    pub fn new(model: ServedModel) -> ServeEngine {
        ServeEngine::with_telemetry(model, Telemetry::disabled())
    }

    /// An engine recording a [`Phase::Query`] span per answered query on
    /// the given telemetry handle (use [`finish_telemetry`] to drain it).
    ///
    /// [`finish_telemetry`]: ServeEngine::finish_telemetry
    pub fn with_telemetry(model: ServedModel, telemetry: Telemetry) -> ServeEngine {
        ServeEngine {
            current: RwLock::new(Arc::new(model)),
            telemetry,
            latencies: Mutex::new(LatencyReservoir::new()),
            queries: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            scanned: AtomicU64::new(0),
            scannable: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The current model snapshot (queries in flight may still hold older
    /// snapshots).
    pub fn model(&self) -> Arc<ServedModel> {
        self.current.read().clone()
    }

    /// Atomically installs a new model; returns the reload count. Queries
    /// already running finish on the model they started with; the swap
    /// itself is a pointer store under a briefly held write lock, so there
    /// is zero query downtime. Validation happens in
    /// [`ServedModel::build`] — by the time a model exists it is servable,
    /// and a failed build/load leaves the old model in place untouched.
    pub fn reload(&self, model: ServedModel) -> u64 {
        *self.current.write() = Arc::new(model);
        // ordering: Relaxed — reload counter is a statistic; the RwLock
        // write above is what publishes the new model.
        self.reloads.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Predicted score for `(user, item)` on the current snapshot, at the
    /// snapshot's storage precision.
    pub fn predict(&self, user: u32, item: u32) -> Result<f32, ServeError> {
        let model = self.model();
        let item_row = model.item_row(item)?;
        Ok(simd::dot(model.user_row(user)?, &item_row))
    }

    /// The `count` highest-scored unseen items for `user`, best first.
    pub fn top_k(&self, user: u32, count: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        let model = self.model();
        let t0 = Instant::now();
        let (result, visited) = top_k_counted(&model, user, count)?;
        self.note_scan(visited, model.items() as u64);
        self.note_queries(1, t0);
        Ok(result)
    }

    /// Answers a batch of top-k queries against one snapshot, serially on
    /// the calling thread. Any unknown user fails the whole batch before
    /// any scoring work happens. For concurrent batch execution route
    /// through [`crate::AdmissionPipeline`], which keeps persistent
    /// per-shard workers instead of spawning threads per batch.
    pub fn top_k_batch(
        &self,
        users: &[u32],
        count: usize,
    ) -> Result<Vec<Vec<(u32, f32)>>, ServeError> {
        let model = self.model();
        let t0 = Instant::now();
        // Resolve every user row up front: validates the whole batch before
        // any scoring work.
        let rows: Vec<&[f32]> = users
            .iter()
            .map(|&u| model.user_row(u))
            .collect::<Result<_, ServeError>>()?;
        let mut visited = 0u64;
        let result = rows
            .iter()
            .zip(users)
            .map(|(&row, &u)| {
                let seen = model.seen_items(u);
                let prep = QueryPrep::new(&model, row);
                let mut best = TopK::new(count);
                for shard in model.shards() {
                    visited += scan_shard(shard, row, &prep, &seen, model.pruned(), &mut best);
                }
                best.into_sorted()
            })
            .collect();
        self.note_scan(visited, (users.len() * model.items()) as u64);
        self.note_queries(users.len() as u64, t0);
        Ok(result)
    }

    /// Folds an unseen user into the current snapshot: trains a fresh `P`
    /// row on `ratings` against the frozen `Q` and returns it (the model
    /// itself stays immutable). Feed the row to
    /// [`top_k_folded`](ServeEngine::top_k_folded).
    pub fn fold_in(
        &self,
        ratings: &[(u32, f32)],
        config: &FoldInConfig,
    ) -> Result<Vec<f32>, ServeError> {
        fold_in(&self.model(), ratings, config)
    }

    /// Top-k for a caller-supplied user row (typically from
    /// [`fold_in`](ServeEngine::fold_in)); `exclude` lists item ids to skip
    /// (the fold-in user's own ratings, in any order).
    pub fn top_k_folded(
        &self,
        user_row: &[f32],
        count: usize,
        exclude: &[u32],
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        let model = self.model();
        if user_row.len() != model.k() {
            return Err(ServeError::DimMismatch(format!(
                "fold-in row has k={}, model has k={}",
                user_row.len(),
                model.k()
            )));
        }
        let t0 = Instant::now();
        let mut seen = exclude.to_vec();
        seen.sort_unstable();
        let prep = QueryPrep::new(&model, user_row);
        let mut best = TopK::new(count);
        let mut visited = 0u64;
        for shard in model.shards() {
            visited += scan_shard(shard, user_row, &prep, &seen, model.pruned(), &mut best);
        }
        self.note_scan(visited, model.items() as u64);
        self.note_queries(1, t0);
        Ok(best.into_sorted())
    }

    /// Serving statistics so far. Percentiles come from a bounded
    /// uniform reservoir of per-query latencies (`LatencyReservoir`),
    /// exact until the reservoir first fills (4096 queries).
    pub fn stats(&self) -> ServeStats {
        let mut lat = self.latencies.lock().sample.clone();
        lat.sort_unstable();
        let pick = |p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                lat[((lat.len() - 1) as f64 * p) as usize]
            }
        };
        // ordering: Relaxed — statistics snapshot; counts may trail
        // in-flight queries by design.
        let queries = self.queries.load(Ordering::Relaxed);
        let reloads = self.reloads.load(Ordering::Relaxed);
        let scanned = self.scanned.load(Ordering::Relaxed);
        let scannable = self.scannable.load(Ordering::Relaxed);
        ServeStats {
            queries,
            reloads,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            p999_us: pick(0.999),
            qps: queries as f64 / self.started.elapsed().as_secs_f64().max(1e-9),
            scan_frac: if scannable == 0 {
                0.0
            } else {
                scanned as f64 / scannable as f64
            },
        }
    }

    /// Consumes the engine and drains its telemetry timeline (`None` if the
    /// engine was built with telemetry disabled).
    pub fn finish_telemetry(self) -> Option<Timeline> {
        self.telemetry.finish()
    }

    /// The engine's telemetry handle (for the admission pipeline's own
    /// lane writes; query spans keep going through
    /// [`note_queries`](Self::note_queries)).
    pub(crate) fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Adds to the scanned/scannable item counters behind
    /// [`ServeStats::scan_frac`].
    pub(crate) fn note_scan(&self, visited: u64, possible: u64) {
        // ordering: Relaxed — statistics counters; no other memory is
        // published through them.
        self.scanned.fetch_add(visited, Ordering::Relaxed);
        self.scannable.fetch_add(possible, Ordering::Relaxed);
    }

    /// Records `n` answered queries that together took `t0.elapsed()`.
    ///
    /// Telemetry spans are recorded while holding the `latencies` mutex:
    /// the server lane is a single-writer ring (`hcc-telemetry`'s safety
    /// protocol requires at most one writing thread at a time, with a
    /// happens-before edge between successive writers), and `ServeEngine`
    /// is `Sync` — queries run concurrently from many threads. The mutex
    /// provides exactly that exclusion and ordering; the final drain in
    /// [`finish_telemetry`](ServeEngine::finish_telemetry) is ordered
    /// because it consumes the engine by value.
    fn note_queries(&self, n: u64, t0: Instant) {
        let total_us = t0.elapsed().as_micros() as u64;
        let per_query = total_us / n.max(1);
        // ordering: Relaxed — query counter is a statistic; latency and
        // telemetry recording below are serialized by the mutex.
        self.queries.fetch_add(n, Ordering::Relaxed);
        let mut lat = self.latencies.lock();
        for _ in 0..n {
            lat.record(per_query);
        }
        if self.telemetry.is_enabled() {
            let lane = self.telemetry.server_lane();
            // Writer handoff: the mutex held above orders this thread
            // after the previous recording thread (debug builds assert
            // the discipline via the lane's owner check).
            self.telemetry.adopt_lane(lane);
            let start = self.telemetry.now_us().saturating_sub(total_us);
            for i in 0..n {
                self.telemetry.phase(
                    lane,
                    0,
                    i as u32,
                    Phase::Query,
                    start + i * per_query,
                    std::time::Duration::from_micros(per_query),
                );
            }
        }
    }

    /// Records individually measured per-query latencies (the admission
    /// pipeline measures enqueue→answer wall time per query, so tail
    /// percentiles include queue wait). Same server-lane serialization
    /// argument as [`note_queries`](Self::note_queries): the telemetry
    /// writes happen under the `latencies` mutex.
    pub(crate) fn note_latencies(&self, lat_us: &[u64]) {
        // ordering: Relaxed — statistics counter, as in `note_queries`.
        self.queries
            .fetch_add(lat_us.len() as u64, Ordering::Relaxed);
        let mut lat = self.latencies.lock();
        for &us in lat_us {
            lat.record(us);
        }
        if self.telemetry.is_enabled() {
            let lane = self.telemetry.server_lane();
            // Writer handoff under the mutex, as in `note_queries`.
            self.telemetry.adopt_lane(lane);
            let now = self.telemetry.now_us();
            for (i, &us) in lat_us.iter().enumerate() {
                self.telemetry.phase(
                    lane,
                    0,
                    i as u32,
                    Phase::Query,
                    now.saturating_sub(us),
                    std::time::Duration::from_micros(us),
                );
            }
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let model = self.model();
        f.debug_struct("ServeEngine")
            .field("users", &model.users())
            .field("items", &model.items())
            .field("shards", &model.shard_count())
            .field("precision", &model.precision())
            // ordering: Relaxed — debug statistics.
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .field("reloads", &self.reloads.load(Ordering::Relaxed))
            .finish()
    }
}

/// Single-query top-k on a snapshot (shared by the engine and the
/// compatibility [`Recommender`](crate::Recommender)).
pub(crate) fn top_k_on(
    model: &ServedModel,
    user: u32,
    count: usize,
) -> Result<Vec<(u32, f32)>, ServeError> {
    Ok(top_k_counted(model, user, count)?.0)
}

/// [`top_k_on`] plus the number of items actually scored (for the
/// engine's scan-fraction statistic).
fn top_k_counted(
    model: &ServedModel,
    user: u32,
    count: usize,
) -> Result<(Vec<(u32, f32)>, u64), ServeError> {
    let row = model.user_row(user)?;
    let seen = model.seen_items(user);
    let prep = QueryPrep::new(model, row);
    let mut best = TopK::new(count);
    let mut visited = 0u64;
    for shard in model.shards() {
        visited += scan_shard(shard, row, &prep, &seen, model.pruned(), &mut best);
    }
    Ok((best.into_sorted(), visited))
}

/// Scores one shard for one user into `best`, returning the number of
/// items scored. `seen_sorted` must be ascending; items on it are skipped
/// (and not counted as scored).
///
/// On a pruned model the shard's rows are in descending stored-norm order:
/// once the heap is full, a block whose `‖û‖ · block_norm` bound is
/// *strictly below* the heap floor ends the scan — every later block's
/// bound is no larger, and a candidate tying the floor would need to be
/// scored (equal scores win on smaller item id), so only a strict
/// shortfall may skip.
///
/// # Panics
/// Panics if `prep` was built for a different model precision than the
/// shard stores (an int8 shard requires the quantized query row).
/// `QueryPrep::new` on the owning model makes this unreachable.
pub(crate) fn scan_shard(
    shard: &ItemShard,
    row: &[f32],
    prep: &QueryPrep,
    seen_sorted: &[u32],
    pruned: bool,
    best: &mut TopK,
) -> u64 {
    // Narrow the seen list to this shard's contiguous id range once; the
    // inner loop binary-searches the window (the scan order is norm-rank,
    // not id order, so a merge cursor no longer applies).
    let end = shard.start + shard.len as u32;
    let lo = seen_sorted.partition_point(|&s| s < shard.start);
    let hi = seen_sorted.partition_point(|&s| s < end);
    let seen = &seen_sorted[lo..hi];
    let k = shard.k;
    let mut visited = 0u64;
    for (b, &block_norm) in shard.block_norms.iter().enumerate() {
        if pruned && best.is_full() {
            match best.floor() {
                // k = 0: nothing can ever enter the heap.
                None => break,
                // Cauchy–Schwarz cutoff (see the function docs).
                Some(floor) if prep.norm * block_norm < floor => break,
                _ => {}
            }
        }
        let blo = b * NORM_BLOCK;
        let bhi = (blo + NORM_BLOCK).min(shard.len);
        for pos in blo..bhi {
            let item = shard.ids[pos];
            if !seen.is_empty() && seen.binary_search(&item).is_ok() {
                continue;
            }
            visited += 1;
            let (rlo, rhi) = (pos * k, (pos + 1) * k);
            let score = match &shard.data {
                ShardData::F32(d) => simd::dot(row, &d[rlo..rhi]),
                ShardData::Fp16(d) => simd::dot_f16(row, &d[rlo..rhi]),
                ShardData::Int8 { data, scale } => {
                    let (qrow, qscale) = prep
                        .i8
                        .as_ref()
                        .expect("QueryPrep built for a non-int8 model fed to an int8 shard");
                    (scale * qscale) * simd::dot_i8(qrow, &data[rlo..rhi]) as f32
                }
            };
            best.offer(item, score);
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_top_k;
    use hcc_sgd::FactorMatrix;
    use hcc_sparse::{CooMatrix, CsrMatrix, Rating};

    fn model(users: usize, items: usize, k: usize, shards: usize) -> ServedModel {
        ServedModel::build(
            FactorMatrix::random(users, k, 5),
            FactorMatrix::random(items, k, 6),
            None,
            shards,
        )
        .unwrap()
    }

    #[test]
    fn sharded_matches_oracle_on_a_fixed_model() {
        let p = FactorMatrix::random(20, 8, 5);
        let q = FactorMatrix::random(90, 8, 6);
        let train = CooMatrix::new(
            20,
            90,
            (0..40)
                .map(|i| Rating::new(i % 20, (i * 7) % 90, 1.0))
                .collect(),
        )
        .unwrap();
        let engine =
            ServeEngine::new(ServedModel::build(p.clone(), q.clone(), Some(&train), 4).unwrap());
        let seen = CsrMatrix::from(&train);
        for user in [0u32, 7, 19] {
            let got = engine.top_k(user, 10).unwrap();
            let want = naive_top_k(&p, &q, Some(&seen), user, 10);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0, "user {user}: {got:?} vs {want:?}");
                assert!((g.1 - w.1).abs() <= 1e-4 * (1.0 + w.1.abs()));
            }
        }
    }

    /// Pruning is exact for f32: the pruned scan must return identical
    /// ranks to an exhaustive build of the same factors, while scanning
    /// strictly fewer items when norms are spread out.
    #[test]
    fn pruned_scan_is_exact_and_actually_prunes() {
        let p = FactorMatrix::random(8, 16, 3);
        let q_base = FactorMatrix::random(400, 16, 4);
        // Spread the norms (popularity-like skew) so pruning has leverage.
        let k = q_base.k();
        let data: Vec<f32> = (0..q_base.rows())
            .flat_map(|r| {
                let scale = 1.0 / (1.0 + r as f32 * 0.05);
                q_base
                    .row(r)
                    .iter()
                    .map(move |&x| x * scale)
                    .collect::<Vec<_>>()
            })
            .collect();
        let q = FactorMatrix::from_vec(400, k, data);
        let pruned = ServeEngine::new(
            ServedModel::build_with(p.clone(), q.clone(), None, 3, Precision::F32, true).unwrap(),
        );
        let exhaustive = ServeEngine::new(
            ServedModel::build_with(p.clone(), q.clone(), None, 3, Precision::F32, false).unwrap(),
        );
        for u in 0..8u32 {
            assert_eq!(
                pruned.top_k(u, 10).unwrap(),
                exhaustive.top_k(u, 10).unwrap()
            );
        }
        let (sp, se) = (pruned.stats(), exhaustive.stats());
        assert!((se.scan_frac - 1.0).abs() < 1e-9, "exhaustive scans all");
        assert!(
            sp.scan_frac < 0.8,
            "pruning should skip items on skewed norms: {}",
            sp.scan_frac
        );
    }

    #[test]
    fn duplicate_ratings_never_leak_seen_items() {
        // The same (user, item) pair twice in training data must not break
        // seen filtering: items rated *after* a duplicate stay filtered.
        let p = FactorMatrix::random(2, 4, 1);
        let q = FactorMatrix::random(8, 4, 2);
        let train = CooMatrix::new(
            2,
            8,
            vec![
                Rating::new(0, 3, 5.0),
                Rating::new(0, 3, 4.0), // duplicate of the pair above
                Rating::new(0, 6, 3.0), // later item that must stay hidden
            ],
        )
        .unwrap();
        let seen = CsrMatrix::from(&train);
        let model = ServedModel::build(p.clone(), q.clone(), Some(&train), 3).unwrap();
        let engine = ServeEngine::new(model);
        let got = engine.top_k(0, 8).unwrap();
        assert!(got.iter().all(|(i, _)| *i != 3 && *i != 6), "{got:?}");
        let want = naive_top_k(&p, &q, Some(&seen), 0, 8);
        let got_items: Vec<u32> = got.iter().map(|e| e.0).collect();
        let want_items: Vec<u32> = want.iter().map(|e| e.0).collect();
        assert_eq!(got_items, want_items);
    }

    #[test]
    fn batch_agrees_with_singles() {
        let engine = ServeEngine::new(model(16, 64, 8, 3));
        let users: Vec<u32> = (0..16).collect();
        let batch = engine.top_k_batch(&users, 5).unwrap();
        for &u in &users {
            assert_eq!(batch[u as usize], engine.top_k(u, 5).unwrap());
        }
    }

    #[test]
    fn unknown_user_is_typed_not_a_panic() {
        let engine = ServeEngine::new(model(4, 8, 2, 2));
        assert!(matches!(
            engine.top_k(4, 3),
            Err(ServeError::UnknownUser { user: 4, users: 4 })
        ));
        // A bad user anywhere in a batch fails the batch up front.
        assert!(engine.top_k_batch(&[0, 1, 99], 3).is_err());
        assert!(engine.predict(0, 999).is_err());
    }

    #[test]
    fn reload_swaps_model_for_new_queries() {
        let engine = ServeEngine::new(model(4, 8, 2, 2));
        let before = engine.top_k(0, 3).unwrap();
        // Same factor seeds, different shard count: answers must not move.
        let gen = engine.reload(model(4, 8, 2, 1));
        assert_eq!(gen, 1);
        assert_eq!(engine.top_k(0, 3).unwrap(), before);
        assert_eq!(engine.model().shard_count(), 1);
        assert_eq!(engine.stats().reloads, 1);
    }

    #[test]
    fn stats_count_queries_and_percentiles() {
        let engine = ServeEngine::new(model(8, 32, 4, 2));
        for u in 0..8u32 {
            engine.top_k(u, 3).unwrap();
        }
        engine.top_k_batch(&[0, 1, 2, 3], 3).unwrap();
        let s = engine.stats();
        assert_eq!(s.queries, 12);
        assert!(s.qps > 0.0);
        assert!(s.p99_us >= s.p50_us);
        assert!(s.p999_us >= s.p99_us);
        assert!(s.scan_frac > 0.0 && s.scan_frac <= 1.0);
    }

    #[test]
    fn telemetry_records_one_query_span_per_answer() {
        use hcc_telemetry::{Event, Header};
        let t = Telemetry::enabled(
            Header {
                workers: 2,
                k: 4,
                nnz: 0,
                strategy: "serve".into(),
                streams: 1,
                backend: "test".into(),
                schedule: "serve".into(),
            },
            256,
        );
        let engine = ServeEngine::with_telemetry(model(8, 32, 4, 2), t);
        engine.top_k(0, 3).unwrap();
        engine.top_k_batch(&[1, 2, 3], 3).unwrap();
        let timeline = engine.finish_telemetry().unwrap();
        let queries = timeline
            .events
            .iter()
            .filter(|e| matches!(e, Event::Phase { phase, .. } if *phase == Phase::Query))
            .count();
        assert_eq!(queries, 4);
    }

    /// Concurrent queries + hot reloads must never observe a torn model.
    /// Every installed model has constant factors `c`, so with k=1 every
    /// score is exactly `c²` — a reader seeing anything else caught a
    /// half-swapped state. This test is part of the nightly TSan matrix
    /// (`cargo +nightly test -p hcc-serve --lib` with
    /// `-Zsanitizer=thread`).
    #[test]
    fn concurrent_queries_and_reloads_never_tear() {
        fn constant_model(c: f32) -> ServedModel {
            ServedModel::build(
                FactorMatrix::from_vec(4, 1, vec![c; 4]),
                FactorMatrix::from_vec(16, 1, vec![c; 16]),
                None,
                4,
            )
            .unwrap()
        }
        let generations: Vec<f32> = (1..=5).map(|g| g as f32).collect();
        let valid: Vec<f32> = generations.iter().map(|c| c * c).collect();
        let engine = ServeEngine::new(constant_model(generations[0]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let top = engine.top_k(0, 3).unwrap();
                        assert_eq!(top.len(), 3);
                        let score = top[0].1;
                        assert!(
                            top.iter().all(|&(_, s)| s == score),
                            "one snapshot, one constant: {top:?}"
                        );
                        assert!(
                            valid.contains(&score),
                            "torn model: score {score} is no installed generation"
                        );
                    }
                });
            }
            scope.spawn(|| {
                for &c in &generations[1..] {
                    engine.reload(constant_model(c));
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(engine.stats().reloads, 4);
    }

    /// Concurrent queries on a telemetry-enabled engine all record onto
    /// the single-writer server lane; the engine must serialize those
    /// writes (they go through the latencies mutex). Runs under the
    /// nightly TSan matrix like the torn-model test above — a race here
    /// is UB, not just lost events.
    #[test]
    fn concurrent_telemetry_recording_is_serialized_and_lossless() {
        use hcc_telemetry::{Event, Header};
        let t = Telemetry::enabled(
            Header {
                workers: 2,
                k: 4,
                nnz: 0,
                strategy: "serve".into(),
                streams: 1,
                backend: "test".into(),
                schedule: "serve".into(),
            },
            8192,
        );
        let engine = ServeEngine::with_telemetry(model(8, 32, 4, 2), t);
        const THREADS: u32 = 4;
        const SINGLES: u64 = 25;
        const BATCHES: u64 = 5;
        std::thread::scope(|scope| {
            for w in 0..THREADS {
                let engine = &engine;
                scope.spawn(move || {
                    for i in 0..SINGLES {
                        engine.top_k(((w as u64 + i) % 8) as u32, 3).unwrap();
                    }
                    for _ in 0..BATCHES {
                        engine.top_k_batch(&[0, 1, 2, 3], 3).unwrap();
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..4 {
                    engine.reload(model(8, 32, 4, 1));
                    std::thread::yield_now();
                }
            });
        });
        let expect = THREADS as u64 * (SINGLES + BATCHES * 4);
        assert_eq!(engine.stats().queries, expect);
        let timeline = engine.finish_telemetry().unwrap();
        assert_eq!(timeline.dropped, 0, "lane sized above the workload");
        let spans = timeline
            .events
            .iter()
            .filter(|e| matches!(e, Event::Phase { phase, .. } if *phase == Phase::Query))
            .count();
        assert_eq!(spans as u64, expect, "one Query span per answer, none lost");
    }

    #[test]
    fn latency_reservoir_is_bounded_and_exact_when_small() {
        let mut r = LatencyReservoir::new();
        for us in 0..100u64 {
            r.record(us);
        }
        assert_eq!(r.sample.len(), 100, "below capacity nothing is evicted");
        assert_eq!(r.seen, 100);
        for us in 0..20_000u64 {
            r.record(us);
        }
        assert_eq!(r.sample.len(), LatencyReservoir::CAP);
        assert_eq!(r.seen, 20_100);
    }
}
