//! The serving engine: snapshot queries, batched shard fan-out, hot reload.
//!
//! ## Snapshot discipline
//!
//! The live model is an `Arc<ServedModel>` behind a `parking_lot::RwLock`
//! that is only ever held long enough to clone or replace the `Arc` — never
//! across a scan. Every query (and every batch) clones the `Arc` once up
//! front and answers entirely from that snapshot, so:
//!
//! * a reload never blocks behind a long scan and a scan never observes a
//!   half-installed model (the swap is a single pointer store);
//! * a whole batch is answered against *one* model even if a reload lands
//!   mid-batch — no torn batches;
//! * the old model is freed when the last in-flight query drops its `Arc`.
//!
//! ## Query plan
//!
//! Single queries scan the item shards serially (spawning threads would
//! cost more than the scan). Batches fan out one thread per shard under
//! `std::thread::scope`; each thread scores *all* users of the batch
//! against *its* shard with the SIMD dot kernel into size-`k` heaps, and
//! the caller merges the per-shard heaps per user. The merge is exact:
//! every shard returns its local top `k`, and any global top-`k` item is
//! necessarily in its own shard's top `k`.

use crate::error::ServeError;
use crate::foldin::{fold_in, FoldInConfig};
use crate::model::{ItemShard, ServedModel};
use crate::topk::TopK;
use hcc_sgd::simd;
use hcc_telemetry::{Phase, Telemetry, Timeline};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Aggregate serving statistics since the engine was built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Queries answered (each user of a batch counts once).
    pub queries: u64,
    /// Completed hot reloads.
    pub reloads: u64,
    /// Median per-query latency, µs (0 with no traffic). Batch queries
    /// report amortized per-user latency.
    pub p50_us: u64,
    /// 99th-percentile per-query latency, µs.
    pub p99_us: u64,
    /// Queries per second over the engine's lifetime.
    pub qps: f64,
}

/// An in-process serving engine over an item-sharded factor snapshot.
pub struct ServeEngine {
    current: RwLock<Arc<ServedModel>>,
    telemetry: Telemetry,
    /// Bounded reservoir of per-query latencies in µs (amortized for
    /// batches). Serving-path bookkeeping, not hot relative to an
    /// `O(items · k)` scan. This mutex also serializes writes to the
    /// telemetry server lane — see [`ServeEngine::note_queries`].
    latencies: Mutex<LatencyReservoir>,
    queries: AtomicU64,
    reloads: AtomicU64,
    started: Instant,
}

/// Fixed-memory uniform sample of per-query latencies (Vitter's
/// algorithm R). A serving process answers queries indefinitely, so the
/// stats store must not grow with traffic; a reservoir keeps percentile
/// estimates representative of the whole run in `CAP` slots. Runs
/// shorter than `CAP` queries (every test, most benches) see exact
/// percentiles because nothing has been evicted yet.
struct LatencyReservoir {
    sample: Vec<u64>,
    /// Total latencies offered, including evicted ones.
    seen: u64,
    /// xorshift64* state — cheap in-crate PRNG; determinism across runs
    /// is fine (this only picks eviction slots), seed must be nonzero.
    rng: u64,
}

impl LatencyReservoir {
    const CAP: usize = 4096;

    fn new() -> LatencyReservoir {
        LatencyReservoir {
            sample: Vec::new(),
            seen: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn record(&mut self, us: u64) {
        self.seen += 1;
        if self.sample.len() < Self::CAP {
            self.sample.push(us);
            return;
        }
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let j = self.rng % self.seen;
        if (j as usize) < Self::CAP {
            self.sample[j as usize] = us;
        }
    }
}

impl ServeEngine {
    /// An engine serving `model`, with telemetry off.
    pub fn new(model: ServedModel) -> ServeEngine {
        ServeEngine::with_telemetry(model, Telemetry::disabled())
    }

    /// An engine recording a [`Phase::Query`] span per answered query on
    /// the given telemetry handle (use [`finish_telemetry`] to drain it).
    ///
    /// [`finish_telemetry`]: ServeEngine::finish_telemetry
    pub fn with_telemetry(model: ServedModel, telemetry: Telemetry) -> ServeEngine {
        ServeEngine {
            current: RwLock::new(Arc::new(model)),
            telemetry,
            latencies: Mutex::new(LatencyReservoir::new()),
            queries: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The current model snapshot (queries in flight may still hold older
    /// snapshots).
    pub fn model(&self) -> Arc<ServedModel> {
        self.current.read().clone()
    }

    /// Atomically installs a new model; returns the reload count. Queries
    /// already running finish on the model they started with; the swap
    /// itself is a pointer store under a briefly held write lock, so there
    /// is zero query downtime. Validation happens in
    /// [`ServedModel::build`] — by the time a model exists it is servable,
    /// and a failed build/load leaves the old model in place untouched.
    pub fn reload(&self, model: ServedModel) -> u64 {
        *self.current.write() = Arc::new(model);
        // ordering: Relaxed — reload counter is a statistic; the RwLock
        // write above is what publishes the new model.
        self.reloads.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Predicted score for `(user, item)` on the current snapshot.
    pub fn predict(&self, user: u32, item: u32) -> Result<f32, ServeError> {
        let model = self.model();
        Ok(simd::dot(model.user_row(user)?, model.item_row(item)?))
    }

    /// The `count` highest-scored unseen items for `user`, best first.
    pub fn top_k(&self, user: u32, count: usize) -> Result<Vec<(u32, f32)>, ServeError> {
        let model = self.model();
        let t0 = Instant::now();
        let result = top_k_on(&model, user, count)?;
        self.note_queries(1, t0);
        Ok(result)
    }

    /// Answers a batch of top-k queries against one snapshot, fanning out
    /// one thread per item shard. Any unknown user fails the whole batch
    /// before any scoring work happens.
    pub fn top_k_batch(
        &self,
        users: &[u32],
        count: usize,
    ) -> Result<Vec<Vec<(u32, f32)>>, ServeError> {
        let model = self.model();
        let t0 = Instant::now();
        // Resolve every user row up front: validates the whole batch before
        // any scoring work, and hands the fan-out threads plain slices.
        let rows: Vec<&[f32]> = users
            .iter()
            .map(|&u| model.user_row(u))
            .collect::<Result<_, ServeError>>()?;
        // Seen lists are per-user state shared by every shard thread:
        // compute them once, outside the fan-out.
        let seen: Vec<Vec<u32>> = users.iter().map(|&u| model.seen_items(u)).collect();
        let shards = model.shards();
        let result = if shards.len() <= 1 || users.len() <= 1 {
            rows.iter()
                .zip(&seen)
                .map(|(&row, s)| {
                    let mut best = TopK::new(count);
                    for shard in shards {
                        scan_shard(shard, row, s, &mut best);
                    }
                    best.into_sorted()
                })
                .collect()
        } else {
            // One thread per shard; each produces per-user partial heaps.
            let partials: Vec<Vec<Vec<(u32, f32)>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .map(|shard| {
                        let rows = &rows;
                        let seen = &seen;
                        scope.spawn(move || {
                            rows.iter()
                                .zip(seen)
                                .map(|(&row, s)| {
                                    let mut best = TopK::new(count);
                                    scan_shard(shard, row, s, &mut best);
                                    best.into_sorted()
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                    .collect()
            });
            (0..users.len())
                .map(|qi| {
                    let mut best = TopK::new(count);
                    for per_shard in &partials {
                        for &(item, score) in &per_shard[qi] {
                            best.offer(item, score);
                        }
                    }
                    best.into_sorted()
                })
                .collect()
        };
        self.note_queries(users.len() as u64, t0);
        Ok(result)
    }

    /// Folds an unseen user into the current snapshot: trains a fresh `P`
    /// row on `ratings` against the frozen `Q` and returns it (the model
    /// itself stays immutable). Feed the row to
    /// [`top_k_folded`](ServeEngine::top_k_folded).
    pub fn fold_in(
        &self,
        ratings: &[(u32, f32)],
        config: &FoldInConfig,
    ) -> Result<Vec<f32>, ServeError> {
        fold_in(&self.model(), ratings, config)
    }

    /// Top-k for a caller-supplied user row (typically from
    /// [`fold_in`](ServeEngine::fold_in)); `exclude` lists item ids to skip
    /// (the fold-in user's own ratings, in any order).
    pub fn top_k_folded(
        &self,
        user_row: &[f32],
        count: usize,
        exclude: &[u32],
    ) -> Result<Vec<(u32, f32)>, ServeError> {
        let model = self.model();
        if user_row.len() != model.k() {
            return Err(ServeError::DimMismatch(format!(
                "fold-in row has k={}, model has k={}",
                user_row.len(),
                model.k()
            )));
        }
        let t0 = Instant::now();
        let mut seen = exclude.to_vec();
        seen.sort_unstable();
        let mut best = TopK::new(count);
        for shard in model.shards() {
            scan_shard(shard, user_row, &seen, &mut best);
        }
        self.note_queries(1, t0);
        Ok(best.into_sorted())
    }

    /// Serving statistics so far. Percentiles come from a bounded
    /// uniform reservoir of per-query latencies (`LatencyReservoir`),
    /// exact until the reservoir first fills.
    pub fn stats(&self) -> ServeStats {
        let mut lat = self.latencies.lock().sample.clone();
        lat.sort_unstable();
        let pick = |p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                lat[((lat.len() - 1) as f64 * p) as usize]
            }
        };
        // ordering: Relaxed — statistics snapshot; counts may trail
        // in-flight queries by design.
        let queries = self.queries.load(Ordering::Relaxed);
        let reloads = self.reloads.load(Ordering::Relaxed);
        ServeStats {
            queries,
            reloads,
            p50_us: pick(0.50),
            p99_us: pick(0.99),
            qps: queries as f64 / self.started.elapsed().as_secs_f64().max(1e-9),
        }
    }

    /// Consumes the engine and drains its telemetry timeline (`None` if the
    /// engine was built with telemetry disabled).
    pub fn finish_telemetry(self) -> Option<Timeline> {
        self.telemetry.finish()
    }

    /// Records `n` answered queries that together took `t0.elapsed()`.
    ///
    /// Telemetry spans are recorded while holding the `latencies` mutex:
    /// the server lane is a single-writer ring (`hcc-telemetry`'s safety
    /// protocol requires at most one writing thread at a time, with a
    /// happens-before edge between successive writers), and `ServeEngine`
    /// is `Sync` — queries run concurrently from many threads. The mutex
    /// provides exactly that exclusion and ordering; the final drain in
    /// [`finish_telemetry`](ServeEngine::finish_telemetry) is ordered
    /// because it consumes the engine by value.
    fn note_queries(&self, n: u64, t0: Instant) {
        let total_us = t0.elapsed().as_micros() as u64;
        let per_query = total_us / n.max(1);
        // ordering: Relaxed — query counter is a statistic; latency and
        // telemetry recording below are serialized by the mutex.
        self.queries.fetch_add(n, Ordering::Relaxed);
        let mut lat = self.latencies.lock();
        for _ in 0..n {
            lat.record(per_query);
        }
        if self.telemetry.is_enabled() {
            let lane = self.telemetry.server_lane();
            // Writer handoff: the mutex held above orders this thread
            // after the previous recording thread (debug builds assert
            // the discipline via the lane's owner check).
            self.telemetry.adopt_lane(lane);
            let start = self.telemetry.now_us().saturating_sub(total_us);
            for i in 0..n {
                self.telemetry.phase(
                    lane,
                    0,
                    i as u32,
                    Phase::Query,
                    start + i * per_query,
                    std::time::Duration::from_micros(per_query),
                );
            }
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let model = self.model();
        f.debug_struct("ServeEngine")
            .field("users", &model.users())
            .field("items", &model.items())
            .field("shards", &model.shard_count())
            // ordering: Relaxed — debug statistics.
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .field("reloads", &self.reloads.load(Ordering::Relaxed))
            .finish()
    }
}

/// Single-query top-k on a snapshot (shared by the engine and the
/// compatibility [`Recommender`](crate::Recommender)).
pub(crate) fn top_k_on(
    model: &ServedModel,
    user: u32,
    count: usize,
) -> Result<Vec<(u32, f32)>, ServeError> {
    let row = model.user_row(user)?;
    let seen = model.seen_items(user);
    let mut best = TopK::new(count);
    for shard in model.shards() {
        scan_shard(shard, row, &seen, &mut best);
    }
    Ok(best.into_sorted())
}

/// Scores one shard for one user row into `best`. `seen_sorted` must be
/// ascending; items on it are skipped.
fn scan_shard(shard: &ItemShard, user_row: &[f32], seen_sorted: &[u32], best: &mut TopK) {
    // Narrow the seen list to this shard's contiguous range first: the
    // inner loop's membership test walks a cursor instead of binary
    // searching per item.
    let end = shard.start + shard.q.rows() as u32;
    let lo = seen_sorted.partition_point(|&s| s < shard.start);
    let hi = seen_sorted.partition_point(|&s| s < end);
    let mut seen_cursor = &seen_sorted[lo..hi];
    for local in 0..shard.q.rows() {
        let item = shard.start + local as u32;
        // Drop stale entries (duplicates of earlier items — training data
        // may rate the same pair twice) before the membership test.
        while let [first, rest @ ..] = seen_cursor {
            if *first >= item {
                break;
            }
            seen_cursor = rest;
        }
        if let [first, ..] = seen_cursor {
            if *first == item {
                continue;
            }
        }
        best.offer(item, simd::dot(user_row, shard.q.row(local)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::naive_top_k;
    use hcc_sgd::FactorMatrix;
    use hcc_sparse::{CooMatrix, CsrMatrix, Rating};

    fn model(users: usize, items: usize, k: usize, shards: usize) -> ServedModel {
        ServedModel::build(
            FactorMatrix::random(users, k, 5),
            FactorMatrix::random(items, k, 6),
            None,
            shards,
        )
        .unwrap()
    }

    #[test]
    fn sharded_matches_oracle_on_a_fixed_model() {
        let p = FactorMatrix::random(20, 8, 5);
        let q = FactorMatrix::random(90, 8, 6);
        let train = CooMatrix::new(
            20,
            90,
            (0..40)
                .map(|i| Rating::new(i % 20, (i * 7) % 90, 1.0))
                .collect(),
        )
        .unwrap();
        let engine =
            ServeEngine::new(ServedModel::build(p.clone(), q.clone(), Some(&train), 4).unwrap());
        let seen = CsrMatrix::from(&train);
        for user in [0u32, 7, 19] {
            let got = engine.top_k(user, 10).unwrap();
            let want = naive_top_k(&p, &q, Some(&seen), user, 10);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0, "user {user}: {got:?} vs {want:?}");
                assert!((g.1 - w.1).abs() <= 1e-4 * (1.0 + w.1.abs()));
            }
        }
    }

    #[test]
    fn duplicate_ratings_never_leak_seen_items() {
        // The same (user, item) pair twice in training data must not wedge
        // the seen cursor: items rated *after* a duplicate stay filtered.
        let p = FactorMatrix::random(2, 4, 1);
        let q = FactorMatrix::random(8, 4, 2);
        let train = CooMatrix::new(
            2,
            8,
            vec![
                Rating::new(0, 3, 5.0),
                Rating::new(0, 3, 4.0), // duplicate of the pair above
                Rating::new(0, 6, 3.0), // later item that must stay hidden
            ],
        )
        .unwrap();
        let seen = CsrMatrix::from(&train);
        let model = ServedModel::build(p.clone(), q.clone(), Some(&train), 3).unwrap();
        let engine = ServeEngine::new(model);
        let got = engine.top_k(0, 8).unwrap();
        assert!(got.iter().all(|(i, _)| *i != 3 && *i != 6), "{got:?}");
        let want = naive_top_k(&p, &q, Some(&seen), 0, 8);
        let got_items: Vec<u32> = got.iter().map(|e| e.0).collect();
        let want_items: Vec<u32> = want.iter().map(|e| e.0).collect();
        assert_eq!(got_items, want_items);
    }

    #[test]
    fn batch_agrees_with_singles() {
        let engine = ServeEngine::new(model(16, 64, 8, 3));
        let users: Vec<u32> = (0..16).collect();
        let batch = engine.top_k_batch(&users, 5).unwrap();
        for &u in &users {
            assert_eq!(batch[u as usize], engine.top_k(u, 5).unwrap());
        }
    }

    #[test]
    fn unknown_user_is_typed_not_a_panic() {
        let engine = ServeEngine::new(model(4, 8, 2, 2));
        assert!(matches!(
            engine.top_k(4, 3),
            Err(ServeError::UnknownUser { user: 4, users: 4 })
        ));
        // A bad user anywhere in a batch fails the batch up front.
        assert!(engine.top_k_batch(&[0, 1, 99], 3).is_err());
        assert!(engine.predict(0, 999).is_err());
    }

    #[test]
    fn reload_swaps_model_for_new_queries() {
        let engine = ServeEngine::new(model(4, 8, 2, 2));
        let before = engine.top_k(0, 3).unwrap();
        // Same factor seeds, different shard count: answers must not move.
        let gen = engine.reload(model(4, 8, 2, 1));
        assert_eq!(gen, 1);
        assert_eq!(engine.top_k(0, 3).unwrap(), before);
        assert_eq!(engine.model().shard_count(), 1);
        assert_eq!(engine.stats().reloads, 1);
    }

    #[test]
    fn stats_count_queries_and_percentiles() {
        let engine = ServeEngine::new(model(8, 32, 4, 2));
        for u in 0..8u32 {
            engine.top_k(u, 3).unwrap();
        }
        engine.top_k_batch(&[0, 1, 2, 3], 3).unwrap();
        let s = engine.stats();
        assert_eq!(s.queries, 12);
        assert!(s.qps > 0.0);
        assert!(s.p99_us >= s.p50_us);
    }

    #[test]
    fn telemetry_records_one_query_span_per_answer() {
        use hcc_telemetry::{Event, Header};
        let t = Telemetry::enabled(
            Header {
                workers: 2,
                k: 4,
                nnz: 0,
                strategy: "serve".into(),
                streams: 1,
                backend: "test".into(),
                schedule: "serve".into(),
            },
            256,
        );
        let engine = ServeEngine::with_telemetry(model(8, 32, 4, 2), t);
        engine.top_k(0, 3).unwrap();
        engine.top_k_batch(&[1, 2, 3], 3).unwrap();
        let timeline = engine.finish_telemetry().unwrap();
        let queries = timeline
            .events
            .iter()
            .filter(|e| matches!(e, Event::Phase { phase, .. } if *phase == Phase::Query))
            .count();
        assert_eq!(queries, 4);
    }

    /// Concurrent queries + hot reloads must never observe a torn model.
    /// Every installed model has constant factors `c`, so with k=1 every
    /// score is exactly `c²` — a reader seeing anything else caught a
    /// half-swapped state. This test is part of the nightly TSan matrix
    /// (`cargo +nightly test -p hcc-serve --lib` with
    /// `-Zsanitizer=thread`).
    #[test]
    fn concurrent_queries_and_reloads_never_tear() {
        fn constant_model(c: f32) -> ServedModel {
            ServedModel::build(
                FactorMatrix::from_vec(4, 1, vec![c; 4]),
                FactorMatrix::from_vec(16, 1, vec![c; 16]),
                None,
                4,
            )
            .unwrap()
        }
        let generations: Vec<f32> = (1..=5).map(|g| g as f32).collect();
        let valid: Vec<f32> = generations.iter().map(|c| c * c).collect();
        let engine = ServeEngine::new(constant_model(generations[0]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..200 {
                        let top = engine.top_k(0, 3).unwrap();
                        assert_eq!(top.len(), 3);
                        let score = top[0].1;
                        assert!(
                            top.iter().all(|&(_, s)| s == score),
                            "one snapshot, one constant: {top:?}"
                        );
                        assert!(
                            valid.contains(&score),
                            "torn model: score {score} is no installed generation"
                        );
                    }
                });
            }
            scope.spawn(|| {
                for &c in &generations[1..] {
                    engine.reload(constant_model(c));
                    std::thread::yield_now();
                }
            });
        });
        assert_eq!(engine.stats().reloads, 4);
    }

    /// Concurrent queries on a telemetry-enabled engine all record onto
    /// the single-writer server lane; the engine must serialize those
    /// writes (they go through the latencies mutex). Runs under the
    /// nightly TSan matrix like the torn-model test above — a race here
    /// is UB, not just lost events.
    #[test]
    fn concurrent_telemetry_recording_is_serialized_and_lossless() {
        use hcc_telemetry::{Event, Header};
        let t = Telemetry::enabled(
            Header {
                workers: 2,
                k: 4,
                nnz: 0,
                strategy: "serve".into(),
                streams: 1,
                backend: "test".into(),
                schedule: "serve".into(),
            },
            8192,
        );
        let engine = ServeEngine::with_telemetry(model(8, 32, 4, 2), t);
        const THREADS: u32 = 4;
        const SINGLES: u64 = 25;
        const BATCHES: u64 = 5;
        std::thread::scope(|scope| {
            for w in 0..THREADS {
                let engine = &engine;
                scope.spawn(move || {
                    for i in 0..SINGLES {
                        engine.top_k(((w as u64 + i) % 8) as u32, 3).unwrap();
                    }
                    for _ in 0..BATCHES {
                        engine.top_k_batch(&[0, 1, 2, 3], 3).unwrap();
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..4 {
                    engine.reload(model(8, 32, 4, 1));
                    std::thread::yield_now();
                }
            });
        });
        let expect = THREADS as u64 * (SINGLES + BATCHES * 4);
        assert_eq!(engine.stats().queries, expect);
        let timeline = engine.finish_telemetry().unwrap();
        assert_eq!(timeline.dropped, 0, "lane sized above the workload");
        let spans = timeline
            .events
            .iter()
            .filter(|e| matches!(e, Event::Phase { phase, .. } if *phase == Phase::Query))
            .count();
        assert_eq!(spans as u64, expect, "one Query span per answer, none lost");
    }

    #[test]
    fn latency_reservoir_is_bounded_and_exact_when_small() {
        let mut r = LatencyReservoir::new();
        for us in 0..100u64 {
            r.record(us);
        }
        assert_eq!(r.sample.len(), 100, "below capacity nothing is evicted");
        assert_eq!(r.seen, 100);
        for us in 0..20_000u64 {
            r.record(us);
        }
        assert_eq!(r.sample.len(), LatencyReservoir::CAP);
        assert_eq!(r.seen, 20_100);
    }
}
