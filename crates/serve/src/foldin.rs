//! Online fold-in of unseen users.
//!
//! A user who signed up after training has no `P` row, but retraining the
//! whole model for one user is absurd. Fold-in runs the *training* update
//! rule ([`hcc_sgd::kernel::sgd_step`]) on a fresh user row against the
//! served model's **frozen** `Q`: each step copies the item row into
//! scratch, lets the fused kernel update both rows, and discards the
//! scratch — so the learned `P` row sees exactly the gradients training
//! would have produced, while the shared snapshot never mutates and
//! concurrent queries need no synchronization against fold-ins.

use crate::error::ServeError;
use crate::model::ServedModel;
use hcc_sgd::kernel::sgd_step;
use hcc_sgd::FactorMatrix;

/// Hyperparameters for folding one user in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldInConfig {
    /// Full passes over the user's ratings.
    pub epochs: u32,
    /// Learning rate γ.
    pub lr: f32,
    /// Regularization λ on the folded row (`Q` is frozen, so only λ1
    /// matters).
    pub lambda: f32,
    /// Seed for the row's random init (same init family as training).
    pub seed: u64,
}

impl Default for FoldInConfig {
    fn default() -> FoldInConfig {
        FoldInConfig {
            epochs: 30,
            lr: 0.05,
            lambda: 0.05,
            seed: 0x0f01d,
        }
    }
}

/// Trains a user row on `ratings` (`(item, rating)` pairs) against the
/// model's frozen `Q` and returns it. Every item must exist in the model;
/// `ratings` must be non-empty.
pub fn fold_in(
    model: &ServedModel,
    ratings: &[(u32, f32)],
    config: &FoldInConfig,
) -> Result<Vec<f32>, ServeError> {
    if ratings.is_empty() {
        return Err(ServeError::EmptyFoldIn);
    }
    // Resolve every item row before the first update so a bad rating list
    // cannot leave a half-trained row. Rows come back dequantized — on a
    // reduced-precision model the fold-in trains against the same values
    // the scans score with.
    let rows: Vec<Vec<f32>> = ratings
        .iter()
        .map(|&(item, _)| model.item_row(item))
        .collect::<Result<_, ServeError>>()?;
    let k = model.k();
    let mut p_row = FactorMatrix::random(1, k, config.seed).row(0).to_vec();
    let mut scratch = vec![0f32; k];
    for _ in 0..config.epochs {
        for (&(_, r), row) in ratings.iter().zip(&rows) {
            // Copy-out keeps Q frozen: the kernel updates the scratch copy
            // and we throw it away.
            scratch.copy_from_slice(row);
            sgd_step(&mut p_row, &mut scratch, r, config.lr, config.lambda, 0.0);
        }
    }
    Ok(p_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::kernel::dot;

    fn constant_q_model() -> ServedModel {
        // 1 existing user, 4 items, k=1, all q rows = 2.0.
        ServedModel::build(
            FactorMatrix::from_vec(1, 1, vec![0.1]),
            FactorMatrix::from_vec(4, 1, vec![2.0; 4]),
            None,
            2,
        )
        .unwrap()
    }

    #[test]
    fn folded_row_converges_toward_the_ratings() {
        let model = constant_q_model();
        // Every item rated 4.0 with q=2.0 ⇒ the ideal p is 2.0.
        let ratings: Vec<(u32, f32)> = (0..4).map(|i| (i, 4.0)).collect();
        let cfg = FoldInConfig {
            epochs: 200,
            lambda: 0.0,
            ..FoldInConfig::default()
        };
        let row = fold_in(&model, &ratings, &cfg).unwrap();
        let pred = dot(&row, &model.item_row(0).unwrap());
        assert!((pred - 4.0).abs() < 1e-2, "predicted {pred}");
    }

    #[test]
    fn q_stays_frozen() {
        let model = constant_q_model();
        fold_in(&model, &[(0, 4.0), (1, 1.0)], &FoldInConfig::default()).unwrap();
        for i in 0..4 {
            assert_eq!(model.item_row(i).unwrap(), &[2.0]);
        }
    }

    #[test]
    fn empty_and_unknown_items_are_typed() {
        let model = constant_q_model();
        assert_eq!(
            fold_in(&model, &[], &FoldInConfig::default()),
            Err(ServeError::EmptyFoldIn)
        );
        assert!(matches!(
            fold_in(&model, &[(0, 1.0), (9, 1.0)], &FoldInConfig::default()),
            Err(ServeError::UnknownItem { item: 9, items: 4 })
        ));
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let model = constant_q_model();
        let ratings = [(0u32, 3.0f32), (2, 1.5)];
        let cfg = FoldInConfig::default();
        assert_eq!(
            fold_in(&model, &ratings, &cfg).unwrap(),
            fold_in(&model, &ratings, &cfg).unwrap()
        );
    }
}
