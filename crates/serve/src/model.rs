//! The immutable, item-sharded factor store behind a serving engine.
//!
//! A [`ServedModel`] is a *snapshot*: once built it never mutates, so any
//! number of query threads may scan it without synchronization, and hot
//! reload is a pointer swap to a freshly built snapshot (see
//! [`crate::ServeEngine`]).
//!
//! `Q` is cut into contiguous item ranges using the same planning machinery
//! the trainer uses to cut the rating matrix: per-shard fractions come from
//! [`hcc_partition::dp0`] (equal virtual speeds → balanced shards) and,
//! when the training matrix is available, the split points come from
//! [`GridPartition`] over the *item* axis so shards balance seen-item
//! filtering work, not just item counts.
//!
//! ## Precision tiers and norm ordering
//!
//! Within each shard, item rows are stored at a chosen [`Precision`] (f32,
//! fp16, or int8-with-per-shard-scale) and — when pruning is enabled —
//! *reordered by descending stored-representation norm* ‖q̂_i‖, with the
//! per-block maxima kept in `ItemShard::block_norms`. The Cauchy–Schwarz
//! bound `score(u, i) = p_u·q̂_i ≤ ‖p_u‖·‖q̂_i‖` then lets a scan stop at
//! the first block whose bound cannot beat the current top-k heap floor:
//! every later block has an even smaller norm. Norms are computed from the
//! *dequantized* rows — the same values the scan kernels actually dot
//! against — so the bound is valid per representation, and pruning is
//! exact (never drops a true top-k item) rather than approximate.

use crate::error::ServeError;
use crate::precision::Precision;
use hcc_partition::dp0;
use hcc_sgd::{int8, simd, FactorMatrix};
use hcc_sparse::{Axis, CooMatrix, CsrMatrix, GridPartition};

/// Items per pruning block: one norm bound check amortized over this many
/// scored rows. 64 keeps the check overhead under 2% of block work at
/// k = 64 while still stopping within ~64 items of the ideal cut.
pub(crate) const NORM_BLOCK: usize = 64;

/// Quantized row storage for one shard, laid out position-major (position
/// = norm rank when pruning, item order otherwise).
#[derive(Debug, Clone)]
pub(crate) enum ShardData {
    /// Full-precision rows.
    F32(Vec<f32>),
    /// binary16-encoded rows.
    Fp16(Vec<u16>),
    /// Symmetric int8 rows sharing one scale.
    Int8 {
        /// Quantized values, `len · k` of them.
        data: Vec<i8>,
        /// Dequantization scale: `x̂ = q · scale`.
        scale: f32,
    },
}

/// One contiguous item shard: global items `start..start + len`, stored in
/// scan-position order with the id↔position maps needed because pruning
/// reorders rows by norm.
#[derive(Debug, Clone)]
pub(crate) struct ItemShard {
    /// First global item id in this shard.
    pub start: u32,
    /// Items in this shard.
    pub len: usize,
    /// Latent dimension (row stride).
    pub k: usize,
    /// Scan position → global item id (descending stored-rep norm when
    /// the model was built with pruning; ascending id otherwise).
    pub ids: Vec<u32>,
    /// Local item offset (`id - start`) → scan position; inverse of `ids`.
    pub pos: Vec<u32>,
    /// Per-block maximum stored-representation norm ‖q̂_i‖, one entry per
    /// [`NORM_BLOCK`] positions. With norm-descending order this is the
    /// first norm of each block, and the sequence is non-increasing.
    pub block_norms: Vec<f32>,
    /// The rows themselves, position-major.
    pub data: ShardData,
}

impl ItemShard {
    /// The row at scan position `pos`, dequantized to f32.
    pub fn row_f32(&self, pos: usize) -> Vec<f32> {
        let (lo, hi) = (pos * self.k, (pos + 1) * self.k);
        match &self.data {
            ShardData::F32(d) => d[lo..hi].to_vec(),
            ShardData::Fp16(d) => {
                let mut out = vec![0.0f32; self.k];
                simd::decode_f16(&d[lo..hi], &mut out);
                out
            }
            ShardData::Int8 { data, scale } => {
                let mut out = vec![0.0f32; self.k];
                int8::dequantize(&data[lo..hi], *scale, &mut out);
                out
            }
        }
    }
}

/// An immutable snapshot of a servable model: `P`, sharded `Q`, and the
/// seen-item matrix used to exclude already-rated items from top-k answers.
#[derive(Debug, Clone)]
pub struct ServedModel {
    p: FactorMatrix,
    shards: Vec<ItemShard>,
    items: usize,
    precision: Precision,
    pruned: bool,
    /// Per-user seen items from the training matrix (`None` = serve
    /// everything, nothing is filtered).
    seen: Option<CsrMatrix>,
}

impl ServedModel {
    /// Builds a full-precision snapshot with norm pruning enabled — the
    /// default configuration (pruning at f32 is exact, so there is no
    /// reason to serve without it). See [`build_with`](Self::build_with).
    pub fn build(
        p: FactorMatrix,
        q: FactorMatrix,
        train: Option<&CooMatrix>,
        shards: usize,
    ) -> Result<ServedModel, ServeError> {
        ServedModel::build_with(p, q, train, shards, Precision::F32, true)
    }

    /// Builds a snapshot from trained factors.
    ///
    /// `train`, when given, must match the factor shapes; its entries
    /// become the seen-item filter and weight the shard split. `shards` is
    /// clamped to `[1, items]` (an empty `Q` yields a single empty shard).
    /// `precision` selects the item-factor storage tier and `prune`
    /// enables the norm-descending reorder that powers the scan's
    /// Cauchy–Schwarz early exit (`prune = false` keeps items in id order
    /// and scans exhaustively — the bench baseline configuration).
    pub fn build_with(
        p: FactorMatrix,
        q: FactorMatrix,
        train: Option<&CooMatrix>,
        shards: usize,
        precision: Precision,
        prune: bool,
    ) -> Result<ServedModel, ServeError> {
        if p.k() != q.k() {
            return Err(ServeError::DimMismatch(format!(
                "P has k={}, Q has k={}",
                p.k(),
                q.k()
            )));
        }
        if let Some(t) = train {
            if t.rows() as usize != p.rows() || t.cols() as usize != q.rows() {
                return Err(ServeError::DimMismatch(format!(
                    "training matrix is {}×{} but P/Q are {}×{}",
                    t.rows(),
                    t.cols(),
                    p.rows(),
                    q.rows()
                )));
            }
        }
        let items = q.rows();
        let shards = shards.clamp(1, items.max(1));
        let boundaries = plan_item_boundaries(items, shards, train);
        let shard_stores: Vec<ItemShard> = boundaries
            .windows(2)
            .map(|w| build_shard(&q, w[0], w[1], precision, prune))
            .collect();
        Ok(ServedModel {
            p,
            shards: shard_stores,
            items,
            precision,
            pruned: prune,
            seen: train.map(CsrMatrix::from),
        })
    }

    /// Number of users (`P` rows).
    #[inline]
    pub fn users(&self) -> usize {
        self.p.rows()
    }

    /// Number of items (`Q` rows across all shards).
    #[inline]
    pub fn items(&self) -> usize {
        self.items
    }

    /// Latent dimension.
    #[inline]
    pub fn k(&self) -> usize {
        self.p.k()
    }

    /// Item-factor storage tier this snapshot was built with.
    #[inline]
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Whether scans may early-exit on the block-norm bound.
    #[inline]
    pub fn pruned(&self) -> bool {
        self.pruned
    }

    /// Number of item shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard item counts (diagnostics; sums to [`items`](Self::items)).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len).collect()
    }

    /// User `u`'s factor row, or a typed error past the last row.
    #[inline]
    pub fn user_row(&self, user: u32) -> Result<&[f32], ServeError> {
        if (user as usize) < self.p.rows() {
            Ok(self.p.row(user as usize))
        } else {
            Err(ServeError::UnknownUser {
                user,
                users: self.p.rows(),
            })
        }
    }

    /// Item `i`'s factor row (resolved through its shard and the scan
    /// permutation), dequantized to f32 — the values the scan kernels
    /// score against, which for quantized tiers differ from the trained
    /// row by the representation's rounding error.
    pub fn item_row(&self, item: u32) -> Result<Vec<f32>, ServeError> {
        let shard = self.shard_of(item)?;
        let pos = shard.pos[(item - shard.start) as usize] as usize;
        Ok(shard.row_f32(pos))
    }

    /// The shard owning `item`, or a typed error for an out-of-range id.
    fn shard_of(&self, item: u32) -> Result<&ItemShard, ServeError> {
        if (item as usize) >= self.items {
            return Err(ServeError::UnknownItem {
                item,
                items: self.items,
            });
        }
        // Shards are contiguous and sorted by `start`: the owner is the
        // last shard starting at or before `item`.
        let idx = self
            .shards
            .partition_point(|s| s.start <= item)
            .saturating_sub(1);
        Ok(&self.shards[idx])
    }

    /// The items `user` rated during training, sorted ascending (empty when
    /// no training matrix was attached). Allocates; callers cache per query.
    pub fn seen_items(&self, user: u32) -> Vec<u32> {
        match &self.seen {
            Some(csr) if (user as usize) < csr.rows() as usize => {
                let (items, _) = csr.row(user);
                let mut v = items.to_vec();
                v.sort_unstable();
                v
            }
            _ => Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn shards(&self) -> &[ItemShard] {
        &self.shards
    }
}

/// Builds one shard over global items `start..end`: encodes the rows at
/// `precision`, computes per-row stored-representation norms, applies the
/// norm-descending permutation (identity when `prune` is off), and folds
/// the norms into per-block maxima.
fn build_shard(
    q: &FactorMatrix,
    start: u32,
    end: u32,
    precision: Precision,
    prune: bool,
) -> ItemShard {
    let (lo, hi) = (start as usize, end as usize);
    let len = hi - lo;
    let k = q.k();
    // Flatten the shard's slice of Q once; all three tiers encode from it.
    let flat: Vec<f32> = (lo..hi).flat_map(|r| q.row(r).iter().copied()).collect();

    // Encode in *original* order and compute the dequantized-per-row norms
    // the scan's bound must use.
    let (data, norms): (ShardData, Vec<f32>) = match precision {
        Precision::F32 => {
            let norms = (0..len)
                .map(|r| simd::dot(&flat[r * k..(r + 1) * k], &flat[r * k..(r + 1) * k]).sqrt())
                .collect();
            (ShardData::F32(flat.clone()), norms)
        }
        Precision::Fp16 => {
            let mut enc = vec![0u16; flat.len()];
            simd::encode_f16(&flat, &mut enc);
            let mut dec = vec![0.0f32; flat.len()];
            simd::decode_f16(&enc, &mut dec);
            let norms = (0..len)
                .map(|r| simd::dot(&dec[r * k..(r + 1) * k], &dec[r * k..(r + 1) * k]).sqrt())
                .collect();
            (ShardData::Fp16(enc), norms)
        }
        Precision::Int8 => {
            let scale = int8::scale_for(&flat);
            let mut enc = vec![0i8; flat.len()];
            int8::quantize(&flat, scale, &mut enc);
            let norms = (0..len)
                .map(|r| {
                    let row = &enc[r * k..(r + 1) * k];
                    scale * (int8::dot_i8_scalar(row, row) as f32).sqrt()
                })
                .collect();
            (ShardData::Int8 { data: enc, scale }, norms)
        }
    };

    // Scan permutation: descending norm (ties toward the smaller id so
    // builds are deterministic), or identity for exhaustive models.
    let mut perm: Vec<u32> = (0..len as u32).collect();
    if prune {
        perm.sort_by(|&a, &b| {
            norms[b as usize]
                .total_cmp(&norms[a as usize])
                .then(a.cmp(&b))
        });
    }
    let mut pos = vec![0u32; len];
    for (p_idx, &local) in perm.iter().enumerate() {
        pos[local as usize] = p_idx as u32;
    }
    let ids: Vec<u32> = perm.iter().map(|&local| start + local).collect();

    // Gather rows into permuted, position-major storage.
    let data = match data {
        ShardData::F32(src) => ShardData::F32(gather(&src, &perm, k)),
        ShardData::Fp16(src) => ShardData::Fp16(gather(&src, &perm, k)),
        ShardData::Int8 { data: src, scale } => ShardData::Int8 {
            data: gather(&src, &perm, k),
            scale,
        },
    };

    let block_norms: Vec<f32> = (0..len.div_ceil(NORM_BLOCK))
        .map(|b| {
            let blo = b * NORM_BLOCK;
            let bhi = (blo + NORM_BLOCK).min(len);
            perm[blo..bhi]
                .iter()
                .fold(0.0f32, |m, &local| m.max(norms[local as usize]))
        })
        .collect();

    ItemShard {
        start,
        len,
        k,
        ids,
        pos,
        block_norms,
        data,
    }
}

/// Copies `k`-strided rows of `src` into a new vec, in `perm` order.
fn gather<T: Copy + Default>(src: &[T], perm: &[u32], k: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(src.len());
    for &local in perm {
        let r = local as usize;
        out.extend_from_slice(&src[r * k..(r + 1) * k]);
    }
    out
}

/// Plans `shards + 1` item boundaries. With a training matrix the split
/// follows the entry distribution over the item axis (so the per-shard
/// seen-filtering work balances); otherwise items are split evenly. Target
/// fractions come from DP0 with equal virtual speeds.
fn plan_item_boundaries(items: usize, shards: usize, train: Option<&CooMatrix>) -> Vec<u32> {
    let fractions = dp0(&vec![1.0; shards]);
    match train {
        Some(t) if t.nnz() > 0 && t.cols() as usize == items => {
            let grid = GridPartition::build(t, Axis::Col, &fractions);
            let mut b: Vec<u32> = (0..shards).map(|w| grid.range(w).start).collect();
            b.push(items as u32);
            b
        }
        _ => {
            let mut b = Vec::with_capacity(shards + 1);
            let mut acc = 0.0f64;
            b.push(0u32);
            for f in &fractions[..shards - 1] {
                acc += f;
                b.push((acc * items as f64).round() as u32);
            }
            b.push(items as u32);
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::Rating;

    fn factors(users: usize, items: usize, k: usize) -> (FactorMatrix, FactorMatrix) {
        (
            FactorMatrix::random(users, k, 11),
            FactorMatrix::random(items, k, 22),
        )
    }

    #[test]
    fn shards_cover_items_contiguously() {
        let (p, q) = factors(10, 103, 8);
        let m = ServedModel::build(p, q.clone(), None, 4).unwrap();
        assert_eq!(m.shard_count(), 4);
        assert_eq!(m.shard_sizes().iter().sum::<usize>(), 103);
        // Every item row resolves to exactly the global Q row, through the
        // norm permutation.
        for i in 0..103u32 {
            assert_eq!(m.item_row(i).unwrap(), q.row(i as usize));
        }
    }

    #[test]
    fn item_rows_resolve_under_every_precision_and_ordering() {
        let (p, q) = factors(4, 61, 8);
        for precision in [Precision::F32, Precision::Fp16, Precision::Int8] {
            for prune in [false, true] {
                let m = ServedModel::build_with(p.clone(), q.clone(), None, 3, precision, prune)
                    .unwrap();
                assert_eq!(m.precision(), precision);
                assert_eq!(m.pruned(), prune);
                for i in 0..61u32 {
                    let got = m.item_row(i).unwrap();
                    let want = q.row(i as usize);
                    // Quantized rows differ by bounded rounding only.
                    let tol = match precision {
                        Precision::F32 => 0.0,
                        Precision::Fp16 => 1e-3,
                        Precision::Int8 => 0.05,
                    };
                    for (g, w) in got.iter().zip(want) {
                        assert!(
                            (g - w).abs() <= tol,
                            "{precision:?} prune={prune} item {i}: {g} vs {w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_shards_store_norms_descending_per_block() {
        let (_, q) = factors(1, 100, 8);
        let m = ServedModel::build(FactorMatrix::random(1, 8, 1), q, None, 2).unwrap();
        for shard in m.shards() {
            // Block norms are non-increasing (blocks ordered by norm rank).
            for w in shard.block_norms.windows(2) {
                assert!(w[0] >= w[1], "block norms must descend: {w:?}");
            }
            // ids/pos are inverse permutations.
            for (p_idx, &id) in shard.ids.iter().enumerate() {
                assert_eq!(shard.pos[(id - shard.start) as usize] as usize, p_idx);
            }
            // Per-row norms never exceed their block's stored maximum.
            for (p_idx, _) in shard.ids.iter().enumerate() {
                let row = shard.row_f32(p_idx);
                let n = row.iter().map(|x| x * x).sum::<f32>().sqrt();
                let b = shard.block_norms[p_idx / NORM_BLOCK];
                assert!(n <= b + 1e-5, "pos {p_idx}: norm {n} > block bound {b}");
            }
        }
    }

    #[test]
    fn more_shards_than_items_clamps() {
        let (p, q) = factors(3, 2, 4);
        let m = ServedModel::build(p, q, None, 9).unwrap();
        assert_eq!(m.shard_count(), 2);
        assert_eq!(m.items(), 2);
    }

    #[test]
    fn dim_mismatch_is_typed() {
        let p = FactorMatrix::random(3, 4, 1);
        let q = FactorMatrix::random(5, 8, 2);
        assert!(matches!(
            ServedModel::build(p, q, None, 2),
            Err(ServeError::DimMismatch(_))
        ));
        let (p, q) = factors(3, 5, 4);
        let train = CooMatrix::new(4, 5, vec![]).unwrap(); // 4 != 3 users
        assert!(ServedModel::build(p, q, Some(&train), 2).is_err());
    }

    #[test]
    fn out_of_range_lookups_are_typed() {
        let (p, q) = factors(3, 5, 4);
        let m = ServedModel::build(p, q, None, 2).unwrap();
        assert!(matches!(
            m.user_row(3),
            Err(ServeError::UnknownUser { user: 3, users: 3 })
        ));
        assert!(matches!(m.item_row(5), Err(ServeError::UnknownItem { .. })));
    }

    #[test]
    fn seen_items_come_back_sorted() {
        let (p, q) = factors(2, 6, 4);
        let train = CooMatrix::new(
            2,
            6,
            vec![
                Rating::new(0, 5, 1.0),
                Rating::new(0, 1, 1.0),
                Rating::new(0, 3, 1.0),
            ],
        )
        .unwrap();
        let m = ServedModel::build(p, q, Some(&train), 3).unwrap();
        assert_eq!(m.seen_items(0), vec![1, 3, 5]);
        assert!(m.seen_items(1).is_empty());
        assert!(m.seen_items(99).is_empty());
    }

    #[test]
    fn skewed_training_matrix_shifts_shard_boundaries() {
        // All entries on the first 10 items: an entry-weighted split gives
        // the first shard fewer items than an even split would.
        let (p, q) = factors(4, 100, 4);
        let mut entries = Vec::new();
        for u in 0..4u32 {
            for i in 0..10u32 {
                entries.push(Rating::new(u, i, 1.0));
            }
        }
        let train = CooMatrix::new(4, 100, entries).unwrap();
        let m = ServedModel::build(p, q, Some(&train), 2).unwrap();
        let sizes = m.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(
            sizes[0] < 50,
            "entry-weighted split should pull the boundary left: {sizes:?}"
        );
    }
}
