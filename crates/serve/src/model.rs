//! The immutable, item-sharded factor store behind a serving engine.
//!
//! A [`ServedModel`] is a *snapshot*: once built it never mutates, so any
//! number of query threads may scan it without synchronization, and hot
//! reload is a pointer swap to a freshly built snapshot (see
//! [`crate::ServeEngine`]).
//!
//! `Q` is cut into contiguous item ranges — one shard per worker thread of
//! a batched query — using the same planning machinery the trainer uses to
//! cut the rating matrix: per-shard fractions come from
//! [`hcc_partition::dp0`] (equal virtual speeds → balanced shards) and,
//! when the training matrix is available, the split points come from
//! [`GridPartition`] over the *item* axis so shards balance seen-item
//! filtering work, not just item counts.

use crate::error::ServeError;
use hcc_partition::dp0;
use hcc_sgd::FactorMatrix;
use hcc_sparse::{Axis, CooMatrix, CsrMatrix, GridPartition};

/// One contiguous item shard: rows `start..start + q.rows()` of global `Q`.
#[derive(Debug, Clone)]
pub(crate) struct ItemShard {
    /// First global item id in this shard.
    pub start: u32,
    /// The shard's slice of `Q` (row `i` is global item `start + i`).
    pub q: FactorMatrix,
}

/// An immutable snapshot of a servable model: `P`, sharded `Q`, and the
/// seen-item matrix used to exclude already-rated items from top-k answers.
#[derive(Debug, Clone)]
pub struct ServedModel {
    p: FactorMatrix,
    shards: Vec<ItemShard>,
    items: usize,
    /// Per-user seen items from the training matrix (`None` = serve
    /// everything, nothing is filtered).
    seen: Option<CsrMatrix>,
}

impl ServedModel {
    /// Builds a snapshot from trained factors.
    ///
    /// `train`, when given, must match the factor shapes; its entries
    /// become the seen-item filter and weight the shard split. `shards` is
    /// clamped to `[1, items]` (an empty `Q` yields a single empty shard).
    pub fn build(
        p: FactorMatrix,
        q: FactorMatrix,
        train: Option<&CooMatrix>,
        shards: usize,
    ) -> Result<ServedModel, ServeError> {
        if p.k() != q.k() {
            return Err(ServeError::DimMismatch(format!(
                "P has k={}, Q has k={}",
                p.k(),
                q.k()
            )));
        }
        if let Some(t) = train {
            if t.rows() as usize != p.rows() || t.cols() as usize != q.rows() {
                return Err(ServeError::DimMismatch(format!(
                    "training matrix is {}×{} but P/Q are {}×{}",
                    t.rows(),
                    t.cols(),
                    p.rows(),
                    q.rows()
                )));
            }
        }
        let items = q.rows();
        let shards = shards.clamp(1, items.max(1));
        let boundaries = plan_item_boundaries(items, shards, train);
        let k = q.k();
        let shard_stores: Vec<ItemShard> = boundaries
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0] as usize, w[1] as usize);
                let data: Vec<f32> = (lo..hi).flat_map(|r| q.row(r).iter().copied()).collect();
                ItemShard {
                    start: w[0],
                    q: FactorMatrix::from_vec(hi - lo, k, data),
                }
            })
            .collect();
        Ok(ServedModel {
            p,
            shards: shard_stores,
            items,
            seen: train.map(CsrMatrix::from),
        })
    }

    /// Number of users (`P` rows).
    #[inline]
    pub fn users(&self) -> usize {
        self.p.rows()
    }

    /// Number of items (`Q` rows across all shards).
    #[inline]
    pub fn items(&self) -> usize {
        self.items
    }

    /// Latent dimension.
    #[inline]
    pub fn k(&self) -> usize {
        self.p.k()
    }

    /// Number of item shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard item counts (diagnostics; sums to [`items`](Self::items)).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.q.rows()).collect()
    }

    /// User `u`'s factor row, or a typed error past the last row.
    #[inline]
    pub fn user_row(&self, user: u32) -> Result<&[f32], ServeError> {
        if (user as usize) < self.p.rows() {
            Ok(self.p.row(user as usize))
        } else {
            Err(ServeError::UnknownUser {
                user,
                users: self.p.rows(),
            })
        }
    }

    /// Item `i`'s factor row (resolved through its shard), or a typed error.
    pub fn item_row(&self, item: u32) -> Result<&[f32], ServeError> {
        if (item as usize) >= self.items {
            return Err(ServeError::UnknownItem {
                item,
                items: self.items,
            });
        }
        // Shards are contiguous and sorted by `start`: the owner is the
        // last shard starting at or before `item`.
        let idx = self
            .shards
            .partition_point(|s| s.start <= item)
            .saturating_sub(1);
        let shard = &self.shards[idx];
        Ok(shard.q.row((item - shard.start) as usize))
    }

    /// The items `user` rated during training, sorted ascending (empty when
    /// no training matrix was attached). Allocates; callers cache per query.
    pub fn seen_items(&self, user: u32) -> Vec<u32> {
        match &self.seen {
            Some(csr) if (user as usize) < csr.rows() as usize => {
                let (items, _) = csr.row(user);
                let mut v = items.to_vec();
                v.sort_unstable();
                v
            }
            _ => Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn shards(&self) -> &[ItemShard] {
        &self.shards
    }
}

/// Plans `shards + 1` item boundaries. With a training matrix the split
/// follows the entry distribution over the item axis (so the per-shard
/// seen-filtering work balances); otherwise items are split evenly. Target
/// fractions come from DP0 with equal virtual speeds.
fn plan_item_boundaries(items: usize, shards: usize, train: Option<&CooMatrix>) -> Vec<u32> {
    let fractions = dp0(&vec![1.0; shards]);
    match train {
        Some(t) if t.nnz() > 0 && t.cols() as usize == items => {
            let grid = GridPartition::build(t, Axis::Col, &fractions);
            let mut b: Vec<u32> = (0..shards).map(|w| grid.range(w).start).collect();
            b.push(items as u32);
            b
        }
        _ => {
            let mut b = Vec::with_capacity(shards + 1);
            let mut acc = 0.0f64;
            b.push(0u32);
            for f in &fractions[..shards - 1] {
                acc += f;
                b.push((acc * items as f64).round() as u32);
            }
            b.push(items as u32);
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::Rating;

    fn factors(users: usize, items: usize, k: usize) -> (FactorMatrix, FactorMatrix) {
        (
            FactorMatrix::random(users, k, 11),
            FactorMatrix::random(items, k, 22),
        )
    }

    #[test]
    fn shards_cover_items_contiguously() {
        let (p, q) = factors(10, 103, 8);
        let m = ServedModel::build(p, q.clone(), None, 4).unwrap();
        assert_eq!(m.shard_count(), 4);
        assert_eq!(m.shard_sizes().iter().sum::<usize>(), 103);
        // Every item row resolves to exactly the global Q row.
        for i in 0..103u32 {
            assert_eq!(m.item_row(i).unwrap(), q.row(i as usize));
        }
    }

    #[test]
    fn more_shards_than_items_clamps() {
        let (p, q) = factors(3, 2, 4);
        let m = ServedModel::build(p, q, None, 9).unwrap();
        assert_eq!(m.shard_count(), 2);
        assert_eq!(m.items(), 2);
    }

    #[test]
    fn dim_mismatch_is_typed() {
        let p = FactorMatrix::random(3, 4, 1);
        let q = FactorMatrix::random(5, 8, 2);
        assert!(matches!(
            ServedModel::build(p, q, None, 2),
            Err(ServeError::DimMismatch(_))
        ));
        let (p, q) = factors(3, 5, 4);
        let train = CooMatrix::new(4, 5, vec![]).unwrap(); // 4 != 3 users
        assert!(ServedModel::build(p, q, Some(&train), 2).is_err());
    }

    #[test]
    fn out_of_range_lookups_are_typed() {
        let (p, q) = factors(3, 5, 4);
        let m = ServedModel::build(p, q, None, 2).unwrap();
        assert!(matches!(
            m.user_row(3),
            Err(ServeError::UnknownUser { user: 3, users: 3 })
        ));
        assert!(matches!(m.item_row(5), Err(ServeError::UnknownItem { .. })));
    }

    #[test]
    fn seen_items_come_back_sorted() {
        let (p, q) = factors(2, 6, 4);
        let train = CooMatrix::new(
            2,
            6,
            vec![
                Rating::new(0, 5, 1.0),
                Rating::new(0, 1, 1.0),
                Rating::new(0, 3, 1.0),
            ],
        )
        .unwrap();
        let m = ServedModel::build(p, q, Some(&train), 3).unwrap();
        assert_eq!(m.seen_items(0), vec![1, 3, 5]);
        assert!(m.seen_items(1).is_empty());
        assert!(m.seen_items(99).is_empty());
    }

    #[test]
    fn skewed_training_matrix_shifts_shard_boundaries() {
        // All entries on the first 10 items: an entry-weighted split gives
        // the first shard fewer items than an even split would.
        let (p, q) = factors(4, 100, 4);
        let mut entries = Vec::new();
        for u in 0..4u32 {
            for i in 0..10u32 {
                entries.push(Rating::new(u, i, 1.0));
            }
        }
        let train = CooMatrix::new(4, 100, entries).unwrap();
        let m = ServedModel::build(p, q, Some(&train), 2).unwrap();
        let sizes = m.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        assert!(
            sizes[0] < 50,
            "entry-weighted split should pull the boundary left: {sizes:?}"
        );
    }
}
