//! `hcc-sync`: the synchronization facade the lock-free cores route through.
//!
//! Every hand-argued concurrent protocol in the workspace — the telemetry
//! ring's single-writer lanes, the heartbeat board's Release/Acquire
//! pairing, the serve engine's snapshot swap, the admission queue's
//! bounded backpressure and merger election, the sharded server's
//! delta-base snapshot, and the SIMD backend cache — imports its atomics
//! and locks from this crate instead of `std::sync::atomic` /
//! `parking_lot` directly.
//!
//! In a normal build the module is a set of **pure re-exports**: the same
//! types, zero cost, no behavioral change. Under the `model` cargo feature
//! the re-exports swap to an instrumented runtime (the `model` module) driven by a
//! deterministic interleaving explorer — a vendored, dependency-free
//! mini-loom. `hcc-check` extracts small models of the five protocols
//! above, runs them under `explore`, and asserts their invariants over
//! every schedule within a preemption bound (see DESIGN.md §15).
//!
//! The split keeps the production dependency edge trivial (feature
//! unification cannot leak `model` into release builds: only
//! `hcc-check`'s own test graph enables it) while giving the checker a
//! drop-in API: model code is written once against `hcc_sync::{...}` and
//! compiles both ways.

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(feature = "model")]
pub mod model;

#[cfg(feature = "model")]
pub use model::{
    explore, explore_seeded, spawn, thread_yield, Arc, AtomicBool, AtomicU32, AtomicU64, AtomicU8,
    AtomicUsize, Condvar, Config, JoinHandle, MCell, Mutex, MutexGuard, Ordering, RwLock,
    RwLockReadGuard, RwLockWriteGuard, Stats, Violation,
};

#[cfg(not(feature = "model"))]
pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(feature = "model"))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
#[cfg(not(feature = "model"))]
pub use std::sync::Arc;

#[cfg(all(test, not(feature = "model")))]
mod tests {
    //! The default build must re-export the exact production types, so
    //! routing a module through `hcc_sync` is observationally a no-op.
    use super::*;

    #[test]
    fn default_reexports_are_the_production_types() {
        let a: AtomicU64 = AtomicU64::new(7);
        // ordering: Relaxed — single-threaded facade smoke test.
        assert_eq!(a.load(Ordering::Relaxed), 7);
        let m: Mutex<u32> = Mutex::new(1);
        assert_eq!(*m.lock(), 1);
        let rw: RwLock<u32> = RwLock::new(2);
        assert_eq!(*rw.read(), 2);
        let arc: Arc<u32> = Arc::new(3);
        assert_eq!(*arc, 3);
        // Type-level identity with std/parking_lot (compile-time check).
        fn takes_std(_: &std::sync::atomic::AtomicU64) {}
        takes_std(&a);
        fn takes_pl(_: &parking_lot::Mutex<u32>) {}
        takes_pl(&m);
    }
}
