//! Deterministic interleaving model checker (a vendored mini-loom).
//!
//! Under `--features model` the facade's types swap to the instrumented
//! versions in this module and [`explore`] drives a **replay-based DFS**
//! over thread interleavings:
//!
//! * Threads are real OS threads, but a cooperative scheduler serializes
//!   them: exactly one runs at a time, and every *visible* operation
//!   (atomic access, `MCell` access, lock acquire/release) is a schedule
//!   point. Scheduling only at visible operations is the first pruning
//!   lever (invisible thread-local work commutes, in the DPOR spirit);
//!   **bounded preemption** ([`Config::preemption_bound`]) is the second.
//! * Every nondeterministic choice (which runnable thread proceeds; which
//!   store an atomic load observes) is recorded on a decision path. After
//!   a schedule completes, the deepest non-exhausted decision is bumped
//!   and the test body re-runs, replaying the prefix — classic stateless
//!   model checking.
//! * Atomics follow a release/acquire **view semantics**: each location
//!   keeps its full store history; a load may observe any store not yet
//!   superseded in the loading thread's per-location view, so stale reads
//!   permitted by `Relaxed` really happen. Release stores publish the
//!   writer's vector clock; acquire loads join it; RMWs read the latest
//!   store and continue release sequences.
//! * [`MCell`] models a plain (non-atomic) shared cell with vector-clock
//!   race detection: any access pair not ordered by happens-before is
//!   reported as a data race — this is what catches a torn ring write or
//!   a stale heartbeat statistic when an ordering is weakened.
//!
//! Exploration order is **seeded and deterministic** ([`Config::seed`]
//! rotates the option order at each decision node), so a reported
//! [`Violation`] carries a trace that [`Config::replay`] re-executes
//! exactly. Same seed, same schedule sequence — failures replay bit-for-bit.

use std::cell::{RefCell, UnsafeCell};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub use std::sync::atomic::Ordering;
pub use std::sync::Arc;

// ---------------------------------------------------------------------------
// Configuration, results
// ---------------------------------------------------------------------------

/// Exploration knobs. The defaults exhaust every schedule of the small
/// protocol models in `hcc-check` within the preemption bound.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum involuntary context switches per schedule. 2–3 preemptions
    /// expose the overwhelming majority of concurrency bugs (CHESS);
    /// raising it grows the space combinatorially.
    pub preemption_bound: usize,
    /// Hard cap on schedules explored; exceeded ⇒ `Stats::complete = false`.
    pub max_schedules: usize,
    /// Rotates option order at every decision node. Exploration *order*
    /// varies with the seed, the explored *set* does not; a violation
    /// message names the seed so the failing run replays exactly.
    pub seed: u64,
    /// Replay exactly one schedule: the resolved decision trace from a
    /// prior [`Violation`].
    pub replay: Option<Vec<usize>>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 3,
            max_schedules: 500_000,
            seed: 0x5EED,
            replay: None,
        }
    }
}

/// Exploration summary for a passing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Schedules executed.
    pub schedules: usize,
    /// False when `max_schedules` cut exploration short.
    pub complete: bool,
    /// Deepest decision path seen.
    pub max_depth: usize,
}

/// A failing schedule: the first invariant breach, race, or deadlock found.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Panic payload, race report, or deadlock description.
    pub message: String,
    /// Resolved decision trace; feed to [`Config::replay`] to re-execute.
    pub trace: Vec<usize>,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule: usize,
    /// Seed the exploration ran under.
    pub seed: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model violation (schedule {}, seed {:#x}): {}\n  replay trace: {:?}",
            self.schedule, self.seed, self.message, self.trace
        )
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

const NO_THREAD: usize = usize::MAX;

/// Sentinel panic payload used to unwind model threads on abort.
struct AbortRun;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Parked until another thread transitions it back to `Ready`.
    Blocked,
    Finished,
}

#[derive(Debug, Clone)]
struct ThreadState {
    status: Status,
    /// Vector clock: `vc[t]` = latest epoch of thread `t` ordered before us.
    vc: Vec<u64>,
    /// Per-location coherence floor: smallest store sequence this thread
    /// may still observe at each atomic location.
    seen: BTreeMap<usize, u64>,
    /// Lock (or join target) this thread is parked on, for diagnostics.
    waiting_on: Option<String>,
}

/// One store in a location's modification order.
#[derive(Debug, Clone)]
struct Message {
    val: u64,
    seq: u64,
    /// Coherence knowledge transferred to acquire readers.
    seen: BTreeMap<usize, u64>,
    /// Writer's vector clock if the store (or its release sequence head)
    /// had release semantics.
    vc: Option<Vec<u64>>,
}

#[derive(Debug, Default)]
struct LocState {
    msgs: Vec<Message>,
}

#[derive(Debug, Default)]
struct CellState {
    last_write: Option<(usize, u64)>,
    reads: BTreeMap<usize, u64>,
}

#[derive(Debug)]
struct LockState {
    /// `NO_THREAD` = free; writer tid for a mutex/write lock.
    owner: usize,
    readers: Vec<usize>,
    /// Release clock joined on every acquire.
    vc: Vec<u64>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    n: usize,
    pick: usize,
}

struct SchedState {
    active: usize,
    threads: Vec<ThreadState>,
    locs: Vec<LocState>,
    cells: Vec<CellState>,
    locks: Vec<LockState>,
    preemptions: usize,
    preemption_bound: usize,
    seed: u64,
    /// DFS decision path (pre-rotation picks) reused across schedules.
    path: Vec<Node>,
    depth: usize,
    /// Post-rotation picks actually taken this schedule (the replay trace).
    resolved: Vec<usize>,
    replay: Option<Vec<usize>>,
    abort: bool,
    violation: Option<String>,
}

struct Ctx {
    st: StdMutex<SchedState>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static TLS: RefCell<Option<(Arc<Ctx>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> (Arc<Ctx>, usize) {
    TLS.with(|t| {
        t.borrow()
            .clone()
            .expect("hcc-sync model type used outside explore() — model structures may only be touched by model threads")
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unwinds the current model thread out of an aborted schedule with the
/// sentinel payload the thread wrapper swallows. Model ops must never be
/// invoked from `Drop` while panicking (the lock guards handle their own
/// abort path), so this cannot double-panic.
fn abort_now() -> ! {
    resume_unwind(Box::new(AbortRun));
}

fn join_vc(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

fn vc_at(vc: &[u64], t: usize) -> u64 {
    vc.get(t).copied().unwrap_or(0)
}

impl SchedState {
    fn fail(&mut self, msg: String) {
        if self.violation.is_none() {
            self.violation = Some(msg);
        }
        self.abort = true;
    }

    /// One nondeterministic decision among `n` options. Trivial (n == 1)
    /// decisions are not recorded so the DFS path stays minimal.
    fn decide(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        if let Some(replay) = &self.replay {
            let pick = replay.get(self.resolved.len()).copied().unwrap_or(0);
            self.resolved.push(pick.min(n - 1));
            return pick.min(n - 1);
        }
        let d = self.depth;
        if d == self.path.len() {
            self.path.push(Node { n, pick: 0 });
        }
        let node = self.path[d];
        assert_eq!(
            node.n, n,
            "nondeterministic model: decision {d} had {} options on a prior schedule, {n} now \
             (model bodies must be deterministic apart from interleaving)",
            node.n
        );
        self.depth += 1;
        let rot = (splitmix64(self.seed ^ (d as u64)) % n as u64) as usize;
        let resolved = (node.pick + rot) % n;
        self.resolved.push(resolved);
        resolved
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Ready)
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    /// Picks the next active thread. `voluntary` = the caller is at an
    /// ordinary schedule point and could itself continue.
    fn reschedule(&mut self, me: usize, voluntary: bool) {
        if self.abort {
            self.active = NO_THREAD;
            return;
        }
        let runnable = self.runnable();
        if runnable.is_empty() {
            if !self.all_finished() {
                let stuck: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status == Status::Blocked)
                    .map(|(i, t)| {
                        format!(
                            "thread {i} on {}",
                            t.waiting_on.as_deref().unwrap_or("<unknown>")
                        )
                    })
                    .collect();
                self.fail(format!("deadlock: {}", stuck.join(", ")));
            }
            self.active = NO_THREAD;
            return;
        }
        let me_runnable = voluntary && runnable.contains(&me);
        let options = if me_runnable && self.preemptions >= self.preemption_bound {
            vec![me]
        } else {
            runnable
        };
        let next = options[self.decide(options.len())];
        if me_runnable && next != me {
            self.preemptions += 1;
        }
        self.active = next;
    }
}

// ---------------------------------------------------------------------------
// Schedule points
// ---------------------------------------------------------------------------

/// Runs `f` on the scheduler state at a schedule point: picks who runs
/// next, waits for this thread's turn, then applies `f` atomically w.r.t.
/// other model threads.
fn visible_op<R>(f: impl FnOnce(&mut SchedState, usize) -> R) -> R {
    let (ctx, me) = ctx();
    let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
    if st.abort {
        drop(st);
        abort_now();
    }
    st.reschedule(me, true);
    ctx.cv.notify_all();
    st = wait_for_turn(&ctx, st, me);
    let r = f(&mut st, me);
    if st.abort {
        drop(st);
        ctx.cv.notify_all();
        abort_now();
    }
    drop(st);
    r
}

fn wait_for_turn<'a>(
    ctx: &'a Ctx,
    mut st: StdMutexGuard<'a, SchedState>,
    me: usize,
) -> StdMutexGuard<'a, SchedState> {
    while st.active != me {
        if st.abort {
            drop(st);
            abort_now();
        }
        st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    if st.abort {
        drop(st);
        abort_now();
    }
    st
}

/// Parks the current thread (status already set to Blocked by the caller's
/// closure) and waits until a waker readies it and the scheduler picks it.
fn block_here(ctx: &Arc<Ctx>, mut st: StdMutexGuard<'_, SchedState>, me: usize) {
    st.threads[me].status = Status::Blocked;
    st.reschedule(me, false);
    ctx.cv.notify_all();
    let st = wait_for_turn(ctx, st, me);
    drop(st);
}

/// An explicit no-op schedule point, for models that want to widen the
/// interleaving surface around invisible work.
pub fn thread_yield() {
    visible_op(|_, _| {});
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Handle to a model thread; `join` establishes the usual happens-before
/// edge from everything the child did.
pub struct JoinHandle {
    tid: usize,
}

/// Spawns a model thread. Must be called from inside a model (`explore`
/// body or another model thread).
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JoinHandle {
    let (ctx, me) = ctx();
    let tid;
    {
        let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.abort {
            drop(st);
            abort_now();
        }
        tid = st.threads.len();
        let mut vc = st.threads[me].vc.clone();
        if vc.len() <= tid {
            vc.resize(tid + 1, 0);
        }
        vc[tid] += 1;
        let seen = st.threads[me].seen.clone();
        st.threads.push(ThreadState {
            status: Status::Ready,
            vc,
            seen,
            waiting_on: None,
        });
        let e = st.threads[me].vc.len().max(me + 1);
        st.threads[me].vc.resize(e, 0);
        st.threads[me].vc[me] += 1;
    }
    let handle = run_thread(&ctx, tid, f);
    ctx.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    JoinHandle { tid }
}

fn run_thread(
    ctx: &Arc<Ctx>,
    tid: usize,
    f: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    let ctx = Arc::clone(ctx);
    std::thread::spawn(move || {
        TLS.with(|t| *t.borrow_mut() = Some((Arc::clone(&ctx), tid)));
        let aborted_before_start = {
            let st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
            let st = wait_for_turn_or_abort(&ctx, st, tid);
            st.abort
        };
        let result = if aborted_before_start {
            Ok(())
        } else {
            catch_unwind(AssertUnwindSafe(f))
        };
        let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(payload) = result {
            if !payload.is::<AbortRun>() {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "model thread panicked".into());
                st.fail(format!("thread {tid}: {msg}"));
            }
        }
        st.threads[tid].status = Status::Finished;
        // Wake joiners.
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::Blocked
                && st.threads[t].waiting_on.as_deref() == Some(join_key(tid).as_str())
            {
                st.threads[t].status = Status::Ready;
            }
        }
        st.reschedule(tid, false);
        ctx.cv.notify_all();
    })
}

/// Like [`wait_for_turn`] but swallows the abort (the thread has not run
/// any model body yet, so there is nothing to unwind).
fn wait_for_turn_or_abort<'a>(
    ctx: &'a Ctx,
    mut st: StdMutexGuard<'a, SchedState>,
    me: usize,
) -> StdMutexGuard<'a, SchedState> {
    while st.active != me && !st.abort {
        st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st
}

fn join_key(tid: usize) -> String {
    format!("join({tid})")
}

impl JoinHandle {
    /// Waits for the thread to finish and joins its clock.
    pub fn join(self) {
        let (ctx, me) = ctx();
        loop {
            let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
            if st.abort {
                drop(st);
                abort_now();
            }
            if st.threads[self.tid].status == Status::Finished {
                let child_vc = st.threads[self.tid].vc.clone();
                let child_seen = st.threads[self.tid].seen.clone();
                join_vc(&mut st.threads[me].vc, &child_vc);
                for (loc, seq) in child_seen {
                    let e = st.threads[me].seen.entry(loc).or_insert(0);
                    *e = (*e).max(seq);
                }
                return;
            }
            st.threads[me].waiting_on = Some(join_key(self.tid));
            block_here(&ctx, st, me);
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics (release/acquire view semantics)
// ---------------------------------------------------------------------------

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// The untyped core every model atomic wraps: one location in the store
/// history table.
///
/// Registration in the table is lazy (first access), which keeps `new`
/// a `const fn` — so routed modules that hold atomics in `static`s still
/// compile under the `model` feature. Model code must not reuse an
/// instance across schedules: the location id caches on first touch and
/// each schedule starts a fresh table (protocol models construct their
/// state inside the explored closure, so this holds by construction).
struct AtomicCore {
    init: u64,
    loc: std::sync::OnceLock<usize>,
}

impl AtomicCore {
    const fn new(init: u64) -> AtomicCore {
        AtomicCore {
            init,
            loc: std::sync::OnceLock::new(),
        }
    }

    fn loc(&self) -> usize {
        *self.loc.get_or_init(|| {
            let (ctx, _me) = ctx();
            let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
            let loc = st.locs.len();
            let mut seen = BTreeMap::new();
            seen.insert(loc, 0);
            st.locs.push(LocState {
                msgs: vec![Message {
                    val: self.init,
                    seq: 0,
                    seen,
                    vc: None,
                }],
            });
            loc
        })
    }

    fn load(&self, ord: Ordering) -> u64 {
        let loc = self.loc();
        visible_op(|st, me| {
            let floor = st.threads[me].seen.get(&loc).copied().unwrap_or(0);
            let candidates: Vec<usize> = st.locs[loc]
                .msgs
                .iter()
                .enumerate()
                .filter(|(_, m)| m.seq >= floor)
                .map(|(i, _)| i)
                .collect();
            let pick = candidates[st.decide(candidates.len())];
            let msg = st.locs[loc].msgs[pick].clone();
            let e = st.threads[me].seen.entry(loc).or_insert(0);
            *e = (*e).max(msg.seq);
            if is_acquire(ord) {
                for (l, s) in &msg.seen {
                    let e = st.threads[me].seen.entry(*l).or_insert(0);
                    *e = (*e).max(*s);
                }
                if let Some(vc) = &msg.vc {
                    join_vc(&mut st.threads[me].vc, vc);
                }
            }
            msg.val
        })
    }

    fn store(&self, val: u64, ord: Ordering) {
        let loc = self.loc();
        visible_op(|st, me| {
            let seq = st.locs[loc].msgs.last().map(|m| m.seq + 1).unwrap_or(0);
            st.threads[me].seen.insert(loc, seq);
            let (seen, vc) = if is_release(ord) {
                (st.threads[me].seen.clone(), Some(st.threads[me].vc.clone()))
            } else {
                let mut s = BTreeMap::new();
                s.insert(loc, seq);
                (s, None)
            };
            st.locs[loc].msgs.push(Message { val, seq, seen, vc });
            if is_release(ord) {
                let e = st.threads[me].vc.len().max(me + 1);
                st.threads[me].vc.resize(e, 0);
                st.threads[me].vc[me] += 1;
            }
        })
    }

    /// Atomic read-modify-write: reads the **latest** store (modification-
    /// order atomicity) and continues its release sequence.
    fn rmw(&self, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let loc = self.loc();
        visible_op(|st, me| {
            let tail = st.locs[loc].msgs.last().cloned().expect("init message");
            let old = tail.val;
            let new = f(old);
            let seq = tail.seq + 1;
            st.threads[me].seen.insert(loc, seq);
            if is_acquire(ord) {
                for (l, s) in &tail.seen {
                    let e = st.threads[me].seen.entry(*l).or_insert(0);
                    *e = (*e).max(*s);
                }
                if let Some(vc) = &tail.vc {
                    join_vc(&mut st.threads[me].vc, vc);
                }
            }
            // Release sequence: the new message keeps the tail's release
            // clock even when this RMW itself is not a release.
            let mut vc = tail.vc.clone();
            let mut seen = tail.seen.clone();
            if is_release(ord) {
                let mine = st.threads[me].vc.clone();
                match &mut vc {
                    Some(v) => join_vc(v, &mine),
                    None => vc = Some(mine),
                }
                for (l, s) in st.threads[me].seen.clone() {
                    let e = seen.entry(l).or_insert(0);
                    *e = (*e).max(s);
                }
            }
            seen.insert(loc, seq);
            st.locs[loc].msgs.push(Message {
                val: new,
                seq,
                seen,
                vc,
            });
            if is_release(ord) {
                let e = st.threads[me].vc.len().max(me + 1);
                st.threads[me].vc.resize(e, 0);
                st.threads[me].vc[me] += 1;
            }
            old
        })
    }

    fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let loc = self.loc();
        // Peek the tail under a single visible op; branch to RMW or
        // failed-load semantics inside it so the CAS stays atomic.
        visible_op(|st, me| {
            let tail = st.locs[loc].msgs.last().cloned().expect("init message");
            if tail.val == current {
                let ord = success;
                let seq = tail.seq + 1;
                st.threads[me].seen.insert(loc, seq);
                if is_acquire(ord) {
                    for (l, s) in &tail.seen {
                        let e = st.threads[me].seen.entry(*l).or_insert(0);
                        *e = (*e).max(*s);
                    }
                    if let Some(vc) = &tail.vc {
                        join_vc(&mut st.threads[me].vc, vc);
                    }
                }
                let mut vc = tail.vc.clone();
                let mut seen = tail.seen.clone();
                if is_release(ord) {
                    let mine = st.threads[me].vc.clone();
                    match &mut vc {
                        Some(v) => join_vc(v, &mine),
                        None => vc = Some(mine),
                    }
                    for (l, s) in st.threads[me].seen.clone() {
                        let e = seen.entry(l).or_insert(0);
                        *e = (*e).max(s);
                    }
                }
                seen.insert(loc, seq);
                st.locs[loc].msgs.push(Message {
                    val: new,
                    seq,
                    seen,
                    vc,
                });
                if is_release(ord) {
                    let e = st.threads[me].vc.len().max(me + 1);
                    st.threads[me].vc.resize(e, 0);
                    st.threads[me].vc[me] += 1;
                }
                Ok(current)
            } else {
                // Failed CAS: a load of the latest value.
                let e = st.threads[me].seen.entry(loc).or_insert(0);
                *e = (*e).max(tail.seq);
                if is_acquire(failure) {
                    for (l, s) in &tail.seen {
                        let e = st.threads[me].seen.entry(*l).or_insert(0);
                        *e = (*e).max(*s);
                    }
                    if let Some(vc) = &tail.vc {
                        join_vc(&mut st.threads[me].vc, vc);
                    }
                }
                Err(tail.val)
            }
        })
    }
}

macro_rules! model_atomic {
    ($name:ident, $ty:ty) => {
        /// Model-checked drop-in for the `std::sync::atomic` type of the
        /// same name (subset of the API the workspace uses).
        pub struct $name {
            core: AtomicCore,
        }

        impl $name {
            #[allow(clippy::new_without_default)]
            pub const fn new(v: $ty) -> Self {
                Self {
                    core: AtomicCore::new(v as u64),
                }
            }

            pub fn load(&self, ord: Ordering) -> $ty {
                self.core.load(ord) as $ty
            }

            pub fn store(&self, v: $ty, ord: Ordering) {
                self.core.store(v as u64, ord)
            }

            pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |_| v as u64) as $ty
            }

            pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |x| (x as $ty).wrapping_add(v) as u64) as $ty
            }

            pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |x| (x as $ty).wrapping_sub(v) as u64) as $ty
            }

            pub fn fetch_max(&self, v: $ty, ord: Ordering) -> $ty {
                self.core.rmw(ord, |x| (x as $ty).max(v) as u64) as $ty
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.core
                    .compare_exchange(current as u64, new as u64, success, failure)
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
            }
        }

        // Opaque on purpose: reading the value would be a schedule point
        // (and panic outside `explore`), which a Debug impl must never be.
        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(concat!("model::", stringify!($name)))
            }
        }
    };
}

model_atomic!(AtomicU8, u8);
model_atomic!(AtomicU32, u32);
model_atomic!(AtomicU64, u64);
model_atomic!(AtomicUsize, usize);

/// Model-checked `AtomicBool` (bools ride the same u64 core).
pub struct AtomicBool {
    core: AtomicCore,
}

impl AtomicBool {
    #[allow(clippy::new_without_default)]
    pub const fn new(v: bool) -> Self {
        Self {
            core: AtomicCore::new(v as u64),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        self.core.load(ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        self.core.store(v as u64, ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        self.core.rmw(ord, |_| v as u64) != 0
    }
}

// Opaque for the same reason as the macro-generated atomics above.
impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("model::AtomicBool")
    }
}

// ---------------------------------------------------------------------------
// MCell: plain shared memory with race detection
// ---------------------------------------------------------------------------

/// A modeled **non-atomic** shared cell. Reads and writes are schedule
/// points checked with vector clocks: two accesses (at least one a write)
/// not ordered by happens-before abort the schedule with a data-race
/// violation. This is the model-world stand-in for the bytes behind an
/// `UnsafeCell` / raw pointer in the real tree.
pub struct MCell<T: Copy> {
    id: usize,
    name: &'static str,
    // SHARED: value — the modeled plain cell; every access goes through
    // read()/write() below, which serialize under the scheduler and
    // vector-clock-check the access pair, so the UnsafeCell is never
    // touched concurrently.
    value: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and every
// access is race-checked; see the struct docs.
unsafe impl<T: Copy + Send> Sync for MCell<T> {}
// SAFETY: T: Send and the cell owns its value.
unsafe impl<T: Copy + Send> Send for MCell<T> {}

impl<T: Copy> MCell<T> {
    pub fn new(name: &'static str, v: T) -> MCell<T> {
        let (ctx, _me) = ctx();
        let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
        let id = st.cells.len();
        st.cells.push(CellState::default());
        MCell {
            id,
            name,
            value: UnsafeCell::new(v),
        }
    }

    pub fn read(&self) -> T {
        let id = self.id;
        let name = self.name;
        visible_op(|st, me| {
            if let Some((t, e)) = st.cells[id].last_write {
                if t != me && vc_at(&st.threads[me].vc, t) < e {
                    st.fail(format!(
                        "data race on `{name}`: write by thread {t} is not ordered before \
                         read by thread {me}"
                    ));
                }
            }
            let epoch = vc_at(&st.threads[me].vc, me);
            let r = st.cells[id].reads.entry(me).or_insert(0);
            *r = (*r).max(epoch);
        });
        // SAFETY: serialized by the scheduler; a racing pair aborted the
        // schedule inside visible_op and never reaches this read.
        unsafe { *self.value.get() }
    }

    pub fn write(&self, v: T) {
        let id = self.id;
        let name = self.name;
        visible_op(|st, me| {
            if let Some((t, e)) = st.cells[id].last_write {
                if t != me && vc_at(&st.threads[me].vc, t) < e {
                    st.fail(format!(
                        "data race on `{name}`: write by thread {t} is not ordered before \
                         write by thread {me}"
                    ));
                }
            }
            let racing_read = st.cells[id]
                .reads
                .iter()
                .find(|(&t, &e)| t != me && vc_at(&st.threads[me].vc, t) < e)
                .map(|(&t, _)| t);
            if let Some(t) = racing_read {
                st.fail(format!(
                    "data race on `{name}`: read by thread {t} is not ordered before \
                     write by thread {me}"
                ));
            }
            let epoch = vc_at(&st.threads[me].vc, me);
            st.cells[id].last_write = Some((me, epoch));
            st.cells[id].reads.clear();
        });
        // SAFETY: serialized by the scheduler; a racing pair aborted the
        // schedule inside visible_op and never reaches this write.
        unsafe { *self.value.get() = v }
    }
}

// ---------------------------------------------------------------------------
// Locks
// ---------------------------------------------------------------------------

fn new_lock() -> usize {
    let (ctx, _me) = ctx();
    let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
    let id = st.locks.len();
    st.locks.push(LockState {
        owner: NO_THREAD,
        readers: Vec::new(),
        vc: Vec::new(),
    });
    id
}

fn lock_exclusive(id: usize, what: &str) {
    let (ctx, me) = ctx();
    loop {
        visible_op(|_, _| {});
        let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.abort {
            drop(st);
            abort_now();
        }
        if st.locks[id].owner == NO_THREAD && st.locks[id].readers.is_empty() {
            st.locks[id].owner = me;
            let vc = st.locks[id].vc.clone();
            join_vc(&mut st.threads[me].vc, &vc);
            return;
        }
        st.threads[me].waiting_on = Some(format!("{what}({id})"));
        block_here(&ctx, st, me);
    }
}

fn unlock_exclusive(id: usize) {
    let (ctx, me) = ctx();
    let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
    if st.abort {
        if std::thread::panicking() {
            return; // guard drop during an abort unwind
        }
        drop(st);
        abort_now();
    }
    st.locks[id].owner = NO_THREAD;
    let mine = st.threads[me].vc.clone();
    join_vc(&mut st.locks[id].vc, &mine);
    let e = st.threads[me].vc.len().max(me + 1);
    st.threads[me].vc.resize(e, 0);
    st.threads[me].vc[me] += 1;
    wake_lock_waiters(&mut st, id);
    ctx.cv.notify_all();
}

fn lock_shared(id: usize) {
    let (ctx, me) = ctx();
    loop {
        visible_op(|_, _| {});
        let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.abort {
            drop(st);
            abort_now();
        }
        if st.locks[id].owner == NO_THREAD {
            st.locks[id].readers.push(me);
            let vc = st.locks[id].vc.clone();
            join_vc(&mut st.threads[me].vc, &vc);
            return;
        }
        st.threads[me].waiting_on = Some(format!("rwlock-read({id})"));
        block_here(&ctx, st, me);
    }
}

fn unlock_shared(id: usize) {
    let (ctx, me) = ctx();
    let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
    if st.abort {
        if std::thread::panicking() {
            return;
        }
        drop(st);
        abort_now();
    }
    st.locks[id].readers.retain(|&t| t != me);
    let mine = st.threads[me].vc.clone();
    join_vc(&mut st.locks[id].vc, &mine);
    let e = st.threads[me].vc.len().max(me + 1);
    st.threads[me].vc.resize(e, 0);
    st.threads[me].vc[me] += 1;
    wake_lock_waiters(&mut st, id);
    ctx.cv.notify_all();
}

fn wake_lock_waiters(st: &mut SchedState, id: usize) {
    let keys = [
        format!("mutex({id})"),
        format!("rwlock-write({id})"),
        format!("rwlock-read({id})"),
    ];
    for t in 0..st.threads.len() {
        if st.threads[t].status == Status::Blocked
            && st.threads[t]
                .waiting_on
                .as_deref()
                .is_some_and(|w| keys.iter().any(|k| k == w))
        {
            st.threads[t].status = Status::Ready;
        }
    }
}

/// Model-checked mutual-exclusion lock (parking_lot-shaped API).
pub struct Mutex<T> {
    id: usize,
    // SHARED: data — guarded by the modeled lock; accessed only through
    // guards handed out while `owner == me`, never concurrently.
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` requires holding the modeled lock, and the
// scheduler serializes model threads.
unsafe impl<T: Send> Sync for Mutex<T> {}
// SAFETY: the mutex owns its value.
unsafe impl<T: Send> Send for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(v: T) -> Mutex<T> {
        Mutex {
            id: new_lock(),
            data: UnsafeCell::new(v),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_exclusive(self.id, "mutex");
        MutexGuard { m: self }
    }
}

/// Guard for [`Mutex`]; unlocks (a visible operation) on drop.
pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence == lock held; see Mutex.
        unsafe { &*self.m.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence == exclusive lock held; see Mutex.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        unlock_exclusive(self.m.id);
    }
}

/// Model-checked reader-writer lock (parking_lot-shaped API).
pub struct RwLock<T> {
    id: usize,
    // SHARED: data — guarded by the modeled lock: shared by readers,
    // exclusive to the writer, never mixed.
    data: UnsafeCell<T>,
}

// SAFETY: see Mutex — guarded access only, serialized scheduler.
unsafe impl<T: Send + Sync> Sync for RwLock<T> {}
// SAFETY: the lock owns its value.
unsafe impl<T: Send> Send for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(v: T) -> RwLock<T> {
        RwLock {
            id: new_lock(),
            data: UnsafeCell::new(v),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        lock_shared(self.id);
        RwLockReadGuard { l: self }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        lock_exclusive(self.id, "rwlock-write");
        RwLockWriteGuard { l: self }
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    l: &'a RwLock<T>,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: read guard held — no writer can hold the lock.
        unsafe { &*self.l.data.get() }
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        unlock_shared(self.l.id);
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    l: &'a RwLock<T>,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: write guard held — exclusive.
        unsafe { &*self.l.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: write guard held — exclusive.
        unsafe { &mut *self.l.data.get() }
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        unlock_exclusive(self.l.id);
    }
}

/// Model condition variable. `wait` releases the lock, yields, and
/// re-acquires — i.e. every wakeup is spurious, which over-approximates
/// real condvar behavior (models must re-check their predicate, exactly as
/// correct condvar code does).
pub struct Condvar;

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Condvar {
        Condvar
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let id = guard.m.id;
        unlock_exclusive(id);
        thread_yield();
        lock_exclusive(id, "mutex");
    }

    pub fn notify_one(&self) {
        thread_yield();
    }

    pub fn notify_all(&self) {
        thread_yield();
    }
}

// ---------------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------------

/// Explores every interleaving of `f` under [`Config::default`].
pub fn explore(f: impl Fn() + Send + Sync + 'static) -> Result<Stats, Violation> {
    explore_seeded(Config::default(), f)
}

/// Explores every interleaving of `f` (bounded preemption, seeded
/// deterministic order). Returns the first violation found — invariant
/// panic, data race, or deadlock — with its replayable trace.
pub fn explore_seeded(
    cfg: Config,
    f: impl Fn() + Send + Sync + 'static,
) -> Result<Stats, Violation> {
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut path: Vec<Node> = Vec::new();
    let mut stats = Stats {
        schedules: 0,
        complete: true,
        max_depth: 0,
    };
    loop {
        stats.schedules += 1;
        let (outcome, new_path, depth) = run_once(&cfg, &f, path);
        path = new_path;
        stats.max_depth = stats.max_depth.max(depth);
        if let Some(v) = outcome {
            return Err(Violation {
                message: v.0,
                trace: v.1,
                schedule: stats.schedules,
                seed: cfg.seed,
            });
        }
        if cfg.replay.is_some() {
            return Ok(stats); // replay mode runs exactly one schedule
        }
        if !backtrack(&mut path) {
            return Ok(stats);
        }
        if stats.schedules >= cfg.max_schedules {
            stats.complete = false;
            return Ok(stats);
        }
    }
}

/// Advances the DFS: bumps the deepest non-exhausted decision, dropping
/// exhausted suffixes. False when the space is exhausted.
fn backtrack(path: &mut Vec<Node>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.pick + 1 < last.n {
            last.pick += 1;
            return true;
        }
        path.pop();
    }
    false
}

type RunOutcome = (Option<(String, Vec<usize>)>, Vec<Node>, usize);

fn run_once(cfg: &Config, f: &Arc<dyn Fn() + Send + Sync>, path: Vec<Node>) -> RunOutcome {
    let ctx = Arc::new(Ctx {
        st: StdMutex::new(SchedState {
            active: 0,
            threads: vec![ThreadState {
                status: Status::Ready,
                vc: vec![1],
                seen: BTreeMap::new(),
                waiting_on: None,
            }],
            locs: Vec::new(),
            cells: Vec::new(),
            locks: Vec::new(),
            preemptions: 0,
            preemption_bound: cfg.preemption_bound,
            seed: cfg.seed,
            path,
            depth: 0,
            resolved: Vec::new(),
            replay: cfg.replay.clone(),
            abort: false,
            violation: None,
        }),
        cv: StdCondvar::new(),
        handles: StdMutex::new(Vec::new()),
    });

    // Root thread (tid 0) runs the model body; it may spawn more.
    let f = Arc::clone(f);
    let root = run_thread(&ctx, 0, move || f());
    ctx.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(root);

    // Wait for the whole thread tree to finish (spawn pushes handles as it
    // goes; all threads are Finished before the last handle returns).
    {
        let mut st = ctx.st.lock().unwrap_or_else(|e| e.into_inner());
        while !st.all_finished() {
            st = ctx.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    loop {
        let h = ctx.handles.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match h {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }

    // All threads exited, so every `Arc<Ctx>` clone (thread-locals, thread
    // closures) is gone and the state can move out of its mutex. Poisoning
    // is expected: a violating model thread panics by design.
    let ctx = match Arc::try_unwrap(ctx) {
        Ok(c) => c,
        Err(_) => unreachable!("all model threads joined, no Ctx clones can remain"),
    };
    let mut st = ctx.st.into_inner().unwrap_or_else(|e| e.into_inner());
    let depth = st.depth;
    let outcome = st
        .violation
        .take()
        .map(|msg| (msg, std::mem::take(&mut st.resolved)));
    (outcome, st.path, depth)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic message passing: Release/Acquire makes the data write
    /// visible; the explorer must find no violation anywhere.
    #[test]
    fn message_passing_release_acquire_is_clean() {
        let stats = explore(|| {
            let data = Arc::new(MCell::new("data", 0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let (d, fl) = (Arc::clone(&data), Arc::clone(&flag));
            let t = spawn(move || {
                d.write(42);
                fl.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.read(), 42, "acquire saw the flag but not the data");
            }
            t.join();
        })
        .expect("release/acquire message passing must be clean");
        assert!(stats.complete, "space must be exhausted: {stats:?}");
        assert!(stats.schedules > 1, "must explore >1 interleaving");
    }

    /// The same protocol with the publisher's store weakened to Relaxed
    /// must be caught as a data race on `data`.
    #[test]
    fn message_passing_relaxed_store_races() {
        let v = explore(|| {
            let data = Arc::new(MCell::new("data", 0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let (d, fl) = (Arc::clone(&data), Arc::clone(&flag));
            let t = spawn(move || {
                d.write(42);
                fl.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                let _ = data.read();
            }
            t.join();
        })
        .expect_err("relaxed publish must race");
        assert!(v.message.contains("data race"), "{v}");
    }

    /// A Relaxed load may legitimately observe a stale value even after
    /// the store ran first in wall-clock order — the view semantics must
    /// expose that schedule.
    #[test]
    fn relaxed_load_can_be_stale() {
        let v = explore(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let fl = Arc::clone(&flag);
            let t = spawn(move || {
                fl.store(1, Ordering::Relaxed);
                fl.store(2, Ordering::Relaxed);
            });
            t.join();
            // After join the writes happened, but only joining the clock —
            // not the coherence floor — would let 0 be read. The model
            // propagates `seen` through join, so 2 is forced here…
            let seen = flag.load(Ordering::Relaxed);
            assert_eq!(seen, 2, "post-join load saw {seen}");
        });
        assert!(v.is_ok(), "join must carry the coherence floor: {v:?}");
    }

    /// AB/BA lock order must be reported as a deadlock.
    #[test]
    fn lock_order_inversion_deadlocks() {
        let v = explore(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            t.join();
        })
        .expect_err("AB/BA must deadlock in some schedule");
        assert!(v.message.contains("deadlock"), "{v}");
    }

    /// Same seed ⇒ identical failing schedule and trace (determinism).
    #[test]
    fn violations_replay_deterministically() {
        let body = || {
            let c = Arc::new(MCell::new("cell", 0u32));
            let c2 = Arc::clone(&c);
            let t = spawn(move || c2.write(1));
            c.write(2); // unsynchronized write/write race
            t.join();
        };
        let cfg = Config {
            seed: 7,
            ..Config::default()
        };
        let v1 = explore_seeded(cfg.clone(), body).expect_err("racy");
        let v2 = explore_seeded(cfg.clone(), body).expect_err("racy");
        assert_eq!(v1.trace, v2.trace);
        assert_eq!(v1.schedule, v2.schedule);
        // And the recorded trace replays to the same failure.
        let replay = Config {
            replay: Some(v1.trace.clone()),
            ..cfg
        };
        let vr = explore_seeded(replay, body).expect_err("replay hits the race");
        assert_eq!(vr.message, v1.message);
    }

    /// Lost-update: two Relaxed RMWs never lose increments (modification
    /// order), but plain load+store does in some schedule.
    #[test]
    fn rmw_atomicity_vs_load_store() {
        let ok = explore(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            // ordering: Relaxed — RMW atomicity is what's under test.
            let t = spawn(move || {
                n2.fetch_add(1, Ordering::Relaxed);
            });
            n.fetch_add(1, Ordering::Relaxed);
            t.join();
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
        assert!(ok.is_ok(), "atomic RMWs cannot lose updates: {ok:?}");

        let v = explore(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            // ordering: Relaxed — the lost-update bug is the point.
            let t = spawn(move || {
                let x = n2.load(Ordering::Relaxed);
                n2.store(x + 1, Ordering::Relaxed);
            });
            let x = n.load(Ordering::Relaxed);
            n.store(x + 1, Ordering::Relaxed);
            t.join();
            assert_eq!(n.load(Ordering::Relaxed), 2, "lost update");
        })
        .expect_err("load+store increment must lose an update in some schedule");
        assert!(v.message.contains("lost update"), "{v}");
    }
}
