//! `hcc-lint`: the workspace invariant checker.
//!
//! The correctness of HCC-MF's hot paths rests on contracts the compiler
//! cannot see: Hogwild kernels and telemetry rings document *why* their
//! `unsafe` is sound, lock-free structures choose specific memory
//! orderings, and library crates promise typed errors instead of panics.
//! This crate turns those comment-level contracts into CI-enforced rules
//! (R1–R5, see [`rules`]) with a reasoned escape hatch
//! ([`allow`], `lint-allow.toml` at the workspace root).
//!
//! Run locally with `cargo run -p hcc-lint -- --deny`; see DESIGN.md §11
//! for the full policy.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod allow;
pub mod rules;
pub mod source;
pub mod workspace;

pub use allow::Allowlist;
pub use rules::Violation;
pub use workspace::{run, Report};
