//! `hcc-lint`: the workspace invariant checker.
//!
//! The correctness of HCC-MF's hot paths rests on contracts the compiler
//! cannot see: Hogwild kernels and telemetry rings document *why* their
//! `unsafe` is sound, lock-free structures choose specific memory
//! orderings, and library crates promise typed errors instead of panics.
//! This crate turns those comment-level contracts into CI-enforced rules
//! (R1–R8, see [`rules`]) with a reasoned escape hatch
//! ([`allow`], `lint-allow.toml` at the workspace root). R8 (SeqCst /
//! `static mut`) has no escape hatch, and R6 resolves Release/Acquire
//! pairs across files within each crate.
//!
//! Run locally with `cargo run -p hcc-lint -- --deny` (stage 1 of
//! `hcc-check` runs the same scan plus the `hcc-sync` routing guard); see
//! DESIGN.md §11 and §15 for the full policy.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod allow;
pub mod rules;
pub mod source;
pub mod workspace;

pub use allow::Allowlist;
pub use rules::Violation;
pub use workspace::{run, Report};
