//! Workspace discovery and the all-rules driver.

use crate::allow::Allowlist;
use crate::rules::{self, Violation};
use crate::source;
use std::fs;
use std::path::{Path, PathBuf};

/// Everything one lint run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the allowlist.
    pub violations: Vec<Violation>,
    /// Violations an allowlist entry suppressed (shown with `--verbose`).
    pub suppressed: Vec<Violation>,
    /// Source files scanned.
    pub files_scanned: usize,
}

/// Runs every rule over the workspace at `root`, applying `allow`.
///
/// Scans `crates/*/src/**/*.rs` (R1–R3, R7, R8 plus R4 on each `lib.rs`,
/// with the cross-file R6 pairing judged once per crate) and `Cargo.lock`
/// against the package names found under `crates/` and `vendor/` (R5).
/// Allowlist config errors, entries pointing at files that no longer
/// exist, and stale entries are appended as `CFG` violations — a broken
/// escape hatch must fail the build, not widen it.
pub fn run(root: &Path, allow: &Allowlist) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut raw = Vec::new();

    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        // R6 is judged per crate: both halves of a Release/Acquire pair
        // may live in different files, but never in different crates.
        let mut crate_ops = Vec::new();
        for file in rust_files(&src)? {
            let text = fs::read_to_string(&file)?;
            let rel = rel_path(root, &file);
            let lines = source::lex(&text);
            let raw_lines: Vec<&str> = text.lines().collect();
            raw.extend(rules::check_file(&rel, &lines, &raw_lines));
            crate_ops.extend(rules::collect_atomic_ops(&rel, &lines, &raw_lines));
            report.files_scanned += 1;
            if file.file_name().is_some_and(|n| n == "lib.rs")
                && file.parent() == Some(src.as_path())
            {
                raw.extend(rules::check_crate_root(&rel, &text));
            }
        }
        raw.extend(rules::check_release_acquire_pairing(&crate_ops));
    }

    let lock = root.join("Cargo.lock");
    if lock.is_file() {
        let known = package_names(root)?;
        raw.extend(rules::check_lockfile(&fs::read_to_string(lock)?, &known));
    }

    for v in raw {
        if allow.suppresses(v.rule, &v.path, &v.line_text) {
            report.suppressed.push(v);
        } else {
            report.violations.push(v);
        }
    }

    for (line, msg) in &allow.errors {
        report.violations.push(Violation {
            rule: "CFG",
            path: "lint-allow.toml".into(),
            line: *line,
            message: msg.clone(),
            line_text: String::new(),
        });
    }
    for entry in &allow.entries {
        if !entry.path.is_empty() && !root.join(&entry.path).is_file() {
            report.violations.push(Violation {
                rule: "CFG",
                path: "lint-allow.toml".into(),
                line: entry.decl_line,
                message: format!(
                    "allowlist entry (rule {}) points at `{}` which no longer exists — \
                     remove the entry",
                    entry.rule, entry.path
                ),
                line_text: String::new(),
            });
        } else if !entry.used() {
            report.violations.push(Violation {
                rule: "CFG",
                path: "lint-allow.toml".into(),
                line: entry.decl_line,
                message: format!(
                    "stale allowlist entry (rule {}, path `{}`) matches nothing — remove it",
                    entry.rule, entry.path
                ),
                line_text: String::new(),
            });
        }
    }

    report
        .violations
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(report)
}

/// Package names declared by `crates/*/Cargo.toml` and `vendor/*/Cargo.toml`.
pub fn package_names(root: &Path) -> std::io::Result<Vec<String>> {
    let mut names = Vec::new();
    for base in ["crates", "vendor"] {
        for dir in sorted_dirs(&root.join(base))? {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(manifest) {
                if let Some(name) = manifest_package_name(&text) {
                    names.push(name);
                }
            }
        }
    }
    Ok(names)
}

fn manifest_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(v) = line.strip_prefix("name = ") {
                return Some(v.trim_matches('"').to_string());
            }
        }
    }
    None
}

fn sorted_dirs(parent: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut dirs = Vec::new();
    if !parent.is_dir() {
        return Ok(dirs);
    }
    for entry in fs::read_dir(parent)? {
        let path = entry?.path();
        if path.is_dir() {
            dirs.push(path);
        }
    }
    dirs.sort();
    Ok(dirs)
}

fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}
