//! CLI for the workspace invariant checker.
//!
//! ```text
//! cargo run -p hcc-lint -- [--deny] [--root DIR] [--allow FILE] [--verbose]
//! ```
//!
//! Prints one line per violation plus a summary. `--deny` exits nonzero
//! when any unsuppressed violation remains (the CI mode); without it the
//! run is report-only so a dirty tree can still be explored.

#![deny(unsafe_op_in_unsafe_fn)]

use hcc_lint::{Allowlist, Report};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut verbose = false;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--verbose" => verbose = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "hcc-lint: workspace invariant checker (R1 SAFETY comments, R2 atomic \
                     orderings, R3 panic-free library code, R4 unsafe_op_in_unsafe_fn, R5 \
                     vendored deps, R6 Release/Acquire pairing, R7 SHARED cell annotations, \
                     R8 SeqCst + static mut ban)\n\n\
                     USAGE: hcc-lint [--deny] [--root DIR] [--allow FILE] [--verbose]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hcc-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("hcc-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let allow_file = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));
    let allow = match std::fs::read_to_string(&allow_file) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(), // no allowlist = nothing suppressed
    };

    let report = match hcc_lint::run(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hcc-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    print_report(&report, verbose);

    if deny && !report.violations.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(report: &Report, verbose: bool) {
    for v in &report.violations {
        println!("{v}");
    }
    if verbose {
        for v in &report.suppressed {
            println!("(suppressed) {v}");
        }
    }
    println!(
        "hcc-lint: {} file(s) scanned, {} violation(s), {} suppressed by lint-allow.toml",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    );
}

/// Walks up from the current directory to the first dir holding both a
/// `Cargo.toml` and a `crates/` dir.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir: PathBuf = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !pop(&mut dir) {
            return None;
        }
    }
}

fn pop(dir: &mut PathBuf) -> bool {
    let parent: Option<&Path> = dir.parent();
    match parent {
        Some(p) => {
            let p = p.to_path_buf();
            *dir = p;
            true
        }
        None => false,
    }
}
