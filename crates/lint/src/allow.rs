//! `lint-allow.toml`: the checked-in escape hatch.
//!
//! Every suppression is an explicit `[[allow]]` entry carrying a written
//! reason; entries that stop matching anything are themselves reported so
//! the file can only shrink as the tree gets cleaner. The parser covers
//! exactly the TOML subset the file uses (array-of-tables with string
//! values) — a third-party TOML crate would defeat the linter's
//! zero-dependency constraint.

use std::cell::Cell;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`R1`…`R7`; `R8` entries are config
    /// errors — that rule has no escape hatch).
    pub rule: String,
    /// Workspace-relative path (forward slashes); empty = any file.
    pub path: String,
    /// Substring the violating source line must contain; empty = any line
    /// in `path`.
    pub contains: String,
    /// Why the violation is acceptable. Required, never empty.
    pub reason: String,
    /// Declaration line in lint-allow.toml (for diagnostics).
    pub decl_line: usize,
    used: Cell<bool>,
}

impl AllowEntry {
    /// Whether this entry suppresses a violation of `rule` at `path` whose
    /// source line is `line_text`. Marks the entry used on match.
    pub fn matches(&self, rule: &str, path: &str, line_text: &str) -> bool {
        let hit = self.rule == rule
            && (self.path.is_empty() || self.path == path)
            && (self.contains.is_empty() || line_text.contains(&self.contains));
        if hit {
            self.used.set(true);
        }
        hit
    }

    pub fn used(&self) -> bool {
        self.used.get()
    }
}

/// Parsed allowlist plus any config errors found while parsing (reported
/// as violations so a malformed allowlist can't silently allow things).
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    /// `(line, message)` pairs for malformed content.
    pub errors: Vec<(usize, String)>,
}

impl Allowlist {
    /// Parses the `[[allow]]` subset of TOML. Unknown keys, missing
    /// reasons, and unknown rule ids become [`Allowlist::errors`].
    pub fn parse(text: &str) -> Allowlist {
        let mut list = Allowlist::default();
        let mut current: Option<AllowEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                list.finish(current.take());
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    contains: String::new(),
                    reason: String::new(),
                    decl_line: line_no,
                    used: Cell::new(false),
                });
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                list.errors
                    .push((line_no, format!("unparseable line: `{line}`")));
                continue;
            };
            let Some(entry) = current.as_mut() else {
                list.errors
                    .push((line_no, "key outside any [[allow]] entry".into()));
                continue;
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = value,
                "reason" => entry.reason = value,
                other => list
                    .errors
                    .push((line_no, format!("unknown key `{other}`"))),
            }
        }
        list.finish(current.take());
        list
    }

    fn finish(&mut self, entry: Option<AllowEntry>) {
        let Some(entry) = entry else { return };
        if entry.rule == "R8" {
            // Rejected outright, not just flagged: the entry never reaches
            // `entries`, so it cannot suppress anything.
            self.errors.push((
                entry.decl_line,
                "R8 (SeqCst / static mut) is not allowlistable — fix the code instead".into(),
            ));
            return;
        }
        if !matches!(
            entry.rule.as_str(),
            "R1" | "R2" | "R3" | "R4" | "R5" | "R6" | "R7"
        ) {
            self.errors.push((
                entry.decl_line,
                format!("entry has unknown rule `{}`", entry.rule),
            ));
        }
        if entry.reason.trim().is_empty() {
            self.errors.push((
                entry.decl_line,
                "entry has no reason — every suppression must say why".into(),
            ));
        }
        self.entries.push(entry);
    }

    /// True when some entry suppresses the violation (marks it used).
    pub fn suppresses(&self, rule: &str, path: &str, line_text: &str) -> bool {
        // `.any()` would short-circuit and leave later matching entries
        // unmarked, falsely reporting them stale; evaluate all.
        let mut hit = false;
        for e in &self.entries {
            hit |= e.matches(rule, path, line_text);
        }
        hit
    }
}

/// `key = "value"` (string values only, `#` comments after the value).
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let rest = rest.strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => value.push(chars.next()?),
            '"' => {
                let tail = chars.as_str().trim();
                if !tail.is_empty() && !tail.starts_with('#') {
                    return None;
                }
                return Some((key.trim(), value));
            }
            _ => value.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[[allow]]
rule = "R3"
path = "crates/core/src/cli.rs"
contains = "expect("
reason = "CLI bootstrap aborts with a usage message"

[[allow]]
rule = "R9"
reason = "bad rule id"

[[allow]]
rule = "R2"
path = "crates/x.rs"
reason = ""
"##;

    #[test]
    fn parses_entries_and_flags_errors() {
        let list = Allowlist::parse(SAMPLE);
        assert_eq!(list.entries.len(), 3);
        assert_eq!(list.entries[0].rule, "R3");
        assert_eq!(list.entries[0].contains, "expect(");
        // One unknown rule id, one empty reason.
        assert_eq!(list.errors.len(), 2, "{:?}", list.errors);
    }

    #[test]
    fn r8_entries_are_rejected_r6_r7_accepted() {
        let text = "[[allow]]\nrule = \"R8\"\nreason = \"please let me SeqCst\"\n\n\
                    [[allow]]\nrule = \"R6\"\npath = \"crates/x/src/lib.rs\"\nreason = \"half \
                    the pair lives behind a cfg gate\"\n\n\
                    [[allow]]\nrule = \"R7\"\npath = \"crates/x/src/lib.rs\"\nreason = \"FFI \
                    pointer, not a shared cell\"\n";
        let list = Allowlist::parse(text);
        assert_eq!(
            list.entries.len(),
            2,
            "the R8 entry must be rejected outright"
        );
        assert!(list.entries.iter().all(|e| e.rule != "R8"));
        assert_eq!(list.errors.len(), 1, "{:?}", list.errors);
        assert!(list.errors[0].1.contains("not allowlistable"));
    }

    #[test]
    fn suppression_requires_rule_path_and_substring() {
        let list = Allowlist::parse(SAMPLE);
        assert!(list.suppresses("R3", "crates/core/src/cli.rs", "x.expect(\"usage\")"));
        assert!(!list.suppresses("R3", "crates/core/src/cli.rs", "x.unwrap()"));
        assert!(!list.suppresses("R3", "crates/core/src/train.rs", "x.expect(\"u\")"));
        assert!(list.entries[0].used());
        assert!(!list.entries[2].used());
    }
}
