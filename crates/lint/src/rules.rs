//! The five workspace invariants.
//!
//! | Rule | Contract |
//! |------|----------|
//! | R1 | every non-test `unsafe` site carries a `SAFETY:` argument |
//! | R2 | every non-test atomic op carries an `// ordering:` justification; `SeqCst` additionally needs an allowlist entry or a downgrade |
//! | R3 | no `unwrap()` / `expect()` / `panic!` in library code of the error-disciplined crates (typed `HccError` instead, or an allowlisted infallibility argument) |
//! | R4 | every crate root sets `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | R5 | every `Cargo.lock` package resolves to the workspace or `vendor/` |
//!
//! R1–R3 run on the lexed lines from [`crate::source`]; test regions are
//! exempt (asserting in tests is the point of tests). R3 additionally
//! skips `src/bin/`: a binary's `main` may abort with a message, the
//! *library* surface must return typed errors.

use crate::source::Line;

/// Crates whose library code must stay panic-free (R3). These carry the
/// typed `HccError`/`CommError`/`ServeError` taxonomies; the remaining
/// crates (baselines, bench, hetsim, sparse internals) are experiment
/// drivers where abort-on-bug is acceptable.
pub const R3_CRATES: &[&str] = &["sgd", "comm", "core", "serve", "telemetry", "partition"];

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `R1`…`R5`, or `CFG` for lint-configuration problems.
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-indexed line number (0 for whole-file findings).
    pub line: usize,
    pub message: String,
    /// Raw source line text (what allowlist `contains` matches against).
    pub line_text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Runs R1–R3 over one lexed file. `raw_lines` are the original source
/// lines (for allowlist matching and diagnostics).
pub fn check_file(path: &str, lines: &[Line], raw_lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    check_unsafe_comments(path, lines, raw_lines, &mut out);
    check_atomic_orderings(path, lines, raw_lines, &mut out);
    if r3_applies(path) {
        check_panic_freedom(path, lines, raw_lines, &mut out);
    }
    out
}

/// R4 over a crate root's source text.
pub fn check_crate_root(path: &str, source: &str) -> Vec<Violation> {
    let lines = crate::source::lex(source);
    let has_deny = lines.iter().any(|l| {
        let code: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        code.contains("#![deny(unsafe_op_in_unsafe_fn)]")
            || code.contains("#![forbid(unsafe_op_in_unsafe_fn)]")
    });
    if has_deny {
        Vec::new()
    } else {
        vec![Violation {
            rule: "R4",
            path: path.to_string(),
            line: 1,
            message: "crate root must set #![deny(unsafe_op_in_unsafe_fn)]".into(),
            line_text: String::new(),
        }]
    }
}

/// R5: every `[[package]]` in `Cargo.lock` must be a workspace or vendor
/// crate (`known_names`) and must not name a registry `source`.
pub fn check_lockfile(lock_text: &str, known_names: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut name: Option<(String, usize)> = None;
    let flush = |name: &mut Option<(String, usize)>, out: &mut Vec<Violation>| {
        if let Some((n, line)) = name.take() {
            if !known_names.contains(&n) {
                out.push(Violation {
                    rule: "R5",
                    path: "Cargo.lock".into(),
                    line,
                    message: format!("package `{n}` resolves to neither the workspace nor vendor/"),
                    line_text: format!("name = \"{n}\""),
                });
            }
        }
    };
    for (idx, raw) in lock_text.lines().enumerate() {
        let line = raw.trim();
        if line == "[[package]]" {
            flush(&mut name, &mut out);
        } else if let Some(v) = line.strip_prefix("name = ") {
            name = Some((v.trim_matches('"').to_string(), idx + 1));
        } else if let Some(v) = line.strip_prefix("source = ") {
            let n = name
                .as_ref()
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| "<unnamed>".into());
            out.push(Violation {
                rule: "R5",
                path: "Cargo.lock".into(),
                line: idx + 1,
                message: format!(
                    "package `{n}` pulls from external source {} — vendor it",
                    v.trim_matches('"')
                ),
                line_text: line.to_string(),
            });
        }
    }
    flush(&mut name, &mut out);
    out
}

fn r3_applies(path: &str) -> bool {
    R3_CRATES.iter().any(|c| {
        path.strip_prefix(&format!("crates/{c}/src/"))
            .is_some_and(|rest| !rest.starts_with("bin/"))
    })
}

// ---- R1 ----------------------------------------------------------------

fn check_unsafe_comments(path: &str, lines: &[Line], raw_lines: &[&str], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !has_word(&line.code, "unsafe") {
            continue;
        }
        if !justified(lines, idx, &["SAFETY:", "# Safety"], |l| {
            has_word(&l.code, "unsafe")
        }) {
            out.push(Violation {
                rule: "R1",
                path: path.to_string(),
                line: idx + 1,
                message: "`unsafe` without an immediately preceding `// SAFETY:` argument".into(),
                line_text: raw_text(raw_lines, idx),
            });
        }
    }
}

// ---- R2 ----------------------------------------------------------------

const ATOMIC_METHODS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".fetch_",
    ".compare_exchange",
    "fence(",
];

fn is_atomic_line(line: &Line) -> bool {
    line.code.contains("Ordering::") && ATOMIC_METHODS.iter().any(|m| line.code.contains(m))
}

fn check_atomic_orderings(
    path: &str,
    lines: &[Line],
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !is_atomic_line(line) {
            continue;
        }
        if line.code.contains("Ordering::SeqCst") {
            out.push(Violation {
                rule: "R2",
                path: path.to_string(),
                line: idx + 1,
                message: "SeqCst ordering: downgrade to the weakest sufficient ordering, or \
                          justify it with a lint-allow.toml entry"
                    .into(),
                line_text: raw_text(raw_lines, idx),
            });
            continue;
        }
        if !justified(lines, idx, &["ordering:"], is_atomic_line) {
            out.push(Violation {
                rule: "R2",
                path: path.to_string(),
                line: idx + 1,
                message: "atomic operation without an `// ordering:` justification on the same \
                          or a preceding line"
                    .into(),
                line_text: raw_text(raw_lines, idx),
            });
        }
    }
}

// ---- R3 ----------------------------------------------------------------

fn check_panic_freedom(path: &str, lines: &[Line], raw_lines: &[&str], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, what) in [
            (".unwrap()", "unwrap()"),
            (".expect(", "expect()"),
            ("panic!", "panic!"),
        ] {
            let hit = if needle == "panic!" {
                has_word(&line.code, "panic")
                    && line.code.contains("panic!")
                    && !line.code.contains("debug_assert")
            } else {
                line.code.contains(needle)
            };
            if hit {
                out.push(Violation {
                    rule: "R3",
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{what} in library code — return a typed error, or allowlist with a \
                         written infallibility argument"
                    ),
                    line_text: raw_text(raw_lines, idx),
                });
            }
        }
    }
}

// ---- shared helpers ----------------------------------------------------

fn raw_text(raw_lines: &[&str], idx: usize) -> String {
    raw_lines
        .get(idx)
        .map(|s| s.to_string())
        .unwrap_or_default()
}

/// Token search that won't match inside identifiers
/// (`unsafe_op_in_unsafe_fn` does not contain the word `unsafe`).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when line `idx` carries one of `needles` in a comment on the same
/// line, or on a preceding line reachable by walking up through comments,
/// attributes, unterminated statement continuations, and lines for which
/// `grouped` holds (so one justification can head a run of related
/// statements, e.g. a block of atomic loads).
fn justified(
    lines: &[Line],
    idx: usize,
    needles: &[&str],
    grouped: impl Fn(&Line) -> bool,
) -> bool {
    let hit = |l: &Line| needles.iter().any(|n| l.comment.contains(n));
    if hit(&lines[idx]) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        if hit(l) {
            return true;
        }
        let loop_header = code.ends_with('{')
            && ["for ", "while ", "loop", "for(", "while("]
                .iter()
                .any(|kw| code.starts_with(kw));
        let is_passthrough = code.is_empty() // comment-only or blank line
            || code.starts_with("#[")        // attribute
            || grouped(l)                    // same-kind statement run
            // A justification may sit just above the loop that repeats
            // the annotated operation.
            || loop_header
            // A line that doesn't end a statement/block is a continuation
            // of the statement we started on.
            || !(code.ends_with(';') || code.ends_with('{') || code.ends_with('}'));
        if !is_passthrough {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lex;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        let lines = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        check_file(path, &lines, &raw)
    }

    #[test]
    fn r1_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        let good = "// SAFETY: g has no preconditions here\nfn f() { unsafe { g() } }\n";
        let trailing = "fn f() { unsafe { g() } } // SAFETY: fine\n";
        assert_eq!(check("crates/sgd/src/x.rs", bad).len(), 1);
        assert!(check("crates/sgd/src/x.rs", good).is_empty());
        assert!(check("crates/sgd/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn r1_accepts_doc_safety_section_for_unsafe_fns() {
        let src =
            "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\npub unsafe fn f() {}\n";
        assert!(check("crates/sgd/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2_requires_ordering_comment_and_flags_seqcst() {
        let bad = "fn f(a: &A) { a.n.store(1, Ordering::Relaxed); }\n";
        let good = "fn f(a: &A) {\n    // ordering: Relaxed — stat counter\n    a.n.store(1, Ordering::Relaxed);\n}\n";
        let seqcst = "fn f(a: &A) {\n    // ordering: belt and braces\n    a.n.store(1, Ordering::SeqCst);\n}\n";
        assert_eq!(check("crates/comm/src/x.rs", bad).len(), 1);
        assert!(check("crates/comm/src/x.rs", good).is_empty());
        let v = check("crates/comm/src/x.rs", seqcst);
        assert_eq!(v.len(), 1, "SeqCst needs allowlist even with a comment");
        assert!(v[0].message.contains("SeqCst"));
    }

    #[test]
    fn r2_one_comment_heads_a_run_of_atomics() {
        let src = "fn f(a: &A) {\n    // ordering: Relaxed — cells are independent\n    let x = a.p.load(Ordering::Relaxed);\n    a.q.store(x, Ordering::Relaxed);\n}\n";
        assert!(check("crates/sgd/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_flags_panics_only_in_listed_crates_outside_tests_and_bins() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert_eq!(check("crates/core/src/x.rs", src).len(), 1);
        assert!(check("crates/baselines/src/x.rs", src).is_empty());
        assert!(check("crates/core/src/bin/hcc.rs", src).is_empty());
        let not_really = "fn f() { x.unwrap_or(3); no_panic(); }\n";
        assert!(check("crates/core/src/x.rs", not_really).is_empty());
    }

    #[test]
    fn r4_detects_missing_deny_attr() {
        assert_eq!(
            check_crate_root("crates/x/src/lib.rs", "//! doc\n").len(),
            1
        );
        assert!(check_crate_root(
            "crates/x/src/lib.rs",
            "//! doc\n#![deny(unsafe_op_in_unsafe_fn)]\n"
        )
        .is_empty());
    }

    #[test]
    fn r5_flags_external_sources_and_unknown_packages() {
        let lock = "[[package]]\nname = \"hcc-sgd\"\nversion = \"0.1.0\"\n\n[[package]]\nname = \"libc\"\nversion = \"0.2.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let known = vec!["hcc-sgd".to_string()];
        let v = check_lockfile(lock, &known);
        // libc: unknown package AND external source.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "R5"));
    }
}
