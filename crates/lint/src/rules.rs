//! The eight workspace invariants.
//!
//! | Rule | Contract |
//! |------|----------|
//! | R1 | every non-test `unsafe` site carries a `SAFETY:` argument |
//! | R2 | every non-test atomic op carries an `// ordering:` justification, and when the comment names orderings, at least one must match what the code uses |
//! | R3 | no `unwrap()` / `expect()` / `panic!` in library code of the error-disciplined crates (typed `HccError` instead, or an allowlisted infallibility argument) |
//! | R4 | every crate root sets `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | R5 | every `Cargo.lock` package resolves to the workspace or `vendor/` |
//! | R6 | every `Release` store of an atomic field pairs with ≥1 `Acquire`/`AcqRel` load of the same field in the same crate (and vice versa) — resolved across files |
//! | R7 | every raw-pointer / `UnsafeCell` region carries a `SHARED:` comment naming the shared cells it touches; the named cells must be atomics, lock-protected, or documented single-writer |
//! | R8 | no `SeqCst` and no `static mut`, ever — not allowlistable |
//!
//! R1–R3 and R7–R8 run on the lexed lines from [`crate::source`]; test
//! regions are exempt (asserting in tests is the point of tests). R3
//! additionally skips `src/bin/`: a binary's `main` may abort with a
//! message, the *library* surface must return typed errors. R6 is a
//! cross-file protocol rule: [`collect_atomic_ops`] gathers the per-file
//! evidence and [`check_release_acquire_pairing`] judges each crate.

use crate::source::Line;

/// Crates whose library code must stay panic-free (R3). These carry the
/// typed `HccError`/`CommError`/`ServeError` taxonomies; the remaining
/// crates (baselines, bench, hetsim, sparse internals) are experiment
/// drivers where abort-on-bug is acceptable.
pub const R3_CRATES: &[&str] = &["sgd", "comm", "core", "serve", "telemetry", "partition"];

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `R1`…`R5`, or `CFG` for lint-configuration problems.
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-indexed line number (0 for whole-file findings).
    pub line: usize,
    pub message: String,
    /// Raw source line text (what allowlist `contains` matches against).
    pub line_text: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Runs R1–R3 over one lexed file. `raw_lines` are the original source
/// lines (for allowlist matching and diagnostics).
pub fn check_file(path: &str, lines: &[Line], raw_lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    check_unsafe_comments(path, lines, raw_lines, &mut out);
    check_atomic_orderings(path, lines, raw_lines, &mut out);
    if r3_applies(path) {
        check_panic_freedom(path, lines, raw_lines, &mut out);
    }
    check_shared_cells(path, lines, raw_lines, &mut out);
    check_static_mut(path, lines, raw_lines, &mut out);
    out
}

/// R4 over a crate root's source text.
pub fn check_crate_root(path: &str, source: &str) -> Vec<Violation> {
    let lines = crate::source::lex(source);
    let has_deny = lines.iter().any(|l| {
        let code: String = l.code.chars().filter(|c| !c.is_whitespace()).collect();
        code.contains("#![deny(unsafe_op_in_unsafe_fn)]")
            || code.contains("#![forbid(unsafe_op_in_unsafe_fn)]")
    });
    if has_deny {
        Vec::new()
    } else {
        vec![Violation {
            rule: "R4",
            path: path.to_string(),
            line: 1,
            message: "crate root must set #![deny(unsafe_op_in_unsafe_fn)]".into(),
            line_text: String::new(),
        }]
    }
}

/// R5: every `[[package]]` in `Cargo.lock` must be a workspace or vendor
/// crate (`known_names`) and must not name a registry `source`.
pub fn check_lockfile(lock_text: &str, known_names: &[String]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut name: Option<(String, usize)> = None;
    let flush = |name: &mut Option<(String, usize)>, out: &mut Vec<Violation>| {
        if let Some((n, line)) = name.take() {
            if !known_names.contains(&n) {
                out.push(Violation {
                    rule: "R5",
                    path: "Cargo.lock".into(),
                    line,
                    message: format!("package `{n}` resolves to neither the workspace nor vendor/"),
                    line_text: format!("name = \"{n}\""),
                });
            }
        }
    };
    for (idx, raw) in lock_text.lines().enumerate() {
        let line = raw.trim();
        if line == "[[package]]" {
            flush(&mut name, &mut out);
        } else if let Some(v) = line.strip_prefix("name = ") {
            name = Some((v.trim_matches('"').to_string(), idx + 1));
        } else if let Some(v) = line.strip_prefix("source = ") {
            let n = name
                .as_ref()
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| "<unnamed>".into());
            out.push(Violation {
                rule: "R5",
                path: "Cargo.lock".into(),
                line: idx + 1,
                message: format!(
                    "package `{n}` pulls from external source {} — vendor it",
                    v.trim_matches('"')
                ),
                line_text: line.to_string(),
            });
        }
    }
    flush(&mut name, &mut out);
    out
}

fn r3_applies(path: &str) -> bool {
    R3_CRATES.iter().any(|c| {
        path.strip_prefix(&format!("crates/{c}/src/"))
            .is_some_and(|rest| !rest.starts_with("bin/"))
    })
}

// ---- R1 ----------------------------------------------------------------

fn check_unsafe_comments(path: &str, lines: &[Line], raw_lines: &[&str], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !has_word(&line.code, "unsafe") {
            continue;
        }
        if !justified(lines, idx, &["SAFETY:", "# Safety"], |l| {
            has_word(&l.code, "unsafe")
        }) {
            out.push(Violation {
                rule: "R1",
                path: path.to_string(),
                line: idx + 1,
                message: "`unsafe` without an immediately preceding `// SAFETY:` argument".into(),
                line_text: raw_text(raw_lines, idx),
            });
        }
    }
}

// ---- R2 ----------------------------------------------------------------

const ATOMIC_METHODS: &[&str] = &[
    ".load(",
    ".store(",
    ".swap(",
    ".fetch_",
    ".compare_exchange",
    "fence(",
];

fn is_atomic_line(line: &Line) -> bool {
    line.code.contains("Ordering::") && ATOMIC_METHODS.iter().any(|m| line.code.contains(m))
}

/// Ordering names R2 cross-checks between comment and code.
const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn orderings_named(text: &str) -> Vec<&'static str> {
    ORDERING_NAMES
        .iter()
        .filter(|n| has_word(text, n))
        .copied()
        .collect()
}

fn check_atomic_orderings(
    path: &str,
    lines: &[Line],
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !is_atomic_line(line) {
            continue;
        }
        if line.code.contains("Ordering::SeqCst") {
            out.push(Violation {
                rule: "R8",
                path: path.to_string(),
                line: idx + 1,
                message: "SeqCst ordering is banned: downgrade to the weakest sufficient \
                          ordering (R8 is not allowlistable)"
                    .into(),
                line_text: raw_text(raw_lines, idx),
            });
            continue;
        }
        match justification(lines, idx, &["ordering:"], is_atomic_line) {
            None => out.push(Violation {
                rule: "R2",
                path: path.to_string(),
                line: idx + 1,
                message: "atomic operation without an `// ordering:` justification on the same \
                          or a preceding line"
                    .into(),
                line_text: raw_text(raw_lines, idx),
            }),
            Some(comment) => {
                // A justification that names orderings must name the one the
                // code actually uses — a comment saying `Release` above a
                // Relaxed store documents a protocol the code doesn't run.
                let named = orderings_named(&comment);
                let used = orderings_named(&line.code);
                if !named.is_empty() && !named.iter().any(|n| used.contains(n)) {
                    out.push(Violation {
                        rule: "R2",
                        path: path.to_string(),
                        line: idx + 1,
                        message: format!(
                            "ordering comment names {} but the code uses {} — the \
                             justification no longer matches the operation",
                            named.join("/"),
                            used.join("/")
                        ),
                        line_text: raw_text(raw_lines, idx),
                    });
                }
            }
        }
    }
}

// ---- R6 ----------------------------------------------------------------

/// One atomic operation with synchronizing semantics, as evidence for the
/// crate-wide Release/Acquire pairing check.
#[derive(Debug, Clone)]
pub struct AtomicOp {
    pub path: String,
    /// 1-indexed source line.
    pub line: usize,
    pub line_text: String,
    /// Receiver field key: the final identifier of the receiver chain with
    /// index brackets stripped (`self.beats[i].store(..)` → `beats`).
    pub field: String,
    /// Publishes (Release or AcqRel store/RMW side).
    pub releases: bool,
    /// Consumes (Acquire or AcqRel load/RMW side).
    pub acquires: bool,
}

/// Gathers the R6 evidence from one lexed file: every non-test atomic op
/// carrying Release/Acquire/AcqRel semantics whose receiver field can be
/// named. `fence(..)` and free-standing calls without a receiver are
/// skipped — they have no field to pair on.
pub fn collect_atomic_ops(path: &str, lines: &[Line], raw_lines: &[&str]) -> Vec<AtomicOp> {
    let mut ops = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !is_atomic_line(line) || line.code.contains("Ordering::SeqCst") {
            continue;
        }
        let code = &line.code;
        let Some((method, pos)) = ATOMIC_METHODS
            .iter()
            .filter(|m| **m != "fence(")
            .filter_map(|m| code.find(*m).map(|p| (*m, p)))
            .min_by_key(|&(_, p)| p)
        else {
            continue;
        };
        let Some(field) = receiver_field(code, pos) else {
            continue;
        };
        let rel = has_word(code, "Release") || has_word(code, "AcqRel");
        let acq = has_word(code, "Acquire") || has_word(code, "AcqRel");
        let (releases, acquires) = match method {
            ".load(" => (false, acq),
            ".store(" => (rel, false),
            // RMWs read-modify-write: Release publishes, Acquire consumes,
            // AcqRel does both (and so pairs with its own kind).
            _ => (rel, acq),
        };
        if releases || acquires {
            ops.push(AtomicOp {
                path: path.to_string(),
                line: idx + 1,
                line_text: raw_text(raw_lines, idx),
                field,
                releases,
                acquires,
            });
        }
    }
    ops
}

/// R6 judgement over one crate's collected ops: every field written with
/// Release semantics must be read with Acquire semantics somewhere in the
/// crate, and vice versa. An unpaired side means the protocol's other half
/// is missing — or lives in another crate, which the rule deliberately
/// rejects (cross-crate protocols must keep both halves visible to one
/// reviewer; split them behind an API instead).
pub fn check_release_acquire_pairing(ops: &[AtomicOp]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut fields: Vec<&str> = ops.iter().map(|o| o.field.as_str()).collect();
    fields.sort_unstable();
    fields.dedup();
    for field in fields {
        let has_rel = ops.iter().any(|o| o.field == field && o.releases);
        let has_acq = ops.iter().any(|o| o.field == field && o.acquires);
        if has_rel && !has_acq {
            for o in ops.iter().filter(|o| o.field == field && o.releases) {
                out.push(Violation {
                    rule: "R6",
                    path: o.path.clone(),
                    line: o.line,
                    message: format!(
                        "Release store to `{field}` has no paired Acquire/AcqRel load of the \
                         same field in this crate — the publish edge dangles"
                    ),
                    line_text: o.line_text.clone(),
                });
            }
        }
        if has_acq && !has_rel {
            for o in ops.iter().filter(|o| o.field == field && o.acquires) {
                out.push(Violation {
                    rule: "R6",
                    path: o.path.clone(),
                    line: o.line,
                    message: format!(
                        "Acquire load of `{field}` has no paired Release/AcqRel store of the \
                         same field in this crate — nothing publishes what it consumes"
                    ),
                    line_text: o.line_text.clone(),
                });
            }
        }
    }
    out
}

/// Walks backwards from the method call at `pos` over the receiver chain
/// (identifiers, `.`, balanced `[..]` index groups) and returns the final
/// field identifier, or `None` when no receiver precedes the call.
fn receiver_field(code: &str, pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut i = pos;
    let start;
    loop {
        if i == 0 {
            start = 0;
            break;
        }
        let b = bytes[i - 1];
        if is_ident(b) || b == b'.' {
            i -= 1;
        } else if b == b']' {
            // Skip the balanced index group.
            let mut depth = 0usize;
            let mut j = i;
            loop {
                if j == 0 {
                    return None; // unbalanced — give up on this line
                }
                j -= 1;
                match bytes[j] {
                    b']' => depth += 1,
                    b'[' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i = j;
        } else {
            start = i;
            break;
        }
    }
    // Strip index groups so `beats[i]` keys as `beats`.
    let mut chain = String::new();
    let mut depth = 0usize;
    for c in code[start..pos].chars() {
        match c {
            '[' => depth += 1,
            ']' => depth = depth.saturating_sub(1),
            _ if depth == 0 => chain.push(c),
            _ => {}
        }
    }
    let field = chain.rsplit('.').find(|seg| {
        !seg.is_empty() && seg.bytes().all(is_ident) && !seg.bytes().all(|b| b.is_ascii_digit())
    })?;
    Some(field.to_string())
}

// ---- R7 ----------------------------------------------------------------

/// Tokens marking a type as a legitimately shared cell for R7: the comment
/// must name something declared with one of these (or documented as
/// `single-writer` in a nearby comment).
const SHARED_TYPE_TOKENS: &[&str] = &[
    "Atomic",
    "UnsafeCell",
    "MCell",
    "Mutex",
    "RwLock",
    "*mut",
    "*const",
];

fn is_raw_shared_line(line: &Line) -> bool {
    // Cast expressions (`x.add(j) as *const __m128i`) re-type a pointer the
    // region already holds; the annotation belongs where the pointer enters
    // the region — signatures, fields, bindings — so casts don't trigger.
    let code = line
        .code
        .replace("as *mut ", "as ")
        .replace("as *const ", "as ");
    code.contains("*mut ") || code.contains("*const ") || code.contains("UnsafeCell<")
}

/// True when `name` is declared or documented as a shared cell somewhere in
/// the file: a line using the identifier with an atomic / cell / lock /
/// raw-pointer type, or a comment documenting it as `single-writer`.
fn names_shared_cell(name: &str, lines: &[Line]) -> bool {
    lines.iter().any(|l| {
        (has_word(&l.code, name) && SHARED_TYPE_TOKENS.iter().any(|t| l.code.contains(t)))
            || (l.comment.contains("single-writer") && has_word(&l.comment, name))
    })
}

fn check_shared_cells(path: &str, lines: &[Line], raw_lines: &[&str], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || !is_raw_shared_line(line) {
            continue;
        }
        match justification(lines, idx, &["SHARED:"], is_raw_shared_line) {
            None => out.push(Violation {
                rule: "R7",
                path: path.to_string(),
                line: idx + 1,
                message: "raw-pointer / UnsafeCell region without a `// SHARED:` comment \
                          naming the shared cells it touches"
                    .into(),
                line_text: raw_text(raw_lines, idx),
            }),
            Some(comment) => {
                let after = comment.split("SHARED:").nth(1).unwrap_or("").to_string();
                let named_ok = idents_of(&after).any(|id| names_shared_cell(id, lines));
                if !named_ok {
                    out.push(Violation {
                        rule: "R7",
                        path: path.to_string(),
                        line: idx + 1,
                        message: "`SHARED:` comment names no recognizable shared cell — name \
                                  the atomics, cells, or documented single-writer fields the \
                                  region touches"
                            .into(),
                        line_text: raw_text(raw_lines, idx),
                    });
                }
            }
        }
    }
}

/// Identifier tokens of `text`, longest-first order of appearance.
fn idents_of(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| !s.is_empty() && !s.bytes().all(|b| b.is_ascii_digit()))
}

// ---- R8 (static mut half; the SeqCst half lives in R2's scanner) -------

fn check_static_mut(path: &str, lines: &[Line], raw_lines: &[&str], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("static mut ") {
            out.push(Violation {
                rule: "R8",
                path: path.to_string(),
                line: idx + 1,
                message: "`static mut` is banned: use an atomic, a lock, or OnceLock (R8 is \
                          not allowlistable)"
                    .into(),
                line_text: raw_text(raw_lines, idx),
            });
        }
    }
}

// ---- R3 ----------------------------------------------------------------

fn check_panic_freedom(path: &str, lines: &[Line], raw_lines: &[&str], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (needle, what) in [
            (".unwrap()", "unwrap()"),
            (".expect(", "expect()"),
            ("panic!", "panic!"),
        ] {
            let hit = if needle == "panic!" {
                has_word(&line.code, "panic")
                    && line.code.contains("panic!")
                    && !line.code.contains("debug_assert")
            } else {
                line.code.contains(needle)
            };
            if hit {
                out.push(Violation {
                    rule: "R3",
                    path: path.to_string(),
                    line: idx + 1,
                    message: format!(
                        "{what} in library code — return a typed error, or allowlist with a \
                         written infallibility argument"
                    ),
                    line_text: raw_text(raw_lines, idx),
                });
            }
        }
    }
}

// ---- shared helpers ----------------------------------------------------

fn raw_text(raw_lines: &[&str], idx: usize) -> String {
    raw_lines
        .get(idx)
        .map(|s| s.to_string())
        .unwrap_or_default()
}

/// Token search that won't match inside identifiers
/// (`unsafe_op_in_unsafe_fn` does not contain the word `unsafe`).
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok = start == 0 || !is_ident(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// True when line `idx` carries one of `needles` in a comment on the same
/// line or a preceding justification line (see [`justification`]).
fn justified(
    lines: &[Line],
    idx: usize,
    needles: &[&str],
    grouped: impl Fn(&Line) -> bool,
) -> bool {
    justification(lines, idx, needles, grouped).is_some()
}

/// Finds the justification comment for line `idx`: a comment containing
/// one of `needles` on the same line, or on a preceding line reachable by
/// walking up through comments, attributes, unterminated statement
/// continuations, and lines for which `grouped` holds (so one
/// justification can head a run of related statements, e.g. a block of
/// atomic loads). Returns the matching comment's full text, extended with
/// any comment lines directly below it (a justification may wrap).
fn justification(
    lines: &[Line],
    idx: usize,
    needles: &[&str],
    grouped: impl Fn(&Line) -> bool,
) -> Option<String> {
    let hit = |l: &Line| needles.iter().any(|n| l.comment.contains(n));
    // Gathers the comment at `i` plus immediately following comment-only
    // lines, so a wrapped justification is judged as one text.
    let gather = |i: usize| {
        let mut text = lines[i].comment.clone();
        let mut j = i + 1;
        while j <= idx && lines[j].code.trim().is_empty() && !lines[j].comment.is_empty() {
            text.push(' ');
            text.push_str(&lines[j].comment);
            j += 1;
        }
        text
    };
    if hit(&lines[idx]) {
        return Some(gather(idx));
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let l = &lines[i];
        let code = l.code.trim();
        if hit(l) {
            return Some(gather(i));
        }
        let loop_header = code.ends_with('{')
            && ["for ", "while ", "loop", "for(", "while("]
                .iter()
                .any(|kw| code.starts_with(kw));
        let is_passthrough = code.is_empty() // comment-only or blank line
            || code.starts_with("#[")        // attribute
            || grouped(l)                    // same-kind statement run
            // A justification may sit just above the loop that repeats
            // the annotated operation.
            || loop_header
            // A line that doesn't end a statement/block is a continuation
            // of the statement we started on.
            || !(code.ends_with(';') || code.ends_with('{') || code.ends_with('}'));
        if !is_passthrough {
            return None;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::lex;

    fn check(path: &str, src: &str) -> Vec<Violation> {
        let lines = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        check_file(path, &lines, &raw)
    }

    #[test]
    fn r1_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        let good = "// SAFETY: g has no preconditions here\nfn f() { unsafe { g() } }\n";
        let trailing = "fn f() { unsafe { g() } } // SAFETY: fine\n";
        assert_eq!(check("crates/sgd/src/x.rs", bad).len(), 1);
        assert!(check("crates/sgd/src/x.rs", good).is_empty());
        assert!(check("crates/sgd/src/x.rs", trailing).is_empty());
    }

    #[test]
    fn r1_accepts_doc_safety_section_for_unsafe_fns() {
        let src =
            "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\npub unsafe fn f() {}\n";
        assert!(check("crates/sgd/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2_requires_ordering_comment_and_r8_flags_seqcst() {
        let bad = "fn f(a: &A) { a.n.store(1, Ordering::Relaxed); }\n";
        let good = "fn f(a: &A) {\n    // ordering: Relaxed — stat counter\n    a.n.store(1, Ordering::Relaxed);\n}\n";
        let seqcst = "fn f(a: &A) {\n    // ordering: belt and braces\n    a.n.store(1, Ordering::SeqCst);\n}\n";
        assert_eq!(check("crates/comm/src/x.rs", bad).len(), 1);
        assert!(check("crates/comm/src/x.rs", good).is_empty());
        let v = check("crates/comm/src/x.rs", seqcst);
        assert_eq!(v.len(), 1, "SeqCst is banned even with a comment");
        assert_eq!(v[0].rule, "R8");
        assert!(v[0].message.contains("SeqCst"));
    }

    #[test]
    fn r2_rejects_comment_naming_a_different_ordering() {
        let mismatched = "fn f(a: &A) {\n    // ordering: Release — publishes the row\n    a.n.store(1, Ordering::Relaxed);\n}\n";
        let v = check("crates/comm/src/x.rs", mismatched);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].rule, "R2");
        assert!(v[0].message.contains("Release"), "{}", v[0].message);
        assert!(v[0].message.contains("Relaxed"), "{}", v[0].message);
        // Naming the partner ordering alongside the real one is fine…
        let paired = "fn f(a: &A) {\n    // ordering: Release — pairs with the Acquire load\n    a.n.store(1, Ordering::Release);\n}\n";
        assert!(check("crates/comm/src/x.rs", paired).is_empty());
        // …and a comment naming no ordering at all still counts as R2
        // justification (it may explain by reference, e.g. \"see above\").
        let nameless = "fn f(a: &A) {\n    // ordering: same protocol as the ring header\n    a.n.store(1, Ordering::Relaxed);\n}\n";
        assert!(check("crates/comm/src/x.rs", nameless).is_empty());
    }

    #[test]
    fn r6_pairs_release_stores_with_acquire_loads_across_files() {
        let writer = "fn w(a: &A) {\n    // ordering: Release — publishes\n    a.seq.store(1, Ordering::Release);\n}\n";
        let reader = "fn r(a: &A) -> u64 {\n    // ordering: Acquire — consumes\n    a.seq.load(Ordering::Acquire)\n}\n";
        let collect = |path: &str, src: &str| {
            let lines = lex(src);
            let raw: Vec<&str> = src.lines().collect();
            collect_atomic_ops(path, &lines, &raw)
        };
        // Both halves present (in different files): clean.
        let mut ops = collect("crates/x/src/w.rs", writer);
        ops.extend(collect("crates/x/src/r.rs", reader));
        assert!(check_release_acquire_pairing(&ops).is_empty());
        // Writer alone: the publish edge dangles.
        let ops = collect("crates/x/src/w.rs", writer);
        let v = check_release_acquire_pairing(&ops);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].rule, "R6");
        assert!(v[0].message.contains("seq"), "{}", v[0].message);
        // Reader alone: nothing publishes what it consumes.
        let ops = collect("crates/x/src/r.rs", reader);
        let v = check_release_acquire_pairing(&ops);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("publishes"), "{}", v[0].message);
        // An AcqRel RMW is both halves at once: it pairs with itself.
        let rmw = "fn m(a: &A) {\n    // ordering: AcqRel — last decrement elects the merger\n    a.left.fetch_sub(1, Ordering::AcqRel);\n}\n";
        let ops = collect("crates/x/src/m.rs", rmw);
        assert!(check_release_acquire_pairing(&ops).is_empty());
    }

    #[test]
    fn r6_field_keys_strip_receivers_and_index_brackets() {
        let src = "fn f(s: &S, i: usize) {\n    // ordering: Release — publish slot\n    s.inner.beats[i].store(1, Ordering::Release);\n    // ordering: Acquire — consume slot\n    let _ = self.beats[i + 1].load(Ordering::Acquire);\n}\n";
        let lines = lex(src);
        let raw: Vec<&str> = src.lines().collect();
        let ops = collect_atomic_ops("crates/x/src/f.rs", &lines, &raw);
        assert_eq!(ops.len(), 2, "{ops:#?}");
        assert!(ops.iter().all(|o| o.field == "beats"), "{ops:#?}");
        assert!(check_release_acquire_pairing(&ops).is_empty());
    }

    #[test]
    fn r7_requires_shared_comment_naming_a_shared_cell() {
        let bare = "pub struct R {\n    buf: UnsafeCell<Vec<u8>>,\n}\n";
        let v = check("crates/x/src/r.rs", bare);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].rule, "R7");
        let named = "pub struct R {\n    // SHARED: buf — single consumer drains; producers only\n    // append through the atomic len handshake.\n    buf: UnsafeCell<Vec<u8>>,\n}\n";
        assert!(check("crates/x/src/r.rs", named).is_empty());
        let vague =
            "pub struct R {\n    // SHARED: everything is fine\n    buf: UnsafeCell<Vec<u8>>,\n}\n";
        let v = check("crates/x/src/r.rs", vague);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert!(v[0].message.contains("names no"), "{}", v[0].message);
        // `single-writer` documentation makes a plain field nameable.
        let single_writer = "// Row `head` is single-writer: only the drain thread moves it.\n// SHARED: head — see the single-writer note above\npub fn f(head: *mut u32) {\n    let _ = head;\n}\n";
        assert!(check("crates/x/src/s.rs", single_writer).is_empty());
    }

    #[test]
    fn r8_flags_static_mut() {
        let src = "static mut COUNTER: u64 = 0;\n";
        let v = check("crates/x/src/g.rs", src);
        assert_eq!(v.len(), 1, "{v:#?}");
        assert_eq!(v[0].rule, "R8");
        assert!(v[0].message.contains("static mut"), "{}", v[0].message);
    }

    #[test]
    fn r2_one_comment_heads_a_run_of_atomics() {
        let src = "fn f(a: &A) {\n    // ordering: Relaxed — cells are independent\n    let x = a.p.load(Ordering::Relaxed);\n    a.q.store(x, Ordering::Relaxed);\n}\n";
        assert!(check("crates/sgd/src/x.rs", src).is_empty());
    }

    #[test]
    fn r3_flags_panics_only_in_listed_crates_outside_tests_and_bins() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert_eq!(check("crates/core/src/x.rs", src).len(), 1);
        assert!(check("crates/baselines/src/x.rs", src).is_empty());
        assert!(check("crates/core/src/bin/hcc.rs", src).is_empty());
        let not_really = "fn f() { x.unwrap_or(3); no_panic(); }\n";
        assert!(check("crates/core/src/x.rs", not_really).is_empty());
    }

    #[test]
    fn r4_detects_missing_deny_attr() {
        assert_eq!(
            check_crate_root("crates/x/src/lib.rs", "//! doc\n").len(),
            1
        );
        assert!(check_crate_root(
            "crates/x/src/lib.rs",
            "//! doc\n#![deny(unsafe_op_in_unsafe_fn)]\n"
        )
        .is_empty());
    }

    #[test]
    fn r5_flags_external_sources_and_unknown_packages() {
        let lock = "[[package]]\nname = \"hcc-sgd\"\nversion = \"0.1.0\"\n\n[[package]]\nname = \"libc\"\nversion = \"0.2.0\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let known = vec!["hcc-sgd".to_string()];
        let v = check_lockfile(lock, &known);
        // libc: unknown package AND external source.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "R5"));
    }
}
