//! Lexical pre-pass: split each source line into code and comment text,
//! blank out string/char literal contents, and mark `#[cfg(test)]` /
//! `#[test]` regions.
//!
//! This is deliberately a line/token scanner, not a parser: the rules it
//! feeds (see [`crate::rules`]) only need to know *where* a token occurs
//! and whether a justification comment sits next to it. rustfmt keeps the
//! workspace in a shape where that is reliable; the fixtures in
//! `tests/fixtures/` pin the corner cases (nested block comments, raw
//! strings, lifetimes vs char literals, trailing comments).

/// One physical source line after lexing.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (quotes kept), so token searches can't match inside
    /// literals or comments.
    pub code: String,
    /// Concatenated text of every comment on the line (line, block, doc).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item or a
    /// `#[test]` function body (the attribute line itself is not test
    /// code).
    pub in_test: bool,
}

/// Lexes `source` into per-line code/comment pairs with test regions
/// marked. Lines are 0-indexed in the returned vector; rules report
/// 1-indexed line numbers.
pub fn lex(source: &str) -> Vec<Line> {
    let mut lines = split_comments(source);
    mark_test_regions(&mut lines);
    lines
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Code,
    /// Nested depth of `/* */` (Rust block comments nest).
    Block(u32),
    Str,
    /// Raw string, closed by `"` followed by this many `#`s.
    RawStr(u32),
}

fn split_comments(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match mode {
                Mode::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        i += 2;
                        mode = if depth > 1 {
                            Mode::Block(depth - 1)
                        } else {
                            Mode::Code
                        };
                    } else if c == '/' && next == Some('*') {
                        i += 2;
                        mode = Mode::Block(depth + 1);
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2; // skip the escaped char (blanked anyway)
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        i += 1 + hashes as usize;
                        mode = Mode::Code;
                    } else {
                        i += 1;
                    }
                }
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        comment.push_str(&raw[byte_offset(raw, i)..]);
                        break;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == 'r' && is_raw_start(&chars, i) {
                        let (hashes, skip) = raw_start(&chars, i);
                        code.push_str("r\"");
                        mode = Mode::RawStr(hashes);
                        i += skip;
                    } else if c == '\'' {
                        // Char literal vs lifetime: a literal closes within
                        // a few chars; a lifetime never closes.
                        if let Some(end) = char_literal_end(&chars, i) {
                            code.push_str("' '");
                            i = end + 1;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // A string still open at EOL spans lines; stay in Str/RawStr mode.
        out.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    out
}

fn byte_offset(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// `r"` / `r#"` / `br"` … — at `chars[i] == 'r'`, is this a raw string
/// opener (possibly after a `b` prefix handled by the caller's scan)?
fn is_raw_start(chars: &[char], i: usize) -> bool {
    // Reject identifiers ending in r (e.g. `var"` can't occur) by
    // requiring the previous char to be a non-identifier char.
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn raw_start(chars: &[char], i: usize) -> (u32, usize) {
    let mut hashes = 0u32;
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i + 1) // consume r, hashes, and the opening quote
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|h| chars.get(i + h) == Some(&'#'))
}

/// At `chars[i] == '\''`: `Some(index of closing quote)` for a char
/// literal, `None` for a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escaped literal: scan to the next unescaped quote (covers
            // \n, \x7f, \u{...}).
            let mut j = i + 2;
            while j < chars.len() && j < i + 12 {
                if chars[j] == '\'' {
                    return Some(j);
                }
                j += 1;
            }
            None
        }
        _ => {
            if chars.get(i + 2) == Some(&'\'') {
                Some(i + 2)
            } else {
                None
            }
        }
    }
}

/// Marks lines inside `#[cfg(test)]` items and `#[test]` fn bodies.
///
/// Brace-depth tracking over the comment-stripped code: a test attribute
/// arms a pending flag; the next `{` opens a region that closes when the
/// depth returns to its opening level. `#[cfg(not(test))]` does not arm.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i32 = 0;
    let mut pending = false;
    // Depth just before the `{` that opened the current test region.
    let mut region_close: Option<i32> = None;
    for line in lines.iter_mut() {
        let normalized: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
        if region_close.is_none()
            && (normalized.contains("#[cfg(test)]")
                || normalized.contains("#[cfg(all(test")
                || normalized.contains("#[cfg(any(test")
                || normalized.contains("#[test]"))
        {
            pending = true;
        }
        let mut in_test_here = region_close.is_some();
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && region_close.is_none() {
                        region_close = Some(depth);
                        pending = false;
                        in_test_here = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if region_close == Some(depth) {
                        region_close = None;
                        // The closing line still belongs to the region.
                    }
                }
                // The armed attribute turned out to gate a braceless
                // item (`#[cfg(test)] use …;`, `mod tests;`): no body
                // in this file to mark.
                ';' if pending && region_close.is_none() => pending = false,
                _ => {}
            }
        }
        line.in_test = in_test_here;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped_from_code() {
        let lines = lex("let x = \"unsafe\"; // SAFETY: not code\nlet y = 1; /* unsafe */");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("SAFETY:"));
        assert!(!lines[1].code.contains("unsafe"));
        assert!(lines[1].comment.contains("unsafe"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = lex("/* a /* b */ still comment\nstill */ let z = 1;");
        assert_eq!(lines[0].code.trim(), "");
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let lines = lex("let s = r#\"unsafe \"# ; let c = '\\'' ; let l: &'static str = s;");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("'static"), "{}", lines[0].code);
    }

    #[test]
    fn cfg_test_region_is_marked_not_the_attribute() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn more() {}\n";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(!lines[1].in_test, "attribute line is not test code");
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test, "closing brace still in region");
        assert!(!lines[5].in_test);
    }

    #[test]
    fn cfg_not_test_does_not_arm() {
        let lines = lex("#[cfg(not(test))]\nmod real {\n    fn f() {}\n}\n");
        assert!(lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn test_fn_attribute_marks_only_its_body() {
        let src = "#[test]\nfn t() {\n    boom();\n}\nfn lib() {}\n";
        let lines = lex(src);
        assert!(lines[1].in_test && lines[2].in_test && lines[3].in_test);
        assert!(!lines[4].in_test);
    }
}
