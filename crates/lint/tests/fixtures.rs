//! End-to-end fixture tests: each rule R1–R8 must detect its seeded
//! violation (and nothing else), the clean tree must scan clean, and the
//! allowlist must suppress — and report staleness — as documented.

use hcc_lint::{run, Allowlist, Report};
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan(name: &str) -> Report {
    run(&fixture(name), &Allowlist::default()).expect("fixture scan")
}

fn scan_with_allow(name: &str) -> Report {
    let allow_path = fixture(name).join("lint-allow.toml");
    let text = std::fs::read_to_string(allow_path).expect("fixture allowlist");
    run(&fixture(name), &Allowlist::parse(&text)).expect("fixture scan")
}

#[test]
fn r1_detects_unsafe_without_safety_comment() {
    let report = scan("r1");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R1");
    assert_eq!(v.path, "crates/fx/src/lib.rs");
    assert_eq!(v.line, 6, "the uncommented unsafe block");
}

#[test]
fn r2_detects_unannotated_atomic_and_r8_the_seqcst() {
    let report = scan("r2");
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
    let by_line = |n: usize| {
        report
            .violations
            .iter()
            .find(|v| v.line == n)
            .unwrap_or_else(|| panic!("no violation at line {n}: {:#?}", report.violations))
    };
    assert_eq!(by_line(8).rule, "R2", "unannotated fetch_add is an R2");
    assert_eq!(
        by_line(14).rule,
        "R8",
        "SeqCst is an R8 even with a comment"
    );
}

#[test]
fn r2_detects_ordering_comment_naming_the_wrong_ordering() {
    let report = scan("r2-mismatch");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R2");
    assert_eq!(v.line, 10, "the Release-commented Relaxed store");
    assert!(
        v.message.contains("Release") && v.message.contains("Relaxed"),
        "{}",
        v.message
    );
}

#[test]
fn r3_detects_unwrap_in_scoped_library_code() {
    let report = scan("r3");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R3");
    assert_eq!(v.path, "crates/core/src/lib.rs");
    assert_eq!(v.line, 5, "library unwrap, not the test-mod one");
}

#[test]
fn r4_detects_missing_crate_root_attribute() {
    let report = scan("r4");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R4");
    assert_eq!(v.path, "crates/fx/src/lib.rs");
}

#[test]
fn r5_detects_registry_dependency_in_lockfile() {
    let report = scan("r5");
    // Two findings for the one bad package: it resolves to neither the
    // workspace nor vendor/, and it names an external source.
    assert_eq!(report.violations.len(), 2, "{:#?}", report.violations);
    for v in &report.violations {
        assert_eq!(v.rule, "R5");
        assert!(
            v.message.contains("sneaky-dep"),
            "message should name the package: {}",
            v.message
        );
    }
}

#[test]
fn r6_detects_unpaired_release_store_but_not_the_paired_one() {
    let report = scan("r6");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R6");
    assert_eq!(
        v.line, 10,
        "the reader-less `seq` store, not the paired `flag`"
    );
    assert!(v.message.contains("seq"), "{}", v.message);
}

#[test]
fn r7_detects_unannotated_raw_pointer_but_not_the_shared_field() {
    let report = scan("r7");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "R7");
    assert_eq!(
        v.line, 15,
        "the bare `*mut` fn, not the annotated UnsafeCell"
    );
}

#[test]
fn r8_detects_static_mut_and_seqcst_and_rejects_the_allow_entry() {
    let report = scan_with_allow("r8");
    // static mut + SeqCst + the CFG error for the R8 allowlist entry.
    assert_eq!(report.violations.len(), 3, "{:#?}", report.violations);
    assert!(
        report.suppressed.is_empty(),
        "an R8 entry must never suppress: {:#?}",
        report.suppressed
    );
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules.iter().filter(|r| **r == "R8").count(), 2, "{rules:?}");
    assert_eq!(
        rules.iter().filter(|r| **r == "CFG").count(),
        1,
        "{rules:?}"
    );
}

#[test]
fn clean_tree_scans_clean() {
    let report = scan("clean");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn allowlist_suppresses_with_reason() {
    // Without the allowlist the violation is live…
    let bare = scan("allow");
    assert_eq!(bare.violations.len(), 1, "{:#?}", bare.violations);
    assert_eq!(bare.violations[0].rule, "R3");
    // …and the fixture's lint-allow.toml moves it to `suppressed`.
    let report = scan_with_allow("allow");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn stale_allowlist_entry_is_a_violation() {
    let report = scan_with_allow("stale");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "CFG");
    assert!(v.message.contains("stale"), "{}", v.message);
}

#[test]
fn allowlist_entry_for_deleted_file_is_a_violation() {
    let report = scan_with_allow("stale-missing");
    assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, "CFG");
    assert!(
        v.message.contains("no longer exists"),
        "the message must say the file is gone, not just `stale`: {}",
        v.message
    );
    assert!(v.message.contains("deleted_module.rs"), "{}", v.message);
}

/// The repo itself must be lint-clean under its checked-in allowlist —
/// the same invariant CI's `lint-invariants` job enforces.
#[test]
fn repository_tree_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let allow = match std::fs::read_to_string(root.join("lint-allow.toml")) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let report = run(&root, &allow).expect("workspace scan");
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{:#?}",
        report.violations
    );
}
