//! R3 fixture: a panic in library code of an R3-scoped crate (`core`).
#![deny(unsafe_op_in_unsafe_fn)]

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Result<u32, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
