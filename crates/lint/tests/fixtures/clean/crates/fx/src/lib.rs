//! Clean fixture: every tricky construct the lexer must NOT trip over.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering};

/// The words unsafe, unwrap() and SeqCst inside strings and comments are
/// data, not code: "unsafe { }", ".unwrap()", Ordering::SeqCst.
pub fn strings() -> &'static str {
    let raw = r#"unsafe { x.load(Ordering::SeqCst).unwrap() }"#;
    let _ = raw;
    /* block comment mentioning unsafe and .unwrap() too,
    across lines */
    "panic! is only a word here"
}

// SAFETY: dereferences a pointer derived from a live slice; the length
// check above the call guarantees in-bounds.
pub fn justified_unsafe(v: &[u8]) -> u8 {
    // SAFETY: non-empty asserted by the caller contract (see docs).
    unsafe { *v.as_ptr() }
}

pub fn annotated_atomics(c: &AtomicU64) -> u64 {
    // ordering: Relaxed — statistic, no cross-thread ordering required.
    c.fetch_add(1, Ordering::Relaxed);
    // ordering: Acquire — pairs with the Release store in `publish`.
    c.load(Ordering::Acquire)
}

pub fn publish(c: &AtomicU64) {
    // ordering: Release — pairs with the Acquire load above.
    c.store(1, Ordering::Release);
}

pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
    let c = 'x'; // char literal, not a lifetime
    let _ = c;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn tests_may_unwrap_and_use_seqcst() {
        let c = AtomicU64::new(0);
        c.store(7, Ordering::SeqCst);
        let v: Option<u64> = Some(c.load(Ordering::SeqCst));
        assert_eq!(v.unwrap(), 7);
    }
}
