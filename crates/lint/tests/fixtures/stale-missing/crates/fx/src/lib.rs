//! Stale-missing fixture: the allowlist points at a file that no longer
//! exists; the tree itself is clean.
#![deny(unsafe_op_in_unsafe_fn)]

pub fn id(x: u32) -> u32 {
    x
}
