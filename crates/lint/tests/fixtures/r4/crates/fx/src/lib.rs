//! R4 fixture: crate root missing `#![deny(unsafe_op_in_unsafe_fn)]`.

pub fn id(x: u32) -> u32 {
    x
}
