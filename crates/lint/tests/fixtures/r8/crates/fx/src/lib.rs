//! R8 fixture: a `static mut` and a SeqCst op — both banned outright.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering};

static mut LEGACY_COUNTER: u64 = 0;

pub fn read(c: &AtomicU64) -> u64 {
    // ordering: SeqCst — no comment or allowlist entry can excuse this.
    c.load(Ordering::SeqCst)
}
