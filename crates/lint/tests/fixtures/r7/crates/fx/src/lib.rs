//! R7 fixture: one raw-pointer region with no `SHARED:` comment, one
//! `UnsafeCell` field annotated correctly (must not be flagged).
#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::UnsafeCell;
use std::sync::atomic::AtomicU64;

pub struct Lane {
    // SHARED: slots — single-writer: only the owning thread appends;
    // readers hand off through the atomic `len`.
    pub slots: UnsafeCell<Vec<u64>>,
    pub len: AtomicU64,
}

pub fn unannotated(rows: *mut f32) {
    let _ = rows;
}
