//! R2 fixture: one unannotated atomic access and one SeqCst access whose
//! comment cannot excuse it (SeqCst always needs an allowlist entry).
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::Relaxed)
}

pub fn read(c: &AtomicU64) -> u64 {
    // ordering: SeqCst — a comment does not excuse SeqCst; downgrade or
    // allowlist it.
    c.load(Ordering::SeqCst)
}

pub fn read_ok(c: &AtomicU64) -> u64 {
    // ordering: Relaxed — fixture statistic, no ordering required.
    c.load(Ordering::Relaxed)
}
