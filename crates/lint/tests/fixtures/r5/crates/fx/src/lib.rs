//! R5 fixture crate (the violation lives in Cargo.lock).
#![deny(unsafe_op_in_unsafe_fn)]
