//! Allowlist fixture: one R3 violation suppressed by lint-allow.toml.
#![deny(unsafe_op_in_unsafe_fn)]

pub fn build() -> u32 {
    let v: Result<u32, ()> = Ok(1);
    v.expect("documented panicking convenience")
}
