//! Stale-allowlist fixture: the tree is clean, the allowlist is not.
#![deny(unsafe_op_in_unsafe_fn)]

pub fn id(x: u32) -> u32 {
    x
}
