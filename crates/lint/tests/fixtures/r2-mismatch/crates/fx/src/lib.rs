//! R2-mismatch fixture: the ordering comment names `Release` but the code
//! runs `Relaxed` — a justification documenting a protocol the code no
//! longer executes.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish(c: &AtomicU64) {
    // ordering: Release — publishes the filled row to the reader.
    c.store(1, Ordering::Relaxed);
}

pub fn stat(c: &AtomicU64) -> u64 {
    // ordering: no cross-thread ordering needed, pure statistic.
    c.load(Ordering::Relaxed)
}
