//! R6 fixture: `seq` is Release-stored but nothing in the crate
//! Acquire-loads it — the publish edge dangles. `flag` pairs correctly
//! across the two functions and must not be flagged.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicU64, Ordering};

pub fn publish_seq(seq: &AtomicU64) {
    // ordering: Release — publishes the snapshot (no reader exists: bug).
    seq.store(1, Ordering::Release);
}

pub fn publish_flag(flag: &AtomicU64) {
    // ordering: Release — pairs with the Acquire load in `check_flag`.
    flag.store(1, Ordering::Release);
}

pub fn check_flag(flag: &AtomicU64) -> u64 {
    // ordering: Acquire — pairs with the Release store in `publish_flag`.
    flag.load(Ordering::Acquire)
}
