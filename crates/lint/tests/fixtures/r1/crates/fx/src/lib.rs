//! R1 fixture: one unsafe block without a SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

pub fn read_first(v: &[u8]) -> u8 {
    // A comment that is not a safety argument.
    unsafe { *v.as_ptr() }
}

// SAFETY: the pointer comes from a live slice; this one is justified and
// must NOT be flagged.
pub unsafe fn read_first_ok(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}
