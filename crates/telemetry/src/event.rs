//! Typed event taxonomy mirroring the paper's epoch time-cost model.
//!
//! Eqs. 1–4 decompose one epoch into per-worker pull, compute, and push
//! terms plus the server's synchronization term; the event types here carry
//! exactly those quantities (as [`Phase`] spans), the per-direction wire
//! volume the communication strategies trade against (as [`Event::Bytes`]),
//! and the fault-tolerance layer's disruptions (straggler, rollback,
//! worker-lost, checkpoint) whose overhead the model does *not* predict —
//! so a timeline shows both what the model covers and what it misses.

/// One phase of the `pull → compute → push → sync` epoch loop (Fig. 4),
/// i.e. the term of Eq. 1/2 a span contributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `t_pull`: reading the published feature matrix.
    Pull,
    /// `t_comp`: the Hogwild SGD sweep.
    Comp,
    /// `t_push`: submitting updated factors.
    Push,
    /// `t_sync`: the server merging one worker's push (Eq. 3 term).
    Sync,
    /// A serving-side top-k query (outside the Eq. 1–4 training model;
    /// recorded by `hcc-serve` for per-query latency percentiles).
    Query,
}

impl Phase {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pull => "pull",
            Phase::Comp => "comp",
            Phase::Push => "push",
            Phase::Sync => "sync",
            Phase::Query => "query",
        }
    }

    /// Inverse of [`name`](Phase::name).
    pub fn from_name(s: &str) -> Option<Phase> {
        Some(match s {
            "pull" => Phase::Pull,
            "comp" => Phase::Comp,
            "push" => Phase::Push,
            "sync" => Phase::Sync,
            "query" => Phase::Query,
            _ => return None,
        })
    }
}

/// Wire direction for byte counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Server → worker (publish/pull region traffic).
    Pull,
    /// Worker → server (push/collect traffic).
    Push,
}

impl Dir {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Dir::Pull => "pull",
            Dir::Push => "push",
        }
    }

    /// Inverse of [`name`](Dir::name).
    pub fn from_name(s: &str) -> Option<Dir> {
        Some(match s {
            "pull" => Dir::Pull,
            "push" => Dir::Push,
            _ => return None,
        })
    }
}

/// Why a network RPC had to be retried (the transport-level cause the
/// socket COMM reports; shared-memory transports never emit these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetCause {
    /// The per-RPC deadline expired with no reply.
    Timeout,
    /// The reply (or the request, as nacked by the server) failed its
    /// CRC-32 integrity check.
    Corrupt,
    /// The peer hung up mid-exchange.
    Disconnected,
    /// The link is partitioned: reconnect attempts are exhausted.
    Partitioned,
}

impl NetCause {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            NetCause::Timeout => "timeout",
            NetCause::Corrupt => "corrupt",
            NetCause::Disconnected => "disconnected",
            NetCause::Partitioned => "partitioned",
        }
    }

    /// Inverse of [`name`](NetCause::name).
    pub fn from_name(s: &str) -> Option<NetCause> {
        Some(match s {
            "timeout" => NetCause::Timeout,
            "corrupt" => NetCause::Corrupt,
            "disconnected" => NetCause::Disconnected,
            "partitioned" => NetCause::Partitioned,
            _ => return None,
        })
    }
}

/// One telemetry event. All timestamps are microseconds since the
/// [`Telemetry`](crate::Telemetry) handle was created (a single monotonic
/// origin, so spans from different workers interleave on one time axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A timed phase span of worker `worker` during `epoch`.
    Phase {
        /// Training epoch the span belongs to.
        epoch: u32,
        /// Worker index (or the server id, `Header::workers`, for sync
        /// spans attributed to a worker's merge).
        worker: u32,
        /// Which cost-model term this time belongs to.
        phase: Phase,
        /// Span start, µs since the telemetry origin.
        start_us: u64,
        /// Span duration in µs.
        dur_us: u64,
    },
    /// Bytes that crossed the wire in one direction during `epoch`
    /// (aggregate across workers; attributed to the server lane).
    Bytes {
        /// Training epoch.
        epoch: u32,
        /// Direction of travel.
        dir: Dir,
        /// Bytes on the wire (post-compression, i.e. FP16 counts half).
        bytes: u64,
    },
    /// The supervisor flagged `worker` as a straggler after `epoch`.
    Straggler {
        /// Epoch after which the classification ran.
        epoch: u32,
        /// Straggling worker (starting-fleet index, stable as the fleet
        /// shrinks).
        worker: u32,
    },
    /// The supervisor declared `worker` dead after `epoch`.
    WorkerLost {
        /// Epoch after which the classification ran.
        epoch: u32,
        /// Dead worker (starting-fleet index).
        worker: u32,
    },
    /// The divergence guard rolled the model back during `epoch`.
    Rollback {
        /// Epoch that diverged and will be retried.
        epoch: u32,
        /// Cumulative learning-rate scale after the backoff.
        lr_scale: f64,
    },
    /// A crash-safe checkpoint was written after `epoch`.
    Checkpoint {
        /// Epoch the checkpoint covers (epochs completed).
        epoch: u32,
        /// Time spent flushing + writing, µs.
        dur_us: u64,
    },
    /// Epoch `epoch` was accepted; `wall_us` is its wall-clock time.
    EpochEnd {
        /// Accepted epoch.
        epoch: u32,
        /// Wall-clock duration of the epoch's execution, µs.
        wall_us: u64,
    },
    /// A network RPC was retried during `epoch` (socket transport only).
    NetRetry {
        /// Training epoch the retry happened in.
        epoch: u32,
        /// Worker whose link retried (starting-fleet index).
        worker: u32,
        /// What went wrong with the previous attempt.
        cause: NetCause,
        /// Backoff delay applied before the retry, µs.
        delay_us: u64,
        /// Bytes re-sent by the retry (cumulates into the epoch's
        /// retransmit total in [`summary::epoch_breakdown`](crate::summary::epoch_breakdown)).
        bytes: u64,
    },
    /// A worker's connection to the server was re-established after a
    /// failure (socket transport only).
    Reconnect {
        /// Training epoch the reconnect happened in.
        epoch: u32,
        /// Worker whose link reconnected (starting-fleet index).
        worker: u32,
        /// Which dial attempt succeeded (1-based; 0 is the eager dial).
        attempt: u32,
        /// Backoff delay that preceded the successful dial, µs.
        delay_us: u64,
    },
    /// Admission-queue state sampled by the serving dispatcher after it
    /// drained one micro-batch (serving-side; outside the Eq. 1–4 training
    /// model, so `epoch` is always 0 — kept for the uniform accessor).
    Admission {
        /// Always 0 for serving events.
        epoch: u32,
        /// Queries still waiting in the queue after the drain.
        depth: u64,
        /// Queries shed since the pipeline started (cumulative).
        shed: u64,
        /// Queries admitted into the drained micro-batch.
        admitted: u64,
    },
}

impl Event {
    /// The epoch this event belongs to.
    pub fn epoch(&self) -> u32 {
        match *self {
            Event::Phase { epoch, .. }
            | Event::Bytes { epoch, .. }
            | Event::Straggler { epoch, .. }
            | Event::WorkerLost { epoch, .. }
            | Event::Rollback { epoch, .. }
            | Event::Checkpoint { epoch, .. }
            | Event::EpochEnd { epoch, .. }
            | Event::NetRetry { epoch, .. }
            | Event::Reconnect { epoch, .. }
            | Event::Admission { epoch, .. } => epoch,
        }
    }
}

/// Static run description emitted as the first JSONL line. Identifies the
/// configuration the timeline was captured under, including the kernel
/// dispatch tag so perf numbers are attributable to a code path.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Workers at the start of the run.
    pub workers: u32,
    /// Latent dimension `k`.
    pub k: u32,
    /// Observed ratings being swept per epoch.
    pub nnz: u64,
    /// Communication strategy name (`q-only`, `full-pq`, `half-q`).
    pub strategy: String,
    /// Asynchronous pipeline streams (1 = synchronous path).
    pub streams: u32,
    /// Kernel dispatch tag (e.g. `avx2+fma+f16c`, `scalar`).
    pub backend: String,
    /// Hogwild schedule name (`stripe`, `tiled`).
    pub schedule: String,
}

/// A finished run's telemetry: header, the drained per-lane events merged
/// into one chronologically ordered stream, and the drop counter.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Run description.
    pub header: Header,
    /// All recorded events, sorted by start time.
    pub events: Vec<Event>,
    /// Events discarded because a ring buffer was full.
    pub dropped: u64,
}

impl Timeline {
    /// The server lane's worker id (`workers` indexes past the last worker).
    pub fn server_id(&self) -> u32 {
        self.header.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_dir_names_roundtrip() {
        for p in [
            Phase::Pull,
            Phase::Comp,
            Phase::Push,
            Phase::Sync,
            Phase::Query,
        ] {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        for d in [Dir::Pull, Dir::Push] {
            assert_eq!(Dir::from_name(d.name()), Some(d));
        }
        for c in [
            NetCause::Timeout,
            NetCause::Corrupt,
            NetCause::Disconnected,
            NetCause::Partitioned,
        ] {
            assert_eq!(NetCause::from_name(c.name()), Some(c));
        }
        assert_eq!(Phase::from_name("bogus"), None);
        assert_eq!(Dir::from_name("bogus"), None);
        assert_eq!(NetCause::from_name("bogus"), None);
    }

    #[test]
    fn event_epoch_accessor() {
        assert_eq!(
            Event::Rollback {
                epoch: 7,
                lr_scale: 0.5
            }
            .epoch(),
            7
        );
        assert_eq!(
            Event::Bytes {
                epoch: 3,
                dir: Dir::Pull,
                bytes: 10
            }
            .epoch(),
            3
        );
        assert_eq!(
            Event::NetRetry {
                epoch: 5,
                worker: 1,
                cause: NetCause::Corrupt,
                delay_us: 250,
                bytes: 64
            }
            .epoch(),
            5
        );
        assert_eq!(
            Event::Reconnect {
                epoch: 6,
                worker: 0,
                attempt: 2,
                delay_us: 10
            }
            .epoch(),
            6
        );
    }
}
