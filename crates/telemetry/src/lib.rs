//! Zero-cost-when-disabled observability for the HCC-MF training loop.
//!
//! The paper's collaborative framework stands on a measured cost model:
//! epoch time decomposes into `t_pull + t_comp + t_push` per worker plus
//! the server's `t_sync` (Eqs. 1–4), and the partition planner trusts that
//! decomposition. This crate records exactly those quantities as typed
//! events so a run can be replayed against the model it was planned with.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** [`Telemetry::disabled`] is an `Option` that
//!    is `None`; every recording call is one branch on it. The hot-path
//!    overhead budget is <2% and the disabled path is measured in
//!    nanoseconds (see `disabled_calls_are_branch_cheap`).
//! 2. **No locks on the hot path.** Each worker writes its own
//!    pre-allocated single-writer ring lane; the server lane is lane
//!    `workers`. Recording is a bounds check and a `Vec::push`.
//! 3. **Bounded memory.** Rings never grow; overflow increments a drop
//!    counter that surfaces in the [`Timeline`].
//!
//! A run ends with [`Telemetry::finish`], which drains the lanes into a
//! chronologically ordered [`Timeline`]; [`jsonl`] serializes it to one
//! JSON object per line and [`summary`] folds it into per-epoch phase
//! totals and the measured-vs-model validation report.

#![deny(unsafe_op_in_unsafe_fn)]

mod event;
pub mod json;
pub mod jsonl;
mod ring;
pub mod summary;

pub use event::{Dir, Event, Header, NetCause, Phase, Timeline};
pub use summary::{
    epoch_breakdown, validate_cost_model, EpochBreakdown, ModelRow, ModelValidation, PhaseTotals,
};

use ring::Ring;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default ring capacity per lane: enough for hundreds of epochs of the
/// ~6 events a lane records per epoch, at ~48 bytes per event.
pub const DEFAULT_LANE_CAPACITY: usize = 4096;

struct Inner {
    origin: Instant,
    header: Header,
    /// One lane per worker, plus the server/orchestrator lane at index
    /// `header.workers`.
    lanes: Vec<Ring>,
}

/// A handle recording training telemetry, shared by reference across the
/// worker threads of a `std::thread::scope`.
///
/// The handle is either *enabled* (owns the ring lanes) or *disabled*
/// (holds nothing); all recording methods no-op on a disabled handle after
/// a single branch. The handle is deliberately not `Clone`: exactly one
/// exists per training session, workers borrow it, and [`finish`]
/// consumes it once the scope has joined.
///
/// [`finish`]: Telemetry::finish
pub struct Telemetry(Option<Arc<Inner>>);

impl Telemetry {
    /// A disabled handle: every call is a no-op behind one branch.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// An enabled handle with `header.workers + 1` lanes (workers plus the
    /// server), each holding up to `lane_capacity` events.
    pub fn enabled(header: Header, lane_capacity: usize) -> Telemetry {
        let lanes = (0..=header.workers)
            .map(|_| Ring::with_capacity(lane_capacity))
            .collect();
        Telemetry(Some(Arc::new(Inner {
            origin: Instant::now(),
            header,
            lanes,
        })))
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The server/orchestrator lane index (`header.workers`; 0 if disabled).
    pub fn server_lane(&self) -> u32 {
        self.0.as_ref().map_or(0, |i| i.header.workers)
    }

    /// Microseconds since this handle was created (0 when disabled).
    /// Pair with [`phase`](Telemetry::phase) to timestamp a span start.
    pub fn now_us(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |i| i.origin.elapsed().as_micros() as u64)
    }

    /// Records a phase span on `lane`. `start_us` comes from
    /// [`now_us`](Telemetry::now_us) at span start; `dur` is the caller's
    /// own measurement (the training loop already times each phase for its
    /// per-epoch stats, so telemetry reuses those clocks rather than
    /// adding its own).
    ///
    /// Each lane is a single-writer ring: the caller must ensure at most
    /// one thread records on a given lane at any moment, with a
    /// happens-before edge (scope join, mutex, channel) between
    /// successive writers. Concurrent unsynchronized writes to one lane
    /// are a data race, not merely lost events.
    pub fn phase(
        &self,
        lane: u32,
        epoch: u32,
        worker: u32,
        phase: Phase,
        start_us: u64,
        dur: Duration,
    ) {
        if let Some(inner) = &self.0 {
            inner.lane(lane).push(Event::Phase {
                epoch,
                worker,
                phase,
                start_us,
                dur_us: dur.as_micros() as u64,
            });
        }
    }

    /// Starts a guarded span that records itself on [`Span::end`] (or
    /// drop), reading the clock only when enabled.
    pub fn span(&self, lane: u32, epoch: u32, worker: u32, phase: Phase) -> Span<'_> {
        Span {
            telemetry: self,
            lane,
            epoch,
            worker,
            phase,
            start: self
                .0
                .as_ref()
                .map(|i| (i.origin.elapsed(), Instant::now())),
        }
    }

    /// Declares the calling thread the new writer of `lane`.
    ///
    /// The single-writer protocol permits a lane's writer to *change* —
    /// training spawns fresh scoped worker threads each epoch, and the
    /// serving path rotates server-lane writers under a mutex — as long as
    /// a happens-before edge (scope join, mutex acquire, channel recv)
    /// orders the new writer after the old one. Call this at the start of
    /// such a handoff, strictly after taking that edge.
    ///
    /// Release builds compile this to a no-op. Debug builds re-arm the
    /// lane's owner-thread assertion, so an *unsynchronized* second writer
    /// (a protocol violation that would be a data race) fails fast instead
    /// of corrupting the ring.
    pub fn adopt_lane(&self, lane: u32) {
        if let Some(inner) = &self.0 {
            inner.lane(lane).adopt();
        }
    }

    /// Records an arbitrary event on `lane` (supervisor and checkpoint
    /// events go on the server lane). Same single-writer-per-lane
    /// contract as [`phase`](Telemetry::phase).
    pub fn record(&self, lane: u32, event: Event) {
        if let Some(inner) = &self.0 {
            inner.lane(lane).push(event);
        }
    }

    /// Records per-direction wire bytes for `epoch` on the server lane.
    pub fn bytes(&self, epoch: u32, dir: Dir, bytes: u64) {
        if let Some(inner) = &self.0 {
            if bytes > 0 {
                inner
                    .lane(inner.header.workers)
                    .push(Event::Bytes { epoch, dir, bytes });
            }
        }
    }

    /// Consumes the handle and merges all lanes into a [`Timeline`]
    /// ordered by `(epoch, start time)`. `None` when disabled.
    ///
    /// # Panics
    /// Panics if any worker thread still borrows the handle — call only
    /// after the training scope has joined.
    pub fn finish(self) -> Option<Timeline> {
        let inner = self.0?;
        let mut inner = Arc::try_unwrap(inner)
            .ok()
            .expect("Telemetry::finish called while worker threads still hold the handle");
        let mut dropped = 0;
        let mut events = Vec::new();
        for lane in &mut inner.lanes {
            dropped += lane.dropped();
            events.append(&mut lane.drain());
        }
        // Spans carry a start timestamp; point events (epoch-end, rollback,
        // supervisor verdicts) happen at the end of their epoch, so they
        // sort after that epoch's spans.
        events.sort_by_key(|ev| match *ev {
            Event::Phase {
                epoch, start_us, ..
            } => (epoch, start_us),
            _ => (ev.epoch(), u64::MAX),
        });
        Some(Timeline {
            header: inner.header,
            events,
            dropped,
        })
    }
}

impl Inner {
    fn lane(&self, lane: u32) -> &Ring {
        // Clamp rather than panic: a mis-indexed lane loses attribution,
        // not the run.
        &self.lanes[(lane as usize).min(self.lanes.len() - 1)]
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// A live phase span; records a [`Event::Phase`] when ended or dropped.
#[must_use = "a span records its phase when ended or dropped"]
pub struct Span<'a> {
    telemetry: &'a Telemetry,
    lane: u32,
    epoch: u32,
    worker: u32,
    phase: Phase,
    /// `(start offset from origin, wall clock at start)`; `None` if the
    /// handle is disabled.
    start: Option<(Duration, Instant)>,
}

impl Span<'_> {
    /// Ends the span now and records it.
    pub fn end(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((offset, started)) = self.start.take() {
            self.telemetry.phase(
                self.lane,
                self.epoch,
                self.worker,
                self.phase,
                offset.as_micros() as u64,
                started.elapsed(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(workers: u32) -> Header {
        Header {
            workers,
            k: 8,
            nnz: 100,
            strategy: "q-only".into(),
            streams: 1,
            backend: "scalar".into(),
            schedule: "stripe".into(),
        }
    }

    #[test]
    fn disabled_records_nothing_and_finishes_none() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now_us(), 0);
        t.phase(0, 0, 0, Phase::Comp, 0, Duration::from_millis(1));
        t.bytes(0, Dir::Pull, 100);
        t.span(0, 0, 0, Phase::Pull).end();
        assert!(t.finish().is_none());
    }

    #[test]
    fn concurrent_workers_record_into_own_lanes() {
        let t = Telemetry::enabled(header(4), 256);
        std::thread::scope(|s| {
            for w in 0..4u32 {
                let t = &t;
                s.spawn(move || {
                    for epoch in 0..8 {
                        let span = t.span(w, epoch, w, Phase::Comp);
                        std::hint::black_box(epoch);
                        span.end();
                        t.phase(w, epoch, w, Phase::Push, t.now_us(), Duration::ZERO);
                    }
                });
            }
        });
        t.bytes(0, Dir::Push, 42);
        t.record(
            t.server_lane(),
            Event::EpochEnd {
                epoch: 0,
                wall_us: 1,
            },
        );
        let timeline = t.finish().unwrap();
        assert_eq!(timeline.dropped, 0);
        assert_eq!(timeline.events.len(), 4 * 8 * 2 + 2);
        // Sorted by (epoch, start): epochs are non-decreasing.
        let epochs: Vec<u32> = timeline.events.iter().map(|e| e.epoch()).collect();
        let mut sorted = epochs.clone();
        sorted.sort_unstable();
        assert_eq!(epochs, sorted);
    }

    #[test]
    fn overflow_is_counted_not_fatal() {
        let t = Telemetry::enabled(header(1), 4);
        for epoch in 0..10 {
            t.phase(0, epoch, 0, Phase::Comp, 0, Duration::ZERO);
        }
        let timeline = t.finish().unwrap();
        assert_eq!(timeline.events.len(), 4);
        assert_eq!(timeline.dropped, 6);
    }

    /// The disabled hot path must be a branch, not a syscall: 1M calls in
    /// well under the time even 2% of a short epoch would allow. The bound
    /// is deliberately loose (shared CI runners) — the real-train overhead
    /// criterion lives in `bench telemetry` and core's integration tests.
    #[test]
    fn disabled_calls_are_branch_cheap() {
        let t = Telemetry::disabled();
        let start = Instant::now();
        for i in 0..1_000_000u32 {
            t.phase(0, i, 0, Phase::Comp, 0, Duration::ZERO);
            std::hint::black_box(&t);
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(500),
            "1M disabled calls took {elapsed:?}"
        );
    }
}
