//! JSONL timeline format: one header line, then one line per event.
//!
//! The format is append-friendly, greppable, and loads into any dataframe
//! tool; `parse` is the exact inverse of `to_jsonl`, which the round-trip
//! tests pin down. Unknown `type` values are rejected (the schema is
//! versioned by the header's `format` field).

use crate::event::{Dir, Event, Header, NetCause, Phase, Timeline};
use crate::json::{escape, parse as parse_json, Value};

/// Schema version emitted in the header line.
pub const FORMAT_VERSION: u64 = 1;

/// Serializes a timeline to JSONL text.
pub fn to_jsonl(t: &Timeline) -> String {
    let mut out = String::with_capacity(128 + t.events.len() * 96);
    let h = &t.header;
    out.push_str(&format!(
        "{{\"type\":\"header\",\"format\":{FORMAT_VERSION},\"workers\":{},\"k\":{},\"nnz\":{},\
         \"strategy\":{},\"streams\":{},\"backend\":{},\"schedule\":{},\"dropped\":{}}}\n",
        h.workers,
        h.k,
        h.nnz,
        escape(&h.strategy),
        h.streams,
        escape(&h.backend),
        escape(&h.schedule),
        t.dropped,
    ));
    for ev in &t.events {
        out.push_str(&event_line(ev));
        out.push('\n');
    }
    out
}

fn event_line(ev: &Event) -> String {
    match *ev {
        Event::Phase {
            epoch,
            worker,
            phase,
            start_us,
            dur_us,
        } => format!(
            "{{\"type\":\"phase\",\"epoch\":{epoch},\"worker\":{worker},\"phase\":\"{}\",\
             \"start_us\":{start_us},\"dur_us\":{dur_us}}}",
            phase.name()
        ),
        Event::Bytes { epoch, dir, bytes } => format!(
            "{{\"type\":\"bytes\",\"epoch\":{epoch},\"dir\":\"{}\",\"bytes\":{bytes}}}",
            dir.name()
        ),
        Event::Straggler { epoch, worker } => {
            format!("{{\"type\":\"straggler\",\"epoch\":{epoch},\"worker\":{worker}}}")
        }
        Event::WorkerLost { epoch, worker } => {
            format!("{{\"type\":\"worker_lost\",\"epoch\":{epoch},\"worker\":{worker}}}")
        }
        Event::Rollback { epoch, lr_scale } => {
            format!("{{\"type\":\"rollback\",\"epoch\":{epoch},\"lr_scale\":{lr_scale}}}")
        }
        Event::Checkpoint { epoch, dur_us } => {
            format!("{{\"type\":\"checkpoint\",\"epoch\":{epoch},\"dur_us\":{dur_us}}}")
        }
        Event::EpochEnd { epoch, wall_us } => {
            format!("{{\"type\":\"epoch_end\",\"epoch\":{epoch},\"wall_us\":{wall_us}}}")
        }
        Event::NetRetry {
            epoch,
            worker,
            cause,
            delay_us,
            bytes,
        } => format!(
            "{{\"type\":\"net_retry\",\"epoch\":{epoch},\"worker\":{worker},\"cause\":\"{}\",\
             \"delay_us\":{delay_us},\"bytes\":{bytes}}}",
            cause.name()
        ),
        Event::Reconnect {
            epoch,
            worker,
            attempt,
            delay_us,
        } => format!(
            "{{\"type\":\"reconnect\",\"epoch\":{epoch},\"worker\":{worker},\
             \"attempt\":{attempt},\"delay_us\":{delay_us}}}"
        ),
        Event::Admission {
            epoch,
            depth,
            shed,
            admitted,
        } => format!(
            "{{\"type\":\"admission\",\"epoch\":{epoch},\"depth\":{depth},\
             \"shed\":{shed},\"admitted\":{admitted}}}"
        ),
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn field_u32(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(v, key)?).map_err(|_| format!("field {key:?} out of u32 range"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

/// Parses JSONL text produced by [`to_jsonl`] back into a typed timeline.
pub fn parse(text: &str) -> Result<Timeline, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, first) = lines.next().ok_or("empty timeline")?;
    let hv = parse_json(first).map_err(|e| format!("header: {e}"))?;
    if field_str(&hv, "type")? != "header" {
        return Err("first line is not a header".into());
    }
    let format = field_u64(&hv, "format")?;
    if format != FORMAT_VERSION {
        return Err(format!(
            "unsupported timeline format {format} (this build reads {FORMAT_VERSION})"
        ));
    }
    let header = Header {
        workers: field_u32(&hv, "workers")?,
        k: field_u32(&hv, "k")?,
        nnz: field_u64(&hv, "nnz")?,
        strategy: field_str(&hv, "strategy")?.to_string(),
        streams: field_u32(&hv, "streams")?,
        backend: field_str(&hv, "backend")?.to_string(),
        schedule: field_str(&hv, "schedule")?.to_string(),
    };
    let dropped = field_u64(&hv, "dropped")?;

    let mut events = Vec::new();
    for (lineno, line) in lines {
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let ev = match field_str(&v, "type")? {
            "phase" => Event::Phase {
                epoch: field_u32(&v, "epoch")?,
                worker: field_u32(&v, "worker")?,
                phase: Phase::from_name(field_str(&v, "phase")?)
                    .ok_or_else(|| format!("line {}: unknown phase", lineno + 1))?,
                start_us: field_u64(&v, "start_us")?,
                dur_us: field_u64(&v, "dur_us")?,
            },
            "bytes" => Event::Bytes {
                epoch: field_u32(&v, "epoch")?,
                dir: Dir::from_name(field_str(&v, "dir")?)
                    .ok_or_else(|| format!("line {}: unknown dir", lineno + 1))?,
                bytes: field_u64(&v, "bytes")?,
            },
            "straggler" => Event::Straggler {
                epoch: field_u32(&v, "epoch")?,
                worker: field_u32(&v, "worker")?,
            },
            "worker_lost" => Event::WorkerLost {
                epoch: field_u32(&v, "epoch")?,
                worker: field_u32(&v, "worker")?,
            },
            "rollback" => Event::Rollback {
                epoch: field_u32(&v, "epoch")?,
                lr_scale: v
                    .get("lr_scale")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("line {}: missing lr_scale", lineno + 1))?,
            },
            "checkpoint" => Event::Checkpoint {
                epoch: field_u32(&v, "epoch")?,
                dur_us: field_u64(&v, "dur_us")?,
            },
            "epoch_end" => Event::EpochEnd {
                epoch: field_u32(&v, "epoch")?,
                wall_us: field_u64(&v, "wall_us")?,
            },
            "net_retry" => Event::NetRetry {
                epoch: field_u32(&v, "epoch")?,
                worker: field_u32(&v, "worker")?,
                cause: NetCause::from_name(field_str(&v, "cause")?)
                    .ok_or_else(|| format!("line {}: unknown net cause", lineno + 1))?,
                delay_us: field_u64(&v, "delay_us")?,
                bytes: field_u64(&v, "bytes")?,
            },
            "reconnect" => Event::Reconnect {
                epoch: field_u32(&v, "epoch")?,
                worker: field_u32(&v, "worker")?,
                attempt: field_u32(&v, "attempt")?,
                delay_us: field_u64(&v, "delay_us")?,
            },
            "admission" => Event::Admission {
                epoch: field_u32(&v, "epoch")?,
                depth: field_u64(&v, "depth")?,
                shed: field_u64(&v, "shed")?,
                admitted: field_u64(&v, "admitted")?,
            },
            other => return Err(format!("line {}: unknown event type {other:?}", lineno + 1)),
        };
        events.push(ev);
    }
    Ok(Timeline {
        header,
        events,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        Timeline {
            header: Header {
                workers: 2,
                k: 32,
                nnz: 10_000,
                strategy: "q-only".into(),
                streams: 1,
                backend: "avx2+fma+f16c".into(),
                schedule: "stripe".into(),
            },
            events: vec![
                Event::Phase {
                    epoch: 0,
                    worker: 0,
                    phase: Phase::Pull,
                    start_us: 10,
                    dur_us: 5,
                },
                Event::Phase {
                    epoch: 0,
                    worker: 1,
                    phase: Phase::Comp,
                    start_us: 15,
                    dur_us: 900,
                },
                Event::Phase {
                    epoch: 0,
                    worker: 2,
                    phase: Phase::Sync,
                    start_us: 920,
                    dur_us: 4,
                },
                Event::Bytes {
                    epoch: 0,
                    dir: Dir::Pull,
                    bytes: 2_560_000,
                },
                Event::Straggler {
                    epoch: 1,
                    worker: 1,
                },
                Event::WorkerLost {
                    epoch: 2,
                    worker: 0,
                },
                Event::Rollback {
                    epoch: 3,
                    lr_scale: 0.25,
                },
                Event::Checkpoint {
                    epoch: 4,
                    dur_us: 1_200,
                },
                Event::EpochEnd {
                    epoch: 0,
                    wall_us: 930,
                },
                Event::NetRetry {
                    epoch: 1,
                    worker: 0,
                    cause: NetCause::Corrupt,
                    delay_us: 5_000,
                    bytes: 4_096,
                },
                Event::Reconnect {
                    epoch: 2,
                    worker: 1,
                    attempt: 2,
                    delay_us: 10_000,
                },
                Event::Admission {
                    epoch: 0,
                    depth: 17,
                    shed: 3,
                    admitted: 32,
                },
            ],
            dropped: 1,
        }
    }

    #[test]
    fn roundtrip_preserves_every_event() {
        let t = sample();
        let text = to_jsonl(&t);
        let back = parse(&text).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn header_line_is_first_and_versioned() {
        let text = to_jsonl(&sample());
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"type\":\"header\""));
        assert!(first.contains(&format!("\"format\":{FORMAT_VERSION}")));
    }

    #[test]
    fn rejects_unknown_format_and_bad_lines() {
        let t = sample();
        let text = to_jsonl(&t).replace("\"format\":1", "\"format\":999");
        assert!(parse(&text).is_err());
        let mut text = to_jsonl(&t);
        text.push_str("{\"type\":\"martian\"}\n");
        assert!(parse(&text).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let t = sample();
        let text = to_jsonl(&t).replace('\n', "\n\n");
        assert_eq!(parse(&text).unwrap(), t);
    }
}
