//! Single-writer event rings.
//!
//! Each lane (one per worker, plus one for the server/orchestrator) owns a
//! pre-allocated ring that exactly one thread writes at any moment, so the
//! hot path is a bounds check and a `Vec::push` into reserved capacity — no
//! lock, no allocation, no atomic RMW except the overflow counter on the
//! (cold) full-ring path.
//!
//! # Safety protocol
//!
//! The `UnsafeCell` is sound under the same discipline the Hogwild kernels
//! use (see `hcc-sgd`'s shared-factor safety argument):
//!
//! 1. During an epoch, lane `w` is written only by the thread running worker
//!    `w`'s closure; the server lane only by the orchestrator thread.
//! 2. Worker threads are joined (`std::thread::scope`) before the
//!    orchestrator touches worker lanes again, so successive writers — and
//!    the final drain — are ordered by the scope join's happens-before edge.
//! 3. Draining takes `&mut self`, which the borrow checker proves exclusive.
//!
//! Violating (1) is a logic bug in the caller; the type is `pub(crate)` so
//! the discipline is enforced by this crate's only call sites.

use crate::event::Event;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity, single-writer event buffer.
pub(crate) struct Ring {
    buf: UnsafeCell<Vec<Event>>,
    dropped: AtomicU64,
}

// SAFETY: see the module-level protocol — at most one thread writes at a
// time, and cross-thread handoffs are ordered by thread::scope joins.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// A ring holding at most `capacity` events (allocated up front).
    pub fn with_capacity(capacity: usize) -> Ring {
        Ring {
            buf: UnsafeCell::new(Vec::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records an event; counts it as dropped when the ring is full.
    /// Never allocates (pushing below capacity cannot reallocate).
    pub fn push(&self, event: Event) {
        // SAFETY: single-writer protocol (module docs).
        let buf = unsafe { &mut *self.buf.get() };
        if buf.len() < buf.capacity() {
            buf.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events currently recorded (exclusive access).
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(self.buf.get_mut())
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(epoch: u32) -> Event {
        Event::EpochEnd { epoch, wall_us: 1 }
    }

    #[test]
    fn push_and_drain() {
        let mut r = Ring::with_capacity(8);
        r.push(ev(0));
        r.push(ev(1));
        let got = r.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].epoch(), 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops_without_reallocating() {
        let mut r = Ring::with_capacity(2);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.drain().len(), 2);
    }

    #[test]
    fn writes_across_scoped_threads_are_visible_after_join() {
        let mut r = Ring::with_capacity(64);
        std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || {
                for i in 0..10 {
                    r.push(ev(i));
                }
            });
        });
        assert_eq!(r.drain().len(), 10);
    }
}
