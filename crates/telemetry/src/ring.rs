//! Single-writer event rings.
//!
//! Each lane (one per worker, plus one for the server/orchestrator) owns a
//! pre-allocated ring that exactly one thread writes at any moment, so the
//! hot path is a bounds check and a `Vec::push` into reserved capacity — no
//! lock, no allocation, no atomic RMW except the overflow counter on the
//! (cold) full-ring path.
//!
//! # Safety protocol
//!
//! The `UnsafeCell` is sound under the same discipline the Hogwild kernels
//! use (see `hcc-sgd`'s shared-factor safety argument):
//!
//! 1. During an epoch, lane `w` is written only by the thread running worker
//!    `w`'s closure; the server lane only by the orchestrator thread.
//! 2. Worker threads are joined (`std::thread::scope`) before the
//!    orchestrator touches worker lanes again, so successive writers — and
//!    the final drain — are ordered by the scope join's happens-before edge.
//! 3. Draining takes `&mut self`, which the borrow checker proves exclusive.
//!
//! Violating (1) is a logic bug in the caller; the type is `pub(crate)` so
//! the discipline is enforced by this crate's only call sites.

use crate::event::Event;
use hcc_sync::{AtomicU64, Ordering};
use std::cell::UnsafeCell;

/// A fixed-capacity, single-writer event buffer.
pub(crate) struct Ring {
    // SHARED: buf — single-writer: only the lane-owning thread (enforced
    // by `owner` in debug builds) appends or drains; `dropped` is the one
    // cross-thread cell and is atomic.
    buf: UnsafeCell<Vec<Event>>,
    dropped: AtomicU64,
    /// Debug-only writer identity: 0 = unclaimed, otherwise a hashed
    /// `ThreadId` token of the thread that currently owns the lane. The
    /// first `push` claims the lane; [`Ring::adopt`] hands it over.
    #[cfg(debug_assertions)]
    owner: AtomicU64,
}

// SAFETY: see the module-level protocol — at most one thread writes at a
// time, and cross-thread handoffs are ordered by thread::scope joins.
unsafe impl Sync for Ring {}
// SAFETY: all fields are owned values (`UnsafeCell<Vec<_>>`, `AtomicU64`);
// moving the ring to another thread moves the whole buffer with it.
unsafe impl Send for Ring {}

impl Ring {
    /// A ring holding at most `capacity` events (allocated up front).
    pub fn with_capacity(capacity: usize) -> Ring {
        Ring {
            buf: UnsafeCell::new(Vec::with_capacity(capacity.max(1))),
            dropped: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            owner: AtomicU64::new(0),
        }
    }

    /// Declares the calling thread the lane's writer. Call only while
    /// holding the synchronization (scope join, mutex, channel) that
    /// orders this thread after the previous writer — the check below
    /// verifies the discipline, it cannot create it.
    pub fn adopt(&self) {
        // ordering: Relaxed — debug-only bookkeeping; the handoff edge the
        // caller must already hold is what orders the buffer accesses.
        #[cfg(debug_assertions)]
        self.owner.store(thread_token(), Ordering::Relaxed);
    }

    /// Asserts the single-writer protocol: the first writer claims the
    /// lane, and every later unadopted write must come from that thread.
    #[cfg(debug_assertions)]
    fn check_owner(&self) {
        let me = thread_token();
        // ordering: Relaxed — debug-only sanity check; a stale read can
        // only miss a violation, never invent one, and the protocol being
        // verified supplies the real happens-before edges.
        if let Err(current) =
            self.owner
                .compare_exchange(0, me, Ordering::Relaxed, Ordering::Relaxed)
        {
            assert_eq!(
                current, me,
                "telemetry lane written by a second thread without Ring::adopt — \
                 single-writer protocol violated (see module docs)"
            );
        }
    }

    /// Records an event; counts it as dropped when the ring is full.
    /// Never allocates (pushing below capacity cannot reallocate).
    pub fn push(&self, event: Event) {
        #[cfg(debug_assertions)]
        self.check_owner();
        // SAFETY: single-writer protocol (module docs).
        let buf = unsafe { &mut *self.buf.get() };
        if buf.len() < buf.capacity() {
            buf.push(event);
        } else {
            // ordering: Relaxed — sound because only the lane's single
            // writer ever increments (the RMW never races), and readers
            // either hold `&mut self` (`drain`) or run after the writer's
            // scope join — both full happens-before edges.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events currently recorded (exclusive access).
    pub fn drain(&mut self) -> Vec<Event> {
        // `&mut self` proves exclusivity, so the lane is unclaimed again.
        #[cfg(debug_assertions)]
        self.owner.store(0, Ordering::Relaxed); // ordering: Relaxed — debug-only
        std::mem::take(self.buf.get_mut())
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — read post-join (see the counter above); a
        // mid-epoch read is a fuzzy statistic at worst.
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A stable per-thread token for the debug owner check (hashed `ThreadId`,
/// forced odd so 0 stays free as the "unclaimed" sentinel).
#[cfg(debug_assertions)]
fn thread_token() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish() | 1
}

impl std::fmt::Debug for Ring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(epoch: u32) -> Event {
        Event::EpochEnd { epoch, wall_us: 1 }
    }

    #[test]
    fn push_and_drain() {
        let mut r = Ring::with_capacity(8);
        r.push(ev(0));
        r.push(ev(1));
        let got = r.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].epoch(), 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_counts_drops_without_reallocating() {
        let mut r = Ring::with_capacity(2);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.drain().len(), 2);
    }

    /// A second thread writing a claimed lane without `adopt` is a
    /// protocol violation; the debug owner check must fail fast.
    #[test]
    #[cfg(debug_assertions)]
    fn second_writer_without_adopt_panics() {
        let r = Ring::with_capacity(8);
        r.push(ev(0)); // main thread claims the lane
        let violated = std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.push(ev(1)))).is_err()
            })
            .join()
            .unwrap_or(false)
        });
        assert!(violated, "owner assertion should fire for a second writer");
    }

    /// `adopt` sanctions a writer handoff (here ordered by the spawn edge).
    #[test]
    fn adopt_hands_the_lane_to_a_new_writer() {
        let mut r = Ring::with_capacity(8);
        r.push(ev(0));
        std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || {
                r.adopt();
                r.push(ev(1));
            });
        });
        assert_eq!(r.drain().len(), 2);
    }

    /// Draining (exclusive access) releases ownership for the next writer.
    #[test]
    fn drain_releases_ownership() {
        let mut r = Ring::with_capacity(8);
        std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || r.push(ev(0)));
        });
        assert_eq!(r.drain().len(), 1);
        // The main thread claims the now-unowned lane without tripping the
        // owner assertion. (Drain took the buffer's capacity with it, so
        // the event itself lands on the drop counter — ownership is what
        // this test is about.)
        r.push(ev(1));
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn writes_across_scoped_threads_are_visible_after_join() {
        let mut r = Ring::with_capacity(64);
        std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || {
                for i in 0..10 {
                    r.push(ev(i));
                }
            });
        });
        assert_eq!(r.drain().len(), 10);
    }
}
