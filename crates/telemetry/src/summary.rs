//! Epoch breakdown and cost-model validation over a captured timeline.
//!
//! [`epoch_breakdown`] folds the raw span stream into per-epoch, per-worker
//! phase totals — the measured counterparts of Eq. 2's `t_pull`, `t_comp`,
//! `t_push` and Eq. 3's `t_sync`. [`validate_cost_model`] then checks the
//! paper's central modeling assumption: that a worker's compute time is
//! linear in its data fraction (`T_i_c = x_i · nnz · (16k+4) / B_i`) with a
//! per-worker constant `B_i`. It calibrates `B_i` from the first warm
//! epoch and scores how well that single constant predicts every later
//! epoch under
//! whatever partitions DP0/DP1/DP2 chose — small errors mean planning on
//! the model is sound on this machine, exactly the §4.3 argument.

use crate::event::{Dir, Event, Phase, Timeline};

/// Measured per-worker phase totals for one epoch, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTotals {
    /// Time pulling the feature matrix (`t_pull`).
    pub pull: f64,
    /// Time computing SGD updates (`t_comp`).
    pub comp: f64,
    /// Time pushing results (`t_push`).
    pub push: f64,
    /// Server time merging this worker's push (`t_sync` share).
    pub sync: f64,
}

impl PhaseTotals {
    /// `t_pull + t_comp + t_push + t_sync` — the worker's full epoch cost.
    pub fn total(&self) -> f64 {
        self.pull + self.comp + self.push + self.sync
    }
}

/// One epoch's measured breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochBreakdown {
    /// Epoch number.
    pub epoch: u32,
    /// Wall-clock time of the epoch, seconds (0 if no `EpochEnd` arrived).
    pub wall: f64,
    /// Per-worker phase totals, indexed by starting-fleet worker id.
    pub workers: Vec<PhaseTotals>,
    /// Bytes pulled over the wire this epoch.
    pub pull_bytes: u64,
    /// Bytes pushed over the wire this epoch.
    pub push_bytes: u64,
    /// Bytes re-sent by network-level RPC retries this epoch (0 on
    /// shared-memory transports, which never retransmit).
    pub retrans_bytes: u64,
}

/// Folds a timeline into per-epoch breakdowns, ordered by epoch number.
///
/// Sync spans are recorded by the server but tagged with the worker whose
/// push was being merged; they land in that worker's `sync` slot. Spans
/// from a rolled-back epoch attempt accumulate into the same epoch number
/// as the accepted retry — the timeline reports time actually spent.
pub fn epoch_breakdown(t: &Timeline) -> Vec<EpochBreakdown> {
    let workers = t.header.workers as usize;
    let mut epochs: Vec<EpochBreakdown> = Vec::new();
    let index_of = |epochs: &mut Vec<EpochBreakdown>, epoch: u32| -> usize {
        match epochs.binary_search_by_key(&epoch, |b| b.epoch) {
            Ok(i) => i,
            Err(i) => {
                epochs.insert(
                    i,
                    EpochBreakdown {
                        epoch,
                        wall: 0.0,
                        workers: vec![PhaseTotals::default(); workers],
                        pull_bytes: 0,
                        push_bytes: 0,
                        retrans_bytes: 0,
                    },
                );
                i
            }
        }
    };
    for ev in &t.events {
        match *ev {
            Event::Phase {
                epoch,
                worker,
                phase,
                dur_us,
                ..
            } => {
                let i = index_of(&mut epochs, epoch);
                let Some(slot) = epochs[i].workers.get_mut(worker as usize) else {
                    continue; // server-lane span without worker attribution
                };
                let secs = dur_us as f64 / 1e6;
                match phase {
                    Phase::Pull => slot.pull += secs,
                    Phase::Comp => slot.comp += secs,
                    Phase::Push => slot.push += secs,
                    Phase::Sync => slot.sync += secs,
                    // Serving queries are outside the training cost model;
                    // they have their own percentile summary in hcc-serve.
                    Phase::Query => {}
                }
            }
            Event::Bytes { epoch, dir, bytes } => {
                let i = index_of(&mut epochs, epoch);
                match dir {
                    Dir::Pull => epochs[i].pull_bytes += bytes,
                    Dir::Push => epochs[i].push_bytes += bytes,
                }
            }
            Event::EpochEnd { epoch, wall_us } => {
                let i = index_of(&mut epochs, epoch);
                epochs[i].wall = wall_us as f64 / 1e6;
            }
            Event::NetRetry { epoch, bytes, .. } => {
                let i = index_of(&mut epochs, epoch);
                epochs[i].retrans_bytes += bytes;
            }
            _ => {}
        }
    }
    epochs
}

/// Per-worker verdict of the cost-model validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// Worker index.
    pub worker: u32,
    /// Effective bandwidth `B_i` calibrated from the calibration epoch
    /// (the first warm one), bytes/s.
    pub bandwidth: f64,
    /// Mean measured `t_comp` over the predicted epochs, seconds.
    pub measured_comp: f64,
    /// Mean model-predicted `t_comp` over the same epochs, seconds.
    pub predicted_comp: f64,
    /// Mean relative error `|measured − predicted| / measured`.
    pub rel_error: f64,
}

/// The full measured-vs-model report.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelValidation {
    /// One row per worker.
    pub rows: Vec<ModelRow>,
    /// Mean of the per-worker relative errors.
    pub mean_error: f64,
    /// Worst per-worker relative error.
    pub worst_error: f64,
    /// Epochs used for prediction (everything after the calibration epoch).
    pub epochs_scored: usize,
}

/// Validates the Eq. 2 compute term against a measured timeline.
///
/// `partitions[e][i]` is worker `i`'s data fraction during the `e`-th
/// *recorded* epoch (acceptance order, matching `HccReport::
/// partition_history`). Calibrates `B_i = x_i·nnz·(16k+4) / t_comp` on the
/// first warm epoch (the second recorded one when three or more exist —
/// the cold first epoch would bias the bandwidth low), predicts `t_comp`
/// for every later epoch from its fraction, and reports per-worker
/// relative error. Returns `None` when fewer than two epochs are
/// available or shapes don't line up.
pub fn validate_cost_model(t: &Timeline, partitions: &[Vec<f64>]) -> Option<ModelValidation> {
    let breakdown = epoch_breakdown(t);
    let workers = t.header.workers as usize;
    let usable: Vec<(&EpochBreakdown, &Vec<f64>)> = breakdown
        .iter()
        .zip(partitions)
        .filter(|(b, x)| x.len() == workers && b.workers.len() == workers)
        .collect();
    if usable.len() < 2 {
        return None;
    }
    let bytes_per_update = 16.0 * t.header.k as f64 + 4.0;
    let traffic = t.header.nnz as f64 * bytes_per_update;

    // The very first epoch runs cold (page faults, cache warm-up, lazy
    // thread-pool spin-up) and would bias `B_i` low; when there are enough
    // epochs, calibrate on the first *warm* one and skip the cold epoch
    // entirely.
    let cal_idx = if usable.len() >= 3 { 1 } else { 0 };
    let (cal_break, cal_x) = usable[cal_idx];
    let mut rows = Vec::with_capacity(workers);
    for w in 0..workers {
        let t0 = cal_break.workers[w].comp;
        if t0 <= 0.0 || cal_x[w] <= 0.0 {
            return None; // a worker with no calibrated work can't be scored
        }
        let bandwidth = cal_x[w] * traffic / t0;
        let mut measured_sum = 0.0;
        let mut predicted_sum = 0.0;
        let mut err_sum = 0.0;
        let mut n = 0usize;
        for (b, x) in &usable[cal_idx + 1..] {
            let measured = b.workers[w].comp;
            if measured <= 0.0 {
                continue;
            }
            let predicted = x[w] * traffic / bandwidth;
            measured_sum += measured;
            predicted_sum += predicted;
            err_sum += (measured - predicted).abs() / measured;
            n += 1;
        }
        if n == 0 {
            return None;
        }
        rows.push(ModelRow {
            worker: w as u32,
            bandwidth,
            measured_comp: measured_sum / n as f64,
            predicted_comp: predicted_sum / n as f64,
            rel_error: err_sum / n as f64,
        });
    }
    let mean_error = rows.iter().map(|r| r.rel_error).sum::<f64>() / rows.len() as f64;
    let worst_error = rows.iter().map(|r| r.rel_error).fold(0.0, f64::max);
    Some(ModelValidation {
        rows,
        mean_error,
        worst_error,
        epochs_scored: usable.len() - 1 - cal_idx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Header;

    fn header(workers: u32) -> Header {
        Header {
            workers,
            k: 32,
            nnz: 1_000_000,
            strategy: "q-only".into(),
            streams: 1,
            backend: "scalar".into(),
            schedule: "stripe".into(),
        }
    }

    fn phase(epoch: u32, worker: u32, phase: Phase, dur_us: u64) -> Event {
        Event::Phase {
            epoch,
            worker,
            phase,
            start_us: 0,
            dur_us,
        }
    }

    #[test]
    fn breakdown_accumulates_phases_and_bytes() {
        let t = Timeline {
            header: header(2),
            events: vec![
                phase(0, 0, Phase::Pull, 100),
                phase(0, 0, Phase::Comp, 1_000),
                phase(0, 0, Phase::Comp, 500), // second span same phase
                phase(0, 1, Phase::Push, 200),
                phase(0, 0, Phase::Sync, 50),
                Event::Bytes {
                    epoch: 0,
                    dir: Dir::Pull,
                    bytes: 10,
                },
                Event::Bytes {
                    epoch: 0,
                    dir: Dir::Push,
                    bytes: 20,
                },
                Event::EpochEnd {
                    epoch: 0,
                    wall_us: 2_000,
                },
                Event::NetRetry {
                    epoch: 0,
                    worker: 0,
                    cause: crate::event::NetCause::Timeout,
                    delay_us: 100,
                    bytes: 30,
                },
                Event::NetRetry {
                    epoch: 0,
                    worker: 1,
                    cause: crate::event::NetCause::Corrupt,
                    delay_us: 200,
                    bytes: 12,
                },
                phase(1, 1, Phase::Comp, 700),
            ],
            dropped: 0,
        };
        let b = epoch_breakdown(&t);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].epoch, 0);
        assert!((b[0].workers[0].comp - 0.0015).abs() < 1e-12);
        assert!((b[0].workers[0].pull - 0.0001).abs() < 1e-12);
        assert!((b[0].workers[0].sync - 0.00005).abs() < 1e-12);
        assert!((b[0].workers[1].push - 0.0002).abs() < 1e-12);
        assert_eq!(b[0].pull_bytes, 10);
        assert_eq!(b[0].push_bytes, 20);
        assert_eq!(b[0].retrans_bytes, 42, "net retries cumulate per epoch");
        assert_eq!(b[1].retrans_bytes, 0);
        assert!((b[0].wall - 0.002).abs() < 1e-12);
        assert!((b[1].workers[1].comp - 0.0007).abs() < 1e-12);
        assert!((b[0].workers[0].total() - 0.00165).abs() < 1e-12);
    }

    #[test]
    fn server_lane_spans_without_worker_are_ignored() {
        let t = Timeline {
            header: header(1),
            events: vec![phase(0, 5, Phase::Sync, 100)], // worker 5 of 1: dropped
            dropped: 0,
        };
        let b = epoch_breakdown(&t);
        assert_eq!(b[0].workers[0], PhaseTotals::default());
    }

    #[test]
    fn perfect_linear_scaling_validates_exactly() {
        // t_comp proportional to x: epoch 0 x=(0.5,0.5) comp=(1s,2s);
        // epoch 1 x=(0.25,0.75) comp=(0.5s,3s). Model error must be ~0.
        let t = Timeline {
            header: header(2),
            events: vec![
                phase(0, 0, Phase::Comp, 1_000_000),
                phase(0, 1, Phase::Comp, 2_000_000),
                phase(1, 0, Phase::Comp, 500_000),
                phase(1, 1, Phase::Comp, 3_000_000),
            ],
            dropped: 0,
        };
        let partitions = vec![vec![0.5, 0.5], vec![0.25, 0.75]];
        let v = validate_cost_model(&t, &partitions).unwrap();
        assert_eq!(v.rows.len(), 2);
        assert_eq!(v.epochs_scored, 1);
        assert!(v.worst_error < 1e-9, "err {}", v.worst_error);
        // Worker 0 calibrated bandwidth: 0.5 · 1e6 · 516 / 1s.
        assert!((v.rows[0].bandwidth - 0.5 * 1e6 * 516.0).abs() < 1.0);
    }

    #[test]
    fn mispredicted_worker_is_scored_not_hidden() {
        // Worker 1's epoch-1 time is 2× what linearity predicts.
        let t = Timeline {
            header: header(2),
            events: vec![
                phase(0, 0, Phase::Comp, 1_000_000),
                phase(0, 1, Phase::Comp, 1_000_000),
                phase(1, 0, Phase::Comp, 1_000_000),
                phase(1, 1, Phase::Comp, 2_000_000),
            ],
            dropped: 0,
        };
        let partitions = vec![vec![0.5, 0.5], vec![0.5, 0.5]];
        let v = validate_cost_model(&t, &partitions).unwrap();
        assert!(v.rows[0].rel_error < 1e-9);
        assert!((v.rows[1].rel_error - 0.5).abs() < 1e-9);
        assert!((v.worst_error - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cold_first_epoch_is_skipped_when_enough_epochs_exist() {
        // Epoch 0 is 3× slower than linearity (cold caches); epochs 1 and 2
        // scale perfectly. With 3 epochs the calibration moves to epoch 1,
        // so the model validates exactly — epoch 0 is not even scored.
        let t = Timeline {
            header: header(1),
            events: vec![
                phase(0, 0, Phase::Comp, 3_000_000),
                phase(1, 0, Phase::Comp, 1_000_000),
                phase(2, 0, Phase::Comp, 1_000_000),
            ],
            dropped: 0,
        };
        let partitions = vec![vec![1.0], vec![1.0], vec![1.0]];
        let v = validate_cost_model(&t, &partitions).unwrap();
        assert_eq!(v.epochs_scored, 1);
        assert!(v.worst_error < 1e-9, "err {}", v.worst_error);
        // With only epochs 0 and 1, the cold epoch must calibrate (there is
        // nothing else) and the 3× discrepancy surfaces as error.
        let t2 = Timeline {
            header: header(1),
            events: vec![
                phase(0, 0, Phase::Comp, 3_000_000),
                phase(1, 0, Phase::Comp, 1_000_000),
            ],
            dropped: 0,
        };
        let v2 = validate_cost_model(&t2, &partitions[..2]).unwrap();
        assert!(v2.worst_error > 0.5);
    }

    #[test]
    fn too_few_epochs_or_mismatched_shapes_yield_none() {
        let t = Timeline {
            header: header(2),
            events: vec![
                phase(0, 0, Phase::Comp, 1_000),
                phase(0, 1, Phase::Comp, 1_000),
            ],
            dropped: 0,
        };
        assert!(validate_cost_model(&t, &[vec![0.5, 0.5]]).is_none());
        assert!(validate_cost_model(&t, &[vec![0.5, 0.5], vec![1.0]]).is_none());
    }
}
