//! A minimal JSON reader.
//!
//! The workspace builds offline against vendored shims, and no `serde_json`
//! is available — this module supplies the small, strict subset the repo
//! needs: parsing bench result files (`results/BENCH_*.json`) and telemetry
//! JSONL lines back into typed values. It is a plain recursive-descent
//! parser over the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null); it does not aim for serde's
//! performance, only for correctness on machine-generated input.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are exact).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Obj(members)),
                other => return Err(format!("expected ',' or '}}', found '{}'", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Arr(items)),
                other => return Err(format!("expected ',' or ']', found '{}'", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be followed
                        // by an escaped low surrogate.
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            self.eat(b'\\')?;
                            self.eat(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c).ok_or("invalid surrogate pair")?
                        } else {
                            char::from_u32(code).ok_or("invalid \\u escape")?
                        };
                        out.push(ch);
                    }
                    other => return Err(format!("invalid escape '\\{}'", other as char)),
                },
                b if b < 0x20 => return Err("unescaped control character in string".into()),
                b => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid UTF-8 in string".into()),
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump()?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char).to_digit(16).ok_or("invalid hex digit")?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-ascii bytes in number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Escapes a string for embedding in JSON output (adds the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}, null], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn decodes_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\n\t\"\\ é 😀""#).unwrap(),
            Value::Str("a\n\t\"\\ é 😀".into())
        );
        assert_eq!(parse("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        for s in ["plain", "with \"quotes\"", "tab\tnew\nline", "ünïcödé 🚀"] {
            assert_eq!(parse(&escape(s)).unwrap(), Value::Str(s.into()));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"unterminated", "1 2", "{'a': 1}", "nul", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn u64_conversion_is_strict() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
