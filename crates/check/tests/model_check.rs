//! Stage 2: the deterministic interleaving suite.
//!
//! For every protocol model: the shipped protocol must survive *every*
//! schedule within the preemption bound (exhaustively — `complete` must be
//! true), and the one-ordering-weakened mutant must fail. The mutation leg
//! is what gives the suite teeth: a future edit that weakens the real code
//! the same way will fail here the same way.
//!
//! Runs only under `--features model`:
//! `cargo test -p hcc-check --features model`.

#![cfg(feature = "model")]

use hcc_check::models;
use hcc_sync::{explore_seeded, Config};

fn cfg(seed: u64) -> Config {
    Config {
        seed,
        ..Config::default()
    }
}

#[test]
fn all_five_protocols_pass_exhaustively() {
    for (name, body) in models::all() {
        let stats = explore_seeded(cfg(0x5EED), body(false))
            .unwrap_or_else(|v| panic!("model `{name}` violated: {v}"));
        assert!(
            stats.complete,
            "model `{name}` not exhausted within the schedule cap: {stats:?}"
        );
        assert!(
            stats.schedules > 1,
            "model `{name}` explored a single schedule — it is not concurrent"
        );
    }
}

#[test]
fn every_weakened_mutant_is_caught() {
    for (name, body) in models::all() {
        let v = explore_seeded(cfg(0x5EED), body(true)).expect_err(&format!(
            "model `{name}`: weakening one ordering must produce a violation"
        ));
        assert!(
            !v.trace.is_empty() || v.schedule >= 1,
            "model `{name}`: violation must carry a replayable trace: {v}"
        );
    }
}

/// Same seed ⇒ byte-identical failure (schedule index, trace, message);
/// the trace replays to the same violation. This is the determinism
/// contract recorded in results/README.md.
#[test]
fn failures_are_deterministic_and_replayable() {
    for (name, body) in models::all() {
        let v1 = explore_seeded(cfg(42), body(true)).expect_err("mutant fails");
        let v2 = explore_seeded(cfg(42), body(true)).expect_err("mutant fails");
        assert_eq!(
            v1.trace, v2.trace,
            "model `{name}`: trace not deterministic"
        );
        assert_eq!(
            v1.schedule, v2.schedule,
            "model `{name}`: schedule index not deterministic"
        );
        assert_eq!(
            v1.message, v2.message,
            "model `{name}`: message not deterministic"
        );
        let replay = Config {
            replay: Some(v1.trace.clone()),
            ..cfg(42)
        };
        let vr = explore_seeded(replay, body(true))
            .expect_err("replaying the recorded trace must reproduce the violation");
        assert_eq!(
            vr.message, v1.message,
            "model `{name}`: replay diverged from the recorded failure"
        );
    }
}

/// Different seeds reorder exploration but never change the verdict.
#[test]
fn verdicts_are_seed_independent() {
    for (name, body) in models::all() {
        for seed in [1u64, 99, 0xDEAD] {
            assert!(
                explore_seeded(cfg(seed), body(false)).is_ok(),
                "model `{name}` seed {seed}: clean protocol flagged"
            );
            assert!(
                explore_seeded(cfg(seed), body(true)).is_err(),
                "model `{name}` seed {seed}: mutant missed"
            );
        }
    }
}
