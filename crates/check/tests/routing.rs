//! Guard: the set of `hcc-sync`-routed modules must not shrink.
//!
//! Stage 2's model suite only speaks for the real tree while the modules
//! it models keep importing their synchronization from the facade. This
//! test (and the same check inside the `hcc-check` binary, which CI runs
//! with `--deny`) fails when a routed file disappears or drops its
//! `use hcc_sync` import without the routing set being updated.

use std::path::Path;

#[test]
fn routed_module_set_has_not_shrunk() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let violations = hcc_check::routing_violations(root);
    assert!(
        violations.is_empty(),
        "hcc-sync routing set shrank:\n{}",
        violations.join("\n")
    );
    assert!(
        hcc_check::ROUTED_MODULES.len() >= 6,
        "the routed-module floor is 6 (five modeled protocols + the SIMD backend cache)"
    );
}
