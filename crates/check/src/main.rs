//! CLI for the two-stage concurrency verifier.
//!
//! ```text
//! cargo run -p hcc-check -- [--deny] [--root DIR] [--allow FILE] [--verbose]
//! ```
//!
//! Stage 1 runs here: the full `hcc-lint` rule set R1–R8 (R6 cross-file
//! Release/Acquire pairing, R7 SHARED-cell annotations, R8 SeqCst /
//! `static mut` ban) plus the `hcc-sync` routing guard. Stage 2 — the
//! deterministic interleaving suite — runs as
//! `cargo test -p hcc-check --features model`.

#![deny(unsafe_op_in_unsafe_fn)]

use hcc_lint::Allowlist;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut verbose = false;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--verbose" => verbose = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "hcc-check: two-stage concurrency verifier.\n\
                     Stage 1 (this binary): hcc-lint rules R1-R8 + hcc-sync routing guard.\n\
                     Stage 2 (interleaving suite): cargo test -p hcc-check --features model\n\n\
                     USAGE: hcc-check [--deny] [--root DIR] [--allow FILE] [--verbose]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("hcc-check: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("hcc-check: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let allow_file = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));
    let allow = match std::fs::read_to_string(&allow_file) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };

    let report = match hcc_lint::run(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hcc-check: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    if verbose {
        for v in &report.suppressed {
            println!("(suppressed) {v}");
        }
    }

    let routing = hcc_check::routing_violations(&root);
    for r in &routing {
        println!("[ROUTE] {r}");
    }

    let total = report.violations.len() + routing.len();
    println!(
        "hcc-check: stage 1 — {} file(s) scanned, {} violation(s) ({} lint + {} routing), \
         {} suppressed; stage 2 runs via `cargo test -p hcc-check --features model`",
        report.files_scanned,
        total,
        report.violations.len(),
        routing.len(),
        report.suppressed.len()
    );

    if deny && total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks up from the current directory to the first dir holding both a
/// `Cargo.toml` and a `crates/` dir.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
