//! `hcc-check`: the two-stage concurrency verifier.
//!
//! The workspace's lock-free cores rest on hand-argued protocols; this
//! crate machine-checks them in two complementary ways (DESIGN.md §15):
//!
//! * **Stage 1 — static protocol rules.** The `hcc-check` binary runs the
//!   full `hcc-lint` rule set, which PR 10 extends with cross-file
//!   protocol rules: R6 (every `Release` store pairs with an
//!   `Acquire`/`AcqRel` read of the same atomic field somewhere in the
//!   crate), R7 (`unsafe` raw-pointer/`UnsafeCell` regions carry a
//!   `// SHARED:` comment naming the cells they touch, and the named
//!   cells have an explicitly-shared type), and R8 (no new `SeqCst`, no
//!   new `static mut` — not allowlistable). It also guards the routing
//!   set: the modules in [`ROUTED_MODULES`] must keep importing their
//!   synchronization from `hcc-sync`, or the model suite silently stops
//!   covering them.
//! * **Stage 2 — deterministic interleaving exploration.** Under
//!   `--features model`, the `models` module holds small extracted models of the
//!   five protocols (telemetry ring handoff, heartbeat board, serve
//!   snapshot swap, admission capacity + merger election, delta-base
//!   publish) written against the `hcc_sync` facade. The suite in
//!   `tests/model_check.rs` exhausts their interleavings (bounded
//!   preemption, seeded deterministic order) and additionally *weakens*
//!   one ordering per model to prove the checker would catch the
//!   regression.

#![deny(unsafe_op_in_unsafe_fn)]

use std::path::Path;

#[cfg(feature = "model")]
pub mod models;

/// The modules whose synchronization is routed through `hcc-sync`, each
/// with a model in the `models` module (or, for the SIMD backend cache, covered by
/// the racy-init argument R2 documents). CI fails if this set shrinks:
/// every file must exist and keep importing `hcc_sync`.
pub const ROUTED_MODULES: &[&str] = &[
    "crates/telemetry/src/ring.rs",
    "crates/core/src/supervisor.rs",
    "crates/core/src/server.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/admission.rs",
    "crates/sgd/src/simd.rs",
];

/// Checks the routing guard at `root`; returns one message per breach.
pub fn routing_violations(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for rel in ROUTED_MODULES {
        let path = root.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                if !text.contains("use hcc_sync") {
                    out.push(format!(
                        "{rel}: no `use hcc_sync` import — the module left the model-checked \
                         routing set (re-route it or update hcc-check's ROUTED_MODULES with a \
                         replacement model)"
                    ));
                }
            }
            Err(_) => out.push(format!(
                "{rel}: file missing — the model-checked routing set shrank (update \
                 hcc-check's ROUTED_MODULES alongside the refactor)"
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_guard_passes_on_this_tree() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let v = routing_violations(root);
        assert!(v.is_empty(), "routing guard tripped:\n{}", v.join("\n"));
    }

    #[test]
    fn routing_guard_reports_missing_files() {
        let v = routing_violations(Path::new("/nonexistent-hcc-root"));
        assert_eq!(v.len(), ROUTED_MODULES.len());
        assert!(v[0].contains("missing"));
    }
}
