//! Model: sharded-server delta-base publication.
//!
//! Real code: `crates/core/src/server.rs`. A shard publishes successive
//! base snapshots; pushes encode deltas against the base sequence they
//! read, so a consumer that observes base seq `n` must see the payload
//! that belongs to `n` — and the sequence it observes must never move
//! backwards, or delta reconstruction would apply rows against the wrong
//! base.
//!
//! **Invariants:** the published seq is monotone from any single
//! consumer's viewpoint, and a consumer observing the final seq sees the
//! matching payload.
//!
//! **Weakened:** the seq publish drops to `Relaxed`; the payload read
//! loses its happens-before edge and races with the publisher.

use hcc_sync::{spawn, Arc, AtomicU64, MCell, Ordering};

pub fn body(weakened: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let base_val = Arc::new(MCell::new("delta.base_val", 0u64));
        let base_seq = Arc::new(AtomicU64::new(0));

        let publisher = {
            let base_val = Arc::clone(&base_val);
            let base_seq = Arc::clone(&base_seq);
            spawn(move || {
                for n in 1..=2u64 {
                    base_val.write(n);
                    if weakened {
                        // ordering: Relaxed — MUTATION under test: the seq
                        // no longer publishes the payload it numbers.
                        base_seq.store(n, Ordering::Relaxed);
                    } else {
                        // ordering: Release — seq `n` publishes payload
                        // `n`, pairing with the consumer's Acquire.
                        base_seq.store(n, Ordering::Release);
                    }
                }
            })
        };

        // ordering: Acquire — pairs with the publisher's Release stores.
        let s1 = base_seq.load(Ordering::Acquire);
        if s1 == 2 {
            // Final base observed: its payload must be the matching one.
            assert_eq!(base_val.read(), 2, "delta base payload mismatch at seq 2");
        }
        // ordering: Acquire — second observation for the monotonicity check.
        let s2 = base_seq.load(Ordering::Acquire);
        assert!(s2 >= s1, "published base seq went backwards: {s1} -> {s2}");
        publisher.join();
    }
}

pub fn boxed_body(weakened: bool) -> super::ModelBody {
    Box::new(body(weakened))
}
