//! Model: admission queue backpressure + last-worker merger election.
//!
//! Real code: `crates/serve/src/admission.rs`. Two protocols share the
//! pipeline: (a) `submit` checks-then-enqueues under one mutex hold, so
//! the queue never exceeds `capacity`; (b) each shard worker publishes its
//! partial heap, then decrements the job's `remaining` counter with
//! `AcqRel` — the worker that brings it to zero becomes the merger, and
//! the AcqRel edge chain guarantees the merger sees every partial.
//!
//! **Invariants:** queue depth never exceeds capacity (cap = 1 here), and
//! the elected merger observes both partials in full.
//!
//! **Weakened:** the `remaining` decrement drops to `Relaxed`; the merger
//! reads the other worker's partial without a happens-before edge and the
//! checker reports the race — the exact bug the AcqRel comment in
//! `merge_and_respond`'s caller guards against.

use hcc_sync::{spawn, Arc, AtomicUsize, MCell, Mutex, Ordering};

const CAPACITY: usize = 1;

pub fn body(weakened: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        // (len, max_len_seen): mutated only under the lock.
        let queue = Arc::new(Mutex::new((0usize, 0usize)));
        let partial_a = Arc::new(MCell::new("admission.partial_a", 0u64));
        let partial_b = Arc::new(MCell::new("admission.partial_b", 0u64));
        let remaining = Arc::new(AtomicUsize::new(2));

        let mut handles = Vec::new();
        for w in 0..2u64 {
            let queue = Arc::clone(&queue);
            let partial_a = Arc::clone(&partial_a);
            let partial_b = Arc::clone(&partial_b);
            let remaining = Arc::clone(&remaining);
            handles.push(spawn(move || {
                // Bounded admission: check-then-enqueue under ONE hold.
                {
                    let mut q = queue.lock();
                    if q.0 < CAPACITY {
                        q.0 += 1;
                        q.1 = q.1.max(q.0);
                    } // else: shed at the door, exactly like submit()
                }
                // Publish my partial, then decrement; last one merges.
                if w == 0 {
                    partial_a.write(1);
                } else {
                    partial_b.write(2);
                }
                let last = if weakened {
                    // ordering: Relaxed — MUTATION under test: the merger
                    // election loses its publish/consume edge.
                    remaining.fetch_sub(1, Ordering::Relaxed) == 1
                } else {
                    // ordering: AcqRel — decrement publishes my partial
                    // (Release) and the final decrement consumes every
                    // earlier one (Acquire), like the real job counter.
                    remaining.fetch_sub(1, Ordering::AcqRel) == 1
                };
                if last {
                    let sum = partial_a.read() + partial_b.read();
                    assert_eq!(sum, 3, "merger is missing a partial (sum {sum})");
                }
            }));
        }
        for h in handles {
            h.join();
        }
        let q = queue.lock();
        assert!(
            q.1 <= CAPACITY,
            "admission exceeded capacity: max depth {} > {CAPACITY}",
            q.1
        );
    }
}

pub fn boxed_body(weakened: bool) -> super::ModelBody {
    Box::new(body(weakened))
}
