//! Model: single-writer telemetry ring lane handoff.
//!
//! Real code: `crates/telemetry/src/ring.rs`. A lane's buffer is an
//! `UnsafeCell<Vec<Event>>` written by exactly one thread; the drain (and
//! any writer handoff) happens only across a synchronization edge the
//! caller supplies. The model reduces the buffer to two plain slots plus a
//! published length: the writer fills both slots and publishes the length
//! with Release; the drainer that observes the published length reads the
//! slots.
//!
//! **Invariant:** a drainer that observes `len == 2` reads both slots
//! fully written — no torn ring read.
//!
//! **Weakened:** the length publish drops to `Relaxed`, severing the
//! happens-before edge; the slot reads become data races (the model-world
//! rendering of a torn read).

use hcc_sync::{spawn, Arc, AtomicU64, MCell, Ordering};

pub fn body(weakened: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let slot_a = Arc::new(MCell::new("ring.slot_a", 0u32));
        let slot_b = Arc::new(MCell::new("ring.slot_b", 0u32));
        let len = Arc::new(AtomicU64::new(0));

        let writer = {
            let slot_a = Arc::clone(&slot_a);
            let slot_b = Arc::clone(&slot_b);
            let len = Arc::clone(&len);
            spawn(move || {
                slot_a.write(11);
                slot_b.write(22);
                if weakened {
                    // ordering: Relaxed — MUTATION under test: drops the
                    // publish edge; the checker must catch the torn read.
                    len.store(2, Ordering::Relaxed);
                } else {
                    // ordering: Release — publishes both slot writes to the
                    // drainer's Acquire load below (the model stand-in for
                    // the scope-join edge the real ring relies on).
                    len.store(2, Ordering::Release);
                }
            })
        };

        // ordering: Acquire — pairs with the writer's Release publish.
        if len.load(Ordering::Acquire) == 2 {
            assert_eq!(slot_a.read(), 11, "torn ring read: slot_a");
            assert_eq!(slot_b.read(), 22, "torn ring read: slot_b");
        }
        writer.join();
    }
}

pub fn boxed_body(weakened: bool) -> super::ModelBody {
    Box::new(body(weakened))
}
