//! Extracted interleaving models of the workspace's five lock-free
//! protocols.
//!
//! Each module distills one real protocol to the handful of shared cells
//! and ordering edges its safety argument actually rests on, states the
//! invariant as an assertion, and exposes `body(weakened)`:
//!
//! * `weakened == false` — the protocol as shipped; the explorer must
//!   exhaust every schedule without a violation.
//! * `weakened == true` — exactly one ordering (or one critical-section
//!   boundary) is weakened; the explorer must find a violating schedule.
//!   This is the mutation test proving the checker has teeth: if a future
//!   edit weakens the real code the same way, the suite fails the same way.
//!
//! | model | real code | invariant |
//! |-------|-----------|-----------|
//! | [`ring`] | `crates/telemetry/src/ring.rs` | no torn ring read across a lane handoff |
//! | [`heartbeat`] | `crates/core/src/supervisor.rs` | an observed beat implies consistent worker stats — no false `dead` mark with settled state |
//! | [`snapshot`] | `crates/serve/src/engine.rs` | a query never sees a mixed P/Q snapshot across a reload |
//! | [`admission`] | `crates/serve/src/admission.rs` | queue depth never exceeds capacity; exactly one merger sees every partial |
//! | [`delta_base`] | `crates/core/src/server.rs` | published base seq is monotone and a consumer at seq `n` sees the matching payload |

pub mod admission;
pub mod delta_base;
pub mod heartbeat;
pub mod ring;
pub mod snapshot;

/// A model's test body, ready to hand to `hcc_sync::model::explore`.
pub type ModelBody = Box<dyn Fn() + Send + Sync>;

/// Constructor taking `weakened` and returning the body to explore.
pub type ModelCtor = fn(bool) -> ModelBody;

/// `(name, body-constructor)` for every model, for suite-wide loops.
pub fn all() -> Vec<(&'static str, ModelCtor)> {
    vec![
        ("ring", ring::boxed_body),
        ("heartbeat", heartbeat::boxed_body),
        ("snapshot", snapshot::boxed_body),
        ("admission", admission::boxed_body),
        ("delta_base", delta_base::boxed_body),
    ]
}
