//! Model: serve-engine snapshot swap.
//!
//! Real code: `crates/serve/src/engine.rs`. The live model is one
//! `Arc<ServedModel>` behind an `RwLock`; `reload` replaces the whole Arc
//! in a single write-critical-section, so a query (read lock) sees either
//! the old snapshot or the new one — never a mix of old P with new Q.
//! The model tracks the P and Q generation numbers as the lock-protected
//! payload.
//!
//! **Invariant:** a reader never observes a mixed P/Q view
//! (`p_gen != q_gen`).
//!
//! **Weakened:** the reload splits into two write critical sections (P
//! swapped, lock released, Q swapped) — the textbook broken "update in
//! place" a future refactor could introduce; a reader between them sees
//! the mixed view and the checker reports it.

use hcc_sync::{spawn, Arc, RwLock};

pub fn body(weakened: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        // (p_gen, q_gen): both move 0 → 1 on reload.
        let snap = Arc::new(RwLock::new((0u64, 0u64)));

        let reloader = {
            let snap = Arc::clone(&snap);
            spawn(move || {
                if weakened {
                    // MUTATION under test: two critical sections expose a
                    // half-swapped snapshot.
                    {
                        let mut g = snap.write();
                        g.0 = 1;
                    }
                    {
                        let mut g = snap.write();
                        g.1 = 1;
                    }
                } else {
                    // The real reload: one atomic whole-snapshot swap.
                    let mut g = snap.write();
                    g.0 = 1;
                    g.1 = 1;
                }
            })
        };

        {
            let g = snap.read();
            assert_eq!(g.0, g.1, "mixed P/Q snapshot view: p={} q={}", g.0, g.1);
        }
        reloader.join();
    }
}

pub fn boxed_body(weakened: bool) -> super::ModelBody {
    Box::new(body(weakened))
}
