//! Model: heartbeat board beat/classification pairing.
//!
//! Real code: `crates/core/src/supervisor.rs`. A worker finishes an epoch,
//! records its compute-time statistic, then stamps its beat with Release;
//! the supervisor classifies workers at the epoch boundary from an Acquire
//! read of the beat. The documented contract is exactly the edge under
//! test: *a supervisor that sees the beat for epoch `e` also sees every
//! write the worker made computing epoch `e`*.
//!
//! **Invariant:** an observed beat implies the worker's stats are settled
//! (and the worker is therefore never classified dead with half-written
//! state behind it).
//!
//! **Weakened:** the beat store drops to `Relaxed`; the supervisor's stat
//! read becomes a data race — the checker's rendering of classifying from
//! unsettled state.

use hcc_sync::{spawn, Arc, AtomicU64, MCell, Ordering};

pub fn body(weakened: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let stat = Arc::new(MCell::new("heartbeat.compute_us", 0u64));
        let beat = Arc::new(AtomicU64::new(0));

        let worker = {
            let stat = Arc::clone(&stat);
            let beat = Arc::clone(&beat);
            spawn(move || {
                stat.write(7);
                if weakened {
                    // ordering: Relaxed — MUTATION under test: the beat no
                    // longer publishes the stat write.
                    beat.store(1, Ordering::Relaxed);
                } else {
                    // ordering: Release — pairs with the supervisor's
                    // Acquire below, exactly like HeartbeatBoard::beat.
                    beat.store(1, Ordering::Release);
                }
            })
        };

        // ordering: Acquire — pairs with the worker's Release beat, like
        // HeartbeatBoard::has_beat.
        let beaten = beat.load(Ordering::Acquire) > 0;
        if beaten {
            // The classifier consumes the worker's stats only because the
            // beat promised they are settled.
            assert_eq!(stat.read(), 7, "observed beat with unsettled stats");
        }
        // No beat observed ⇒ the supervisor may mark the worker dead but
        // must not touch its stats; nothing to read on this branch.
        worker.join();
    }
}

pub fn boxed_body(weakened: bool) -> super::ModelBody {
    Box::new(body(weakened))
}
