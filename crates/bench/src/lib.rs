//! Shared plumbing for the experiment binaries (`src/bin/fig*_*.rs`,
//! `src/bin/table*_*.rs`) that regenerate the paper's tables and figures,
//! and for the Criterion microbenches under `benches/`.
//!
//! Run an experiment with e.g.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin table4_power
//! ```
//!
//! Each binary prints the paper's reported values next to ours so the
//! *shape* comparison (who wins, by what factor) is immediate; the full
//! paper-vs-measured record lives in `EXPERIMENTS.md`.

#![deny(unsafe_op_in_unsafe_fn)]

use hcc_hetsim::{
    cost_model_for, standalone_times, virtual_measure_total, worker_classes, Platform, SimConfig,
    Workload,
};
use hcc_partition::{PartitionPlan, PartitionPlanner};

pub mod gate;

/// Plans a partition for a platform/workload/config triple on the virtual
/// platform (DP0 seed → DP1 → λ dispatch to DP2), exactly as the framework
/// does on real hardware. The measurement callback reports compute plus
/// *exposed* communication, so Strategy-3 pipelining (which hides GPU
/// transfers but not plain-CPU ones) is visible to the balancer — Theorem 1
/// with per-worker fixed costs.
pub fn plan(platform: &Platform, workload: &Workload, config: &SimConfig) -> PartitionPlan {
    let model = cost_model_for(platform, workload, config);
    PartitionPlanner::default().plan(
        &model,
        &standalone_times(platform, workload),
        &worker_classes(platform),
        virtual_measure_total(platform, workload, config),
    )
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{:<width$}", cell, width = widths[c.min(cols - 1)]))
            .collect();
        parts.join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}s")
    } else if s >= 0.1 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Formats updates/s in millions.
pub fn fmt_mups(rate: f64) -> String {
    format!("{:.0}M", rate / 1e6)
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.0}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::DatasetProfile;

    #[test]
    fn plan_produces_valid_partition() {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&DatasetProfile::netflix());
        let p = plan(&platform, &wl, &SimConfig::default());
        assert_eq!(p.fractions.len(), 4);
        assert!((p.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(12.34), "12.3s");
        assert_eq!(fmt_secs(1.234), "1.23s");
        assert_eq!(fmt_secs(0.012), "12.0ms");
        assert_eq!(fmt_mups(1.5e8), "150M");
        assert_eq!(fmt_pct(0.861), "86%");
    }
}
