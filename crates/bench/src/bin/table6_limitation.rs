//! Table 6 — the MovieLens-20m limitation: adding a second GPU halves the
//! compute time but the near-square matrix keeps communication constant,
//! so the total barely moves (§4.6).
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin table6_limitation
//! ```

use hcc_bench::{fmt_secs, plan, print_table};
use hcc_hetsim::{simulate_training, Platform, ProcessorProfile, SimConfig, Workload};
use hcc_sparse::DatasetProfile;

fn main() {
    let profile = DatasetProfile::movielens_20m();
    let wl = Workload::from_profile(&profile);
    let cfg = SimConfig::default();
    let epochs = 20;

    let single = Platform::single(ProcessorProfile::rtx_2080_super());
    let pair = Platform::pair(
        ProcessorProfile::rtx_2080_super(),
        ProcessorProfile::rtx_2080(),
    );

    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for platform in [&single, &pair] {
        let p = plan(platform, &wl, &cfg);
        let sim = simulate_training(platform, &wl, &cfg, &p.fractions, epochs);
        let e = epochs as f64;
        for (w, t) in sim.epoch.totals.iter().enumerate() {
            rows.push(vec![
                platform.name.clone(),
                platform.worker_names()[w].to_string(),
                fmt_secs(t.pull * e),
                fmt_secs(t.compute * e),
                fmt_secs(t.push * e),
                fmt_secs(sim.total_time),
            ]);
        }
        totals.push(sim.total_time);
    }

    // The CuMF_SGD reference: the single 2080S with no framework at all.
    let standalone =
        wl.nnz as f64 * epochs as f64 / ProcessorProfile::rtx_2080_super().rates.movielens;
    rows.push(vec![
        "CuMF_SGD".into(),
        "RTX 2080S".into(),
        "n/a".into(),
        fmt_secs(standalone),
        "n/a".into(),
        fmt_secs(standalone),
    ]);

    print_table(
        "Table 6: MovieLens-20m 20-epoch cost (seconds; paper reports the same totals)",
        &["config", "worker", "pull", "compute", "push", "epoch"],
        &rows,
    );
    println!(
        "speedup from the 2nd GPU: {:.2}x (paper: 0.559s -> 0.449s = 1.24x over 20 epochs). The matrix is \
         near-square, so nnz/(m+n) = {:.0} < 10^3: communication ~ computation and extra \
         processors can't reduce it (§4.6).",
        totals[0] / totals[1],
        profile.nnz_per_dim(),
    );
}
