//! Quantized + norm-pruned serving benchmark: every (precision, pruning)
//! cell of the serving engine against the f32 exhaustive scan, with
//! measured recall against the f32 oracle.
//!
//! The catalogue reuses the serving bench's 4096 × 16384 (k = 64) profile
//! but scales item factor rows by a zipf-like popularity factor
//! `(1 + r)^-0.8` (row `r` in descending popularity): MF item-factor norms
//! track item popularity in real datasets, and norm skew is exactly the
//! structure the Cauchy–Schwarz pruning bound exploits. The f32 exhaustive
//! cell scans every item regardless of the factor distribution, so its
//! throughput — and the headline `speedup_best_vs_f32_exhaustive` ratio —
//! remains comparable to the uniform-catalogue `BENCH_serving.json`
//! numbers. The skew is recorded in the artifact (`catalogue` key).
//!
//! Per cell: best-of-`rounds` batch-256 throughput, nearest-rank
//! p50/p99/p999 over per-query amortized latencies, the measured pruning
//! skip rate, and recall@topk against [`hcc_serve::naive_top_k`] on the
//! same f32 factors (tie-tolerant: a returned item counts when its true
//! f32 score reaches the oracle's k-th score within 1e-4 relative).
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin serving_quant \
//!     [-- --shards N --quick --out FILE.json]
//! ```
//!
//! `--quick` shrinks to CI scale and retargets
//! `results/BENCH_serving_quant_quick.json`, the perf-gate baseline for
//! these cells. Schema: `results/README.md`.

use hcc_serve::{naive_top_k, Precision, ServeEngine, ServedModel};
use hcc_sgd::{dot, FactorMatrix};
use std::time::Instant;

/// Catalogue dimensions, full-size or `--quick`.
struct Params {
    users: usize,
    items: usize,
    k: usize,
    topk: usize,
    queries: usize,
    batch: usize,
}

const FULL: Params = Params {
    users: 4_096,
    items: 16_384,
    k: 64,
    topk: 10,
    queries: 2_048,
    batch: 256,
};

const QUICK: Params = Params {
    users: 1_024,
    items: 4_096,
    k: 32,
    topk: 10,
    queries: 512,
    batch: 256,
};

/// Popularity skew applied to item row `r`: zipf-like with exponent 0.8.
fn popularity(r: usize) -> f32 {
    (1.0 + r as f32).powf(-0.8)
}

struct Cell {
    precision: Precision,
    pruned: bool,
    queries_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    recall: f64,
    skip_rate: f64,
}

fn percentiles(lat_us: &mut [f64]) -> (f64, f64, f64) {
    lat_us.sort_by(f64::total_cmp);
    let pick = |p: f64| lat_us[((lat_us.len() as f64 * p) as usize).min(lat_us.len() - 1)];
    (pick(0.50), pick(0.99), pick(0.999))
}

/// Tie-tolerant recall@k of `got` against the f32 oracle ranking for
/// `user`: a returned item counts when its true f32 score reaches the
/// oracle's k-th score within 1e-4 relative — rank swaps inside a
/// near-tie group are not errors, genuinely missing items are.
fn recall_against_oracle(
    p: &FactorMatrix,
    q: &FactorMatrix,
    user: u32,
    got: &[(u32, f32)],
    topk: usize,
) -> f64 {
    let oracle = naive_top_k(p, q, None, user, topk);
    if oracle.is_empty() {
        return 1.0;
    }
    let kth = oracle.last().unwrap().1;
    let tol = 1e-4 * (1.0 + kth.abs());
    let hits = got
        .iter()
        .filter(|(item, _)| dot(p.row(user as usize), q.row(*item as usize)) >= kth - tol)
        .count();
    hits as f64 / oracle.len() as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shards = 8usize;
    let mut rounds = 3usize;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()).expect("--shards N"),
            "--rounds" => rounds = it.next().and_then(|v| v.parse().ok()).expect("--rounds N"),
            "--quick" => quick = true,
            "--out" => out = Some(it.next().expect("--out FILE.json").clone()),
            other => panic!(
                "unknown flag {other} (supported: --shards N, --rounds N, --quick, --out FILE)"
            ),
        }
    }
    let p = if quick { QUICK } else { FULL };
    let out = out.unwrap_or_else(|| {
        if quick {
            "results/BENCH_serving_quant_quick.json".into()
        } else {
            "results/BENCH_serving_quant.json".into()
        }
    });

    println!(
        "catalogue: {} users x {} items, k = {}, top-{}, zipf(0.8) item norms \
         ({} queries, batch {}, {} shards, backend {})",
        p.users,
        p.items,
        p.k,
        p.topk,
        p.queries,
        p.batch,
        shards,
        hcc_sgd::simd::active_backend().name()
    );
    let factors_p = FactorMatrix::random(p.users, p.k, 1);
    let q_uniform = FactorMatrix::random(p.items, p.k, 2);
    let q_data: Vec<f32> = (0..p.items)
        .flat_map(|r| {
            let s = popularity(r);
            q_uniform
                .row(r)
                .iter()
                .map(move |&x| x * s)
                .collect::<Vec<_>>()
        })
        .collect();
    let factors_q = FactorMatrix::from_vec(p.items, p.k, q_data);

    // Same deterministic query stream as the serving bench.
    let queries: Vec<u32> = (0..p.queries as u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % p.users as u32)
        .collect();
    let mut distinct: Vec<u32> = queries.clone();
    distinct.sort_unstable();
    distinct.dedup();

    let configs: Vec<(Precision, bool)> = [Precision::F32, Precision::Fp16, Precision::Int8]
        .into_iter()
        .flat_map(|prec| [(prec, false), (prec, true)])
        .collect();

    let mut cells: Vec<Cell> = Vec::new();
    for (precision, pruned) in configs {
        let engine = ServeEngine::new(
            ServedModel::build_with(
                factors_p.clone(),
                factors_q.clone(),
                None,
                shards,
                precision,
                pruned,
            )
            .expect("factor shapes agree"),
        );

        // Recall over every distinct query user (answers are deterministic,
        // so one pass suffices), which also warms the scan path.
        let mut recall_sum = 0.0;
        for &u in &distinct {
            let got = engine.top_k(u, p.topk).expect("known user");
            recall_sum += recall_against_oracle(&factors_p, &factors_q, u, &got, p.topk);
        }
        let recall = recall_sum / distinct.len() as f64;

        let mut best_secs = f64::INFINITY;
        let mut best_lat: Vec<f64> = Vec::new();
        for _ in 0..rounds {
            let mut lat_us = Vec::with_capacity(queries.len());
            let t_total = Instant::now();
            for chunk in queries.chunks(p.batch) {
                let t0 = Instant::now();
                let answered =
                    std::hint::black_box(engine.top_k_batch(chunk, p.topk).expect("known users"))
                        .len();
                assert_eq!(answered, chunk.len());
                let per_query = t0.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
                lat_us.extend(std::iter::repeat_n(per_query, chunk.len()));
            }
            let secs = t_total.elapsed().as_secs_f64();
            if secs < best_secs {
                best_secs = secs;
                best_lat = lat_us;
            }
        }
        let (p50_us, p99_us, p999_us) = percentiles(&mut best_lat);
        let skip_rate = 1.0 - engine.stats().scan_frac;
        let cell = Cell {
            precision,
            pruned,
            queries_per_sec: queries.len() as f64 / best_secs,
            p50_us,
            p99_us,
            p999_us,
            recall,
            skip_rate,
        };
        println!(
            "{:>5} {:>10}  {:>9.0} queries/s  p50 {:>7.1} us  p99 {:>7.1} us  \
             p999 {:>7.1} us  recall@{} {:.4}  skip {:>5.1}%",
            cell.precision.name(),
            if pruned { "pruned" } else { "exhaustive" },
            cell.queries_per_sec,
            cell.p50_us,
            cell.p99_us,
            cell.p999_us,
            p.topk,
            cell.recall,
            cell.skip_rate * 100.0
        );
        cells.push(cell);
    }

    let f32_exhaustive = cells
        .iter()
        .find(|c| c.precision == Precision::F32 && !c.pruned)
        .expect("f32 exhaustive cell")
        .queries_per_sec;
    let best = cells
        .iter()
        .max_by(|a, b| a.queries_per_sec.total_cmp(&b.queries_per_sec))
        .expect("nonempty cells");
    let speedup = best.queries_per_sec / f32_exhaustive;
    println!(
        "best cell {}+{} vs f32 exhaustive: {speedup:.2}x at recall@{} {:.4}",
        best.precision.name(),
        if best.pruned { "pruned" } else { "exhaustive" },
        p.topk,
        best.recall
    );

    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"precision\": \"{}\", \"pruned\": {}, \"queries_per_sec\": {:.1}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}, \
                 \"recall_at_topk\": {:.4}, \"skip_rate\": {:.4}}}",
                c.precision.name(),
                c.pruned,
                c.queries_per_sec,
                c.p50_us,
                c.p99_us,
                c.p999_us,
                c.recall,
                c.skip_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serving_quant\",\n  \"quick\": {quick},\n  \"users\": {},\n  \
         \"items\": {},\n  \"k\": {},\n  \"topk\": {},\n  \"queries\": {},\n  \
         \"batch\": {},\n  \"shards\": {},\n  \"rounds\": {rounds},\n  \"backend\": \"{}\",\n  \
         \"catalogue\": \"zipf-norm(0.8)\",\n  \
         \"results\": [\n{}\n  ],\n  \"best_cell\": \"{}+{}\",\n  \
         \"speedup_best_vs_f32_exhaustive\": {:.3}\n}}\n",
        p.users,
        p.items,
        p.k,
        p.topk,
        p.queries,
        p.batch,
        shards,
        hcc_sgd::simd::active_backend().name(),
        rows.join(",\n"),
        best.precision.name(),
        if best.pruned { "pruned" } else { "exhaustive" },
        speedup,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
