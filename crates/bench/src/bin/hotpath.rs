//! Hot-path microbenchmark: Hogwild updates/sec for every combination of
//! kernel backend (scalar vs runtime-dispatched SIMD) and schedule (stripe
//! vs cache-tiled), at the paper's heaviest latent dimension (k = 128).
//!
//! The factor matrices are sized well past L2 (P ≈ 30 MiB, Q ≈ 15 MiB at
//! the defaults) so the stripe schedule pays the cache misses it pays on the
//! real datasets, and the tile schedule's row reuse is visible.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin hotpath [-- --threads N --epochs N]
//! ```
//!
//! Prints a table and writes `results/BENCH_hotpath.json`.

use hcc_sgd::simd::{self, Backend};
use hcc_sgd::{
    hogwild_epoch, hogwild_epoch_tiled, FactorMatrix, HogwildConfig, Schedule, SharedFactors,
};
use hcc_sparse::{GenConfig, SyntheticDataset, TileGrid};
use std::time::Instant;

const K: usize = 128;
const ROWS: usize = 60_000;
const COLS: usize = 30_000;
const NNZ: usize = 2_000_000;

struct Measurement {
    backend: Backend,
    schedule: Schedule,
    epoch_secs: f64,
    updates_per_sec: f64,
}

fn measure(
    backend: Backend,
    schedule: Schedule,
    entries: &[hcc_sparse::Rating],
    grid: &TileGrid,
    threads: usize,
    epochs: usize,
) -> Measurement {
    simd::set_backend(backend).expect("backend unsupported on this CPU");
    let config = HogwildConfig {
        threads,
        learning_rate: 0.005,
        lambda_p: 0.01,
        lambda_q: 0.01,
        schedule,
    };
    // Fresh factors per cell so every measurement does identical work.
    let p = SharedFactors::from_matrix(&FactorMatrix::random(ROWS, K, 1));
    let q = SharedFactors::from_matrix(&FactorMatrix::random(COLS, K, 2));
    let run = |p: &SharedFactors, q: &SharedFactors| match schedule {
        Schedule::Stripe => hogwild_epoch(entries, p, q, &config),
        Schedule::Tiled => hogwild_epoch_tiled(grid, p, q, &config),
    };
    run(&p, &q); // warm-up: faults pages, spawns threads, trains caches
    let start = Instant::now();
    for _ in 0..epochs {
        std::hint::black_box(run(&p, &q));
    }
    let secs = start.elapsed().as_secs_f64();
    let epoch_secs = secs / epochs as f64;
    Measurement {
        backend,
        schedule,
        epoch_secs,
        updates_per_sec: entries.len() as f64 / epoch_secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 1usize;
    let mut epochs = 3usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N"),
            "--epochs" => epochs = it.next().and_then(|v| v.parse().ok()).expect("--epochs N"),
            other => panic!("unknown flag {other} (supported: --threads N, --epochs N)"),
        }
    }

    let detected = simd::active_backend();
    println!("detected kernel backend: {}", detected.name());
    println!("generating {ROWS}x{COLS} dataset with {NNZ} ratings (k = {K})...");
    let ds = SyntheticDataset::generate(GenConfig {
        rows: ROWS as u32,
        cols: COLS as u32,
        nnz: NNZ,
        ..GenConfig::default()
    });
    let entries = ds.matrix.entries();

    let t0 = Instant::now();
    let grid = TileGrid::with_default_budget(entries, ROWS, COLS, K);
    let tile_build_secs = t0.elapsed().as_secs_f64();
    let (gu, gi) = grid.grid_dims();
    println!(
        "tile grid: {gu} x {gi} tiles of {} x {} rows, built in {:.3}s",
        grid.u_block(),
        grid.i_block(),
        tile_build_secs
    );

    let mut backends = vec![Backend::Scalar];
    if detected == Backend::Avx2 {
        backends.push(Backend::Avx2);
    } else {
        eprintln!("warning: AVX2 tier unavailable; measuring scalar only");
    }

    let mut results = Vec::new();
    for &backend in &backends {
        for schedule in [Schedule::Stripe, Schedule::Tiled] {
            let m = measure(backend, schedule, entries, &grid, threads, epochs);
            println!(
                "{:>6} + {:<6}  {:>8.2} ms/epoch  {:>6.1} M updates/s",
                m.backend.name(),
                m.schedule.name(),
                m.epoch_secs * 1e3,
                m.updates_per_sec / 1e6
            );
            results.push(m);
        }
    }
    simd::reset_backend();

    let find = |b: Backend, s: Schedule| {
        results
            .iter()
            .find(|m| m.backend == b && m.schedule == s)
            .map(|m| m.updates_per_sec)
    };
    let baseline = find(Backend::Scalar, Schedule::Stripe).unwrap();
    let speedup = find(Backend::Avx2, Schedule::Tiled).map(|fast| fast / baseline);
    if let Some(s) = speedup {
        println!("simd+tiled vs scalar+stripe: {s:.2}x");
    }

    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"backend\": \"{}\", \"schedule\": \"{}\", \"epoch_secs\": {:.6}, \"updates_per_sec\": {:.0}}}",
                m.backend.name(),
                m.schedule.name(),
                m.epoch_secs,
                m.updates_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"k\": {K},\n  \"rows\": {ROWS},\n  \"cols\": {COLS},\n  \
         \"nnz\": {NNZ},\n  \"threads\": {threads},\n  \"epochs_timed\": {epochs},\n  \
         \"detected_backend\": \"{}\",\n  \"tile_grid\": {{\"grid_u\": {gu}, \"grid_i\": {gi}, \
         \"u_block\": {}, \"i_block\": {}, \"build_secs\": {:.6}}},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_simd_tiled_vs_scalar_stripe\": {}\n}}\n",
        detected.name(),
        grid.u_block(),
        grid.i_block(),
        tile_build_secs,
        rows.join(",\n"),
        speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
    );
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_hotpath.json", &json).expect("write results/BENCH_hotpath.json");
    println!("wrote results/BENCH_hotpath.json");
}
