//! Hot-path microbenchmark: Hogwild updates/sec for every combination of
//! kernel backend (scalar vs runtime-dispatched SIMD) and schedule (stripe
//! vs cache-tiled), at the paper's heaviest latent dimension (k = 128).
//!
//! The factor matrices are sized well past L2 (P ≈ 30 MiB, Q ≈ 15 MiB at
//! the defaults) so the stripe schedule pays the cache misses it pays on the
//! real datasets, and the tile schedule's row reuse is visible.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin hotpath \
//!     [-- --threads N --epochs N --quick --out FILE.json]
//! ```
//!
//! `--quick` shrinks the workload to CI scale (k = 32, 600k ratings) and
//! retargets the output to `results/BENCH_hotpath_quick.json` — the file
//! the perf-regression gate (`perf_gate`) diffs against its committed
//! baseline. Prints a table and writes the JSON (schema: see
//! `results/README.md`).

use hcc_sgd::simd::{self, Backend};
use hcc_sgd::{
    hogwild_epoch, hogwild_epoch_tiled, FactorMatrix, HogwildConfig, Schedule, SharedFactors,
};
use hcc_sparse::{GenConfig, SyntheticDataset, TileGrid};
use std::time::Instant;

/// Workload dimensions, full-size or `--quick`.
struct Params {
    k: usize,
    rows: usize,
    cols: usize,
    nnz: usize,
}

const FULL: Params = Params {
    k: 128,
    rows: 60_000,
    cols: 30_000,
    nnz: 2_000_000,
};

/// CI-scale: one measurement cell runs in well under a second, and the
/// factors still overflow L2 so the tile schedule keeps its edge.
const QUICK: Params = Params {
    k: 32,
    rows: 12_000,
    cols: 6_000,
    nnz: 600_000,
};

struct Cell {
    backend: Backend,
    schedule: Schedule,
    fp: SharedFactors,
    fq: SharedFactors,
    /// Best (minimum) epoch time seen so far.
    epoch_secs: f64,
}

struct Measurement {
    backend: Backend,
    schedule: Schedule,
    epoch_secs: f64,
    updates_per_sec: f64,
}

/// Measures every (backend, schedule) cell, interleaved: each round times
/// one epoch of every cell, and a cell keeps its *minimum* across rounds.
/// Wall-clock noise (scheduler, frequency scaling, neighbours) only ever
/// adds time, so the minimum is the stable estimator the perf gate needs —
/// and interleaving means a sustained slow window degrades some rounds of
/// every cell instead of swallowing one cell whole.
fn measure_all(
    backends: &[Backend],
    entries: &[hcc_sparse::Rating],
    grid: &TileGrid,
    p: &Params,
    threads: usize,
    epochs: usize,
) -> Vec<Measurement> {
    let mut cells: Vec<Cell> = backends
        .iter()
        .flat_map(|&backend| {
            [Schedule::Stripe, Schedule::Tiled].map(|schedule| Cell {
                backend,
                schedule,
                // Fresh factors per cell so every measurement does
                // identical work.
                fp: SharedFactors::from_matrix(&FactorMatrix::random(p.rows, p.k, 1)),
                fq: SharedFactors::from_matrix(&FactorMatrix::random(p.cols, p.k, 2)),
                epoch_secs: f64::INFINITY,
            })
        })
        .collect();
    let config = |schedule| HogwildConfig {
        threads,
        learning_rate: 0.005,
        lambda_p: 0.01,
        lambda_q: 0.01,
        schedule,
    };
    let run = |cell: &Cell| {
        simd::set_backend(cell.backend).expect("backend unsupported on this CPU");
        match cell.schedule {
            Schedule::Stripe => hogwild_epoch(entries, &cell.fp, &cell.fq, &config(cell.schedule)),
            Schedule::Tiled => {
                hogwild_epoch_tiled(grid, &cell.fp, &cell.fq, &config(cell.schedule))
            }
        }
    };
    for cell in &cells {
        run(cell); // warm-up: faults pages, spawns threads, trains caches
    }
    for _ in 0..epochs {
        for cell in &mut cells {
            let start = Instant::now();
            std::hint::black_box(run(cell));
            cell.epoch_secs = cell.epoch_secs.min(start.elapsed().as_secs_f64());
        }
    }
    simd::reset_backend();
    cells
        .into_iter()
        .map(|c| Measurement {
            backend: c.backend,
            schedule: c.schedule,
            epoch_secs: c.epoch_secs,
            updates_per_sec: entries.len() as f64 / c.epoch_secs,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threads = 1usize;
    let mut epochs: Option<usize> = None;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => threads = it.next().and_then(|v| v.parse().ok()).expect("--threads N"),
            "--epochs" => {
                epochs = Some(it.next().and_then(|v| v.parse().ok()).expect("--epochs N"))
            }
            "--quick" => quick = true,
            "--out" => out = Some(it.next().expect("--out FILE.json").clone()),
            other => panic!(
                "unknown flag {other} (supported: --threads N, --epochs N, --quick, --out FILE)"
            ),
        }
    }
    let p = if quick { QUICK } else { FULL };
    // Quick cells are ~10 ms, so extra min-of-N epochs are cheap and buy
    // the stability the 15% regression threshold needs.
    let epochs = epochs.unwrap_or(if quick { 9 } else { 3 });
    let out = out.unwrap_or_else(|| {
        if quick {
            "results/BENCH_hotpath_quick.json".into()
        } else {
            "results/BENCH_hotpath.json".into()
        }
    });

    let detected = simd::active_backend();
    println!("detected kernel backend: {}", detected.name());
    println!(
        "generating {}x{} dataset with {} ratings (k = {})...",
        p.rows, p.cols, p.nnz, p.k
    );
    let ds = SyntheticDataset::generate(GenConfig {
        rows: p.rows as u32,
        cols: p.cols as u32,
        nnz: p.nnz,
        ..GenConfig::default()
    });
    let entries = ds.matrix.entries();

    let t0 = Instant::now();
    let grid = TileGrid::with_default_budget(entries, p.rows, p.cols, p.k);
    let tile_build_secs = t0.elapsed().as_secs_f64();
    let (gu, gi) = grid.grid_dims();
    println!(
        "tile grid: {gu} x {gi} tiles of {} x {} rows, built in {:.3}s",
        grid.u_block(),
        grid.i_block(),
        tile_build_secs
    );

    let mut backends = vec![Backend::Scalar];
    if detected == Backend::Avx2 {
        backends.push(Backend::Avx2);
    } else {
        eprintln!("warning: AVX2 tier unavailable; measuring scalar only");
    }

    let results = measure_all(&backends, entries, &grid, &p, threads, epochs);
    for m in &results {
        println!(
            "{:>6} + {:<6}  {:>8.2} ms/epoch  {:>6.1} M updates/s",
            m.backend.name(),
            m.schedule.name(),
            m.epoch_secs * 1e3,
            m.updates_per_sec / 1e6
        );
    }

    let find = |b: Backend, s: Schedule| {
        results
            .iter()
            .find(|m| m.backend == b && m.schedule == s)
            .map(|m| m.updates_per_sec)
    };
    let baseline = find(Backend::Scalar, Schedule::Stripe).unwrap();
    let speedup = find(Backend::Avx2, Schedule::Tiled).map(|fast| fast / baseline);
    if let Some(s) = speedup {
        println!("simd+tiled vs scalar+stripe: {s:.2}x");
    }

    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"backend\": \"{}\", \"schedule\": \"{}\", \"epoch_secs\": {:.6}, \"updates_per_sec\": {:.0}}}",
                m.backend.name(),
                m.schedule.name(),
                m.epoch_secs,
                m.updates_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"quick\": {quick},\n  \"k\": {},\n  \"rows\": {},\n  \
         \"cols\": {},\n  \"nnz\": {},\n  \"threads\": {threads},\n  \"epochs_timed\": {epochs},\n  \
         \"detected_backend\": \"{}\",\n  \"tile_grid\": {{\"grid_u\": {gu}, \"grid_i\": {gi}, \
         \"u_block\": {}, \"i_block\": {}, \"build_secs\": {:.6}}},\n  \"results\": [\n{}\n  ],\n  \
         \"speedup_simd_tiled_vs_scalar_stripe\": {}\n}}\n",
        p.k,
        p.rows,
        p.cols,
        p.nnz,
        detected.name(),
        grid.u_block(),
        grid.i_block(),
        tile_build_secs,
        rows.join(",\n"),
        speedup.map_or("null".to_string(), |s| format!("{s:.3}")),
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
