//! Ablation — the latent dimension `k`.
//!
//! `k` appears on *both* sides of the time-cost model: per-update memory
//! traffic is `16k+4` bytes (compute) while transfer volume is `4kn`
//! (communication) — both linear, so the compute/comm *ratio* is nearly
//! k-invariant, but the sync tail and absolute times are not. This sweep
//! quantifies that on the simulator, per dataset.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin ablation_k
//! ```

use hcc_bench::{fmt_pct, fmt_secs, plan, print_table};
use hcc_hetsim::{ideal_computing_power, simulate_training, Platform, SimConfig, Workload};
use hcc_sparse::DatasetProfile;

fn main() {
    for profile in [DatasetProfile::netflix(), DatasetProfile::yahoo_r1()] {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let ideal = ideal_computing_power(&platform, &wl);
        let mut rows = Vec::new();
        for k in [16u64, 32, 64, 128, 256] {
            // Calibrated rates are for k = 128; per-update traffic scales
            // with (16k+4), so rates rescale inversely.
            let rate_scale = (16.0 * 128.0 + 4.0) / (16.0 * k as f64 + 4.0);
            let mut platform_k = platform.clone();
            for w in platform_k.workers.iter_mut() {
                w.profile.rates = w.profile.rates.scaled(rate_scale);
            }
            let cfg = SimConfig {
                k,
                ..Default::default()
            };
            let p = plan(&platform_k, &wl, &cfg);
            let sim = simulate_training(&platform_k, &wl, &cfg, &p.fractions, 20);
            let comm: f64 = sim
                .epoch
                .totals
                .iter()
                .map(|t| (t.pull + t.push) * 20.0)
                .sum();
            rows.push(vec![
                k.to_string(),
                format!("{:?}", p.strategy),
                fmt_secs(sim.total_time),
                fmt_secs(comm),
                fmt_pct(sim.computing_power / (ideal * rate_scale)),
            ]);
        }
        print_table(
            &format!(
                "k sweep — {} (rates rescaled by (16·128+4)/(16k+4))",
                profile.name
            ),
            &[
                "k",
                "strategy",
                "20-epoch time",
                "cumulative comm",
                "utilization",
            ],
            &rows,
        );
    }
    println!(
        "\nreading: compute and communication both scale ~linearly in k, so utilization and \
         the DP1/DP2 choice are nearly k-invariant — k only moves absolute time. The paper's \
         fixed k = 128 therefore loses no generality for the partition results."
    );
}
