//! Table 5 — 20-epoch communication time per strategy and transport.
//!
//! Two parts:
//! 1. a *real* bandwidth probe of this machine's COMM vs COMM-P transports
//!    (which fixes the COMM-P efficiency ratio honestly, instead of assuming
//!    the paper's ~7×), and
//! 2. paper-scale communication times from the simulator using the probed
//!    ratio, with speedups relative to the unoptimized P&Q row — the shape
//!    Table 5 reports.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin table5_comm
//! ```

use hcc_bench::{fmt_secs, print_table};
use hcc_comm::{CommP, CommShared, Precision, TransferStrategy, Transport};
use hcc_hetsim::{simulate_training, standalone_times, Platform, SimConfig, Workload};
use hcc_partition::dp0;
use hcc_sparse::DatasetProfile;
use std::time::Instant;

fn main() {
    // --- Part 1: probe real transports -----------------------------------
    let elems = 8 << 20; // 32 MiB of f32
    let payload: Vec<f32> = (0..elems).map(|j| (j % 1009) as f32 * 0.003).collect();

    let mut probe_rows = Vec::new();
    let mut rates = Vec::new();
    for (name, transport) in [
        (
            "COMM",
            Box::new(CommShared::new(1, elems, elems, Precision::Fp32)) as Box<dyn Transport>,
        ),
        ("COMM-P", Box::new(CommP::new(1, Precision::Fp32))),
    ] {
        let gbps = probe(transport.as_ref(), &payload);
        rates.push(gbps);
        probe_rows.push(vec![name.to_string(), format!("{gbps:.2} GB/s")]);
    }
    let commp_efficiency = (rates[1] / rates[0]).clamp(0.01, 1.0);
    print_table(
        "transport probe (32 MiB FP32 roundtrips)",
        &["transport", "bandwidth"],
        &probe_rows,
    );
    println!(
        "probed COMM-P efficiency: {:.2}× of COMM (paper Table 5 implies ~0.15×)",
        commp_efficiency
    );

    // --- Part 2: paper-scale communication times --------------------------
    // "Communication time" in Table 5 = cumulative pull+push across workers
    // over 20 epochs, on the 4-worker testbed (R1_NEW is the paper's label
    // for the R1 run in this table).
    let epochs = 20;
    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::yahoo_r2(),
    ] {
        let wl = Workload::from_profile(&profile);
        let platform = Platform::paper_testbed_4workers();
        let x = dp0(&standalone_times(&platform, &wl));

        let mut rows = Vec::new();
        for (comm_name, efficiency) in [("COMM", 1.0), ("COMM-P", commp_efficiency)] {
            let mut base_time = None;
            for strategy in TransferStrategy::ALL {
                let cfg = SimConfig {
                    strategy,
                    transport_efficiency: efficiency,
                    ..Default::default()
                };
                let sim = simulate_training(&platform, &wl, &cfg, &x, epochs);
                let comm: f64 = sim
                    .epoch
                    .totals
                    .iter()
                    .map(|t| (t.pull + t.push) * epochs as f64)
                    .sum();
                let speedup = match base_time {
                    None => {
                        base_time = Some(comm);
                        1.0
                    }
                    Some(base) => base / comm,
                };
                rows.push(vec![
                    comm_name.to_string(),
                    strategy.label().to_string(),
                    fmt_secs(comm),
                    format!("{speedup:.1}x"),
                ]);
            }
        }
        print_table(
            &format!("Table 5: {} — 20-epoch communication time", profile.name),
            &["transport", "strategy", "time", "speedup"],
            &rows,
        );
    }
    println!(
        "\npaper speedups (COMM): Netflix 18.3x/58x, R1 2.9x/9.6x, R2 7.5x/22.6x for Q/half-Q \
         over P&Q; COMM-P is uniformly ~6–7x slower than COMM."
    );
}

/// Measures publish→pull→push→collect bandwidth for one worker.
fn probe(transport: &dyn Transport, payload: &[f32]) -> f64 {
    let mut local = vec![0f32; payload.len()];
    let rounds = 8;
    // Warm-up.
    transport.publish(payload);
    transport.pull(0, &mut local);
    transport.push(0, &local);
    transport.collect(0, &mut local);
    let start = Instant::now();
    for _ in 0..rounds {
        transport.publish(payload);
        transport.pull(0, &mut local);
        transport.push(0, &local);
        transport.collect(0, &mut local);
    }
    let secs = start.elapsed().as_secs_f64();
    let bytes = payload.len() as f64 * 4.0 * 4.0 * rounds as f64;
    bytes / secs / 1e9
}
