//! Ablation — the λ threshold of Eq. 5.
//!
//! The paper fixes λ = 10 ("its value should change with the scale of
//! execution time… we take its value as 10"). This sweep shows, per
//! dataset, which λ values flip the DP1/DP2 choice and what each choice
//! costs, plus the partition's robustness to measurement noise (DP1 plans
//! from wall-clock measurements that jitter).
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin ablation_lambda
//! ```

use hcc_bench::{fmt_secs, print_table};
use hcc_hetsim::{
    cost_model_for, standalone_times, virtual_measure, worker_classes, Platform, SimConfig,
    Workload,
};
use hcc_partition::{equalize, perturbation_cost, sweep_lambda};
use hcc_sparse::DatasetProfile;

fn main() {
    let cfg = SimConfig::default();
    let lambdas = [0.5, 2.0, 5.0, 10.0, 20.0, 50.0, 200.0];

    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::yahoo_r2(),
        DatasetProfile::movielens_20m(),
    ] {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let model = cost_model_for(&platform, &wl, &cfg);
        let results = sweep_lambda(
            &model,
            &standalone_times(&platform, &wl),
            &worker_classes(&platform),
            virtual_measure(&platform, &wl),
            &lambdas,
        );
        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|(lambda, choice, epoch)| {
                vec![format!("{lambda}"), format!("{choice:?}"), fmt_secs(*epoch)]
            })
            .collect();
        print_table(
            &format!("λ sweep — {} (paper uses λ = 10)", profile.name),
            &["lambda", "choice", "predicted epoch"],
            &rows,
        );
    }

    // Partition noise robustness: perturb the Theorem-1 solution by moving
    // eps of the data between workers and report the worst-case slowdown.
    let platform = Platform::paper_testbed_4workers();
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let model = cost_model_for(&platform, &wl, &cfg);
    let (a, b) = model.linear_coefficients();
    let x = equalize(&a, &b);
    let rows: Vec<Vec<String>> = [0.005, 0.01, 0.02, 0.05, 0.1]
        .iter()
        .map(|&eps| {
            vec![
                format!("{:.1}%", eps * 100.0),
                format!("{:.2}%", perturbation_cost(&a, &b, &x, eps) * 100.0),
            ]
        })
        .collect();
    print_table(
        "partition noise robustness (Netflix, Theorem-1 optimum)",
        &["data moved", "worst-case epoch increase"],
        &rows,
    );
    println!(
        "reading: a few percent of misplaced data costs about the same few percent of epoch \
         time — Algorithm 1's 10% stopping tolerance is safe."
    );
}
