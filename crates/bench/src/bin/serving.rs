//! Serving throughput benchmark: the naive full-sort single-query baseline
//! against the sharded + SIMD + bounded-heap engine at several batch sizes.
//!
//! The baseline is [`hcc_serve::naive_top_k`] — scalar dots, full score
//! vector, `O(items log items)` sort — called one query at a time, exactly
//! what the historical `Recommender` did. The engine answers the same
//! query stream through [`hcc_serve::ServeEngine::top_k_batch`], which fans
//! a batch across item shards on real threads. The headline cell the perf
//! gate watches is `speedup_batch256_vs_naive`: sharded batch-256
//! throughput over naive single-query throughput.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin serving \
//!     [-- --shards N --quick --out FILE.json]
//! ```
//!
//! `--quick` shrinks the catalogue to CI scale and retargets the output to
//! `results/BENCH_serving_quick.json`, the perf-regression baseline. Prints
//! a table and writes JSON (schema: `results/README.md`).

use hcc_serve::{naive_top_k, ServeEngine, ServedModel};
use hcc_sgd::FactorMatrix;
use std::time::Instant;

/// Catalogue dimensions, full-size or `--quick`.
struct Params {
    users: usize,
    items: usize,
    k: usize,
    topk: usize,
    queries: usize,
}

const FULL: Params = Params {
    users: 4_096,
    items: 16_384,
    k: 64,
    topk: 10,
    queries: 2_048,
};

/// CI-scale: the naive baseline still does real work (4k dots + a full
/// sort per query) but a full sweep finishes in seconds.
const QUICK: Params = Params {
    users: 1_024,
    items: 4_096,
    k: 32,
    topk: 10,
    queries: 512,
};

struct Measurement {
    mode: &'static str,
    batch: usize,
    queries_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

/// Percentiles over per-query latencies in µs (nearest-rank).
fn percentiles(lat_us: &mut [f64]) -> (f64, f64, f64) {
    lat_us.sort_by(f64::total_cmp);
    let pick = |p: f64| lat_us[((lat_us.len() as f64 * p) as usize).min(lat_us.len() - 1)];
    (pick(0.50), pick(0.99), pick(0.999))
}

/// One full pass over the query stream; returns (total secs, per-query µs).
fn run_pass(
    queries: &[u32],
    mut answer: impl FnMut(&[u32]) -> usize,
    batch: usize,
) -> (f64, Vec<f64>) {
    let mut lat_us = Vec::with_capacity(queries.len());
    let t_total = Instant::now();
    for chunk in queries.chunks(batch) {
        let t0 = Instant::now();
        let answered = answer(chunk);
        assert_eq!(answered, chunk.len());
        let per_query = t0.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64;
        lat_us.extend(std::iter::repeat_n(per_query, chunk.len()));
    }
    (t_total.elapsed().as_secs_f64(), lat_us)
}

/// Best-of-`rounds` measurement (minimum total time, that round's
/// latencies): wall-clock noise only ever adds time, so the minimum is the
/// stable estimator the perf gate needs.
fn measure(
    mode: &'static str,
    batch: usize,
    queries: &[u32],
    rounds: usize,
    mut answer: impl FnMut(&[u32]) -> usize,
) -> Measurement {
    let mut best_secs = f64::INFINITY;
    let mut best_lat: Vec<f64> = Vec::new();
    for _ in 0..rounds {
        let (secs, lat) = run_pass(queries, &mut answer, batch);
        if secs < best_secs {
            best_secs = secs;
            best_lat = lat;
        }
    }
    let (p50_us, p99_us, p999_us) = percentiles(&mut best_lat);
    Measurement {
        mode,
        batch,
        queries_per_sec: queries.len() as f64 / best_secs,
        p50_us,
        p99_us,
        p999_us,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shards = 8usize;
    let mut rounds = 3usize;
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()).expect("--shards N"),
            "--rounds" => rounds = it.next().and_then(|v| v.parse().ok()).expect("--rounds N"),
            "--quick" => quick = true,
            "--out" => out = Some(it.next().expect("--out FILE.json").clone()),
            other => panic!(
                "unknown flag {other} (supported: --shards N, --rounds N, --quick, --out FILE)"
            ),
        }
    }
    let p = if quick { QUICK } else { FULL };
    let out = out.unwrap_or_else(|| {
        if quick {
            "results/BENCH_serving_quick.json".into()
        } else {
            "results/BENCH_serving.json".into()
        }
    });

    println!(
        "catalogue: {} users x {} items, k = {}, top-{} ({} queries, {} shards, backend {})",
        p.users,
        p.items,
        p.k,
        p.topk,
        p.queries,
        shards,
        hcc_sgd::simd::active_backend().name()
    );
    let factors_p = FactorMatrix::random(p.users, p.k, 1);
    let factors_q = FactorMatrix::random(p.items, p.k, 2);
    let engine = ServeEngine::new(
        ServedModel::build(factors_p.clone(), factors_q.clone(), None, shards)
            .expect("factor shapes agree"),
    );

    // A deterministic query stream that touches many users.
    let queries: Vec<u32> = (0..p.queries as u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % p.users as u32)
        .collect();

    let mut results: Vec<Measurement> = Vec::new();
    results.push(measure("naive", 1, &queries, rounds, |chunk| {
        for &u in chunk {
            std::hint::black_box(naive_top_k(&factors_p, &factors_q, None, u, p.topk));
        }
        chunk.len()
    }));
    for batch in [1usize, 32, 256] {
        results.push(measure("sharded", batch, &queries, rounds, |chunk| {
            std::hint::black_box(engine.top_k_batch(chunk, p.topk).expect("known users")).len()
        }));
    }

    for m in &results {
        println!(
            "{:>8} batch {:>4}  {:>9.0} queries/s  p50 {:>8.1} us  p99 {:>8.1} us  p999 {:>8.1} us",
            m.mode, m.batch, m.queries_per_sec, m.p50_us, m.p99_us, m.p999_us
        );
    }

    let naive_qps = results[0].queries_per_sec;
    let batch256 = results
        .iter()
        .find(|m| m.mode == "sharded" && m.batch == 256)
        .expect("batch-256 cell");
    let speedup = batch256.queries_per_sec / naive_qps;
    println!("sharded batch-256 vs naive single-query: {speedup:.2}x");

    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "    {{\"mode\": \"{}\", \"batch\": {}, \"queries_per_sec\": {:.1}, \
                 \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"p999_us\": {:.2}}}",
                m.mode, m.batch, m.queries_per_sec, m.p50_us, m.p99_us, m.p999_us
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"quick\": {quick},\n  \"users\": {},\n  \
         \"items\": {},\n  \"k\": {},\n  \"topk\": {},\n  \"queries\": {},\n  \
         \"shards\": {},\n  \"rounds\": {rounds},\n  \"backend\": \"{}\",\n  \
         \"results\": [\n{}\n  ],\n  \"speedup_batch256_vs_naive\": {:.3}\n}}\n",
        p.users,
        p.items,
        p.k,
        p.topk,
        p.queries,
        engine.model().shard_count(),
        hcc_sgd::simd::active_backend().name(),
        rows.join(",\n"),
        speedup,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
