//! Figure 9 — computing power stacked as workers are added one by one, per
//! dataset, against the ideal stack.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin fig9_scaling
//! ```

use hcc_bench::{fmt_mups, fmt_pct, plan, print_table};
use hcc_hetsim::{
    ideal_computing_power, simulate_training, BusKind, Platform, ProcessorProfile, SimConfig,
    Workload,
};
use hcc_sparse::DatasetProfile;

fn main() {
    let epochs = 20;

    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r2(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::r1_star(),
    ] {
        // On the communication-heavy R1/R1* the paper runs Strategy 3
        // (asynchronous computing-transmission, 4 streams on the GPUs).
        let cfg = if profile.name.contains("R1") {
            SimConfig {
                streams: 4,
                ..Default::default()
            }
        } else {
            SimConfig::default()
        };
        let wl = Workload::from_profile(&profile);
        // Fig. 9 adds workers in the order 2080S, 6242, 2080, 6242L; the R1
        // panel has no 6242L (the async strategy occupies the server).
        let additions: Vec<(ProcessorProfile, BusKind, bool)> = vec![
            (ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16, false),
            (ProcessorProfile::xeon_6242_24t(), BusKind::Upi, false),
            (ProcessorProfile::rtx_2080(), BusKind::PciE3x16, false),
            (
                ProcessorProfile::xeon_6242_10t(),
                BusKind::ServerLocal,
                true,
            ),
        ];
        let steps = if profile.name.contains("R1") { 3 } else { 4 };

        let mut rows = Vec::new();
        let mut prev_power = 0.0;
        for count in 1..=steps {
            let mut platform = Platform::new(&format!("{count} workers"));
            for (prof, bus, timeshare) in additions.iter().take(count) {
                platform = if *timeshare {
                    platform.with_server_worker(prof.clone())
                } else {
                    platform.with_worker(prof.clone(), *bus)
                };
            }
            let p = plan(&platform, &wl, &cfg);
            let sim = simulate_training(&platform, &wl, &cfg, &p.fractions, epochs);
            let ideal = ideal_computing_power(&platform, &wl);
            let added = additions[count - 1].0.clone();
            let standalone = added.rates.rate(&wl.name, wl.m, wl.n, wl.nnz);
            let marginal = sim.computing_power - prev_power;
            rows.push(vec![
                format!("+{}", added.name),
                fmt_mups(sim.computing_power),
                fmt_mups(ideal),
                fmt_pct(sim.computing_power / ideal),
                fmt_pct((marginal / standalone).max(0.0)),
            ]);
            prev_power = sim.computing_power;
        }
        print_table(
            &format!("Fig 9: {} — power as workers are added", profile.name),
            &[
                "worker added",
                "HCC power",
                "ideal",
                "utilization",
                "marginal/standalone",
            ],
            &rows,
        );
    }
    println!(
        "\npaper shape: power always grows with workers; ordinary workers contribute >80% of \
         their standalone power on Netflix/R2, ~45% on R1/R1*; the server-sharing worker >70%."
    );
}
