//! Figure 8 — cumulative 20-epoch pull/compute/push time per data-partition
//! strategy: DP0 vs DP1 on Netflix and R2 (3 and 4 workers), DP1 vs DP2 on
//! R1* (3 and 4 workers).
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin fig8_partition
//! ```

use hcc_bench::{fmt_secs, print_table};
use hcc_hetsim::{
    cost_model_for, simulate_training, standalone_times, virtual_measure, worker_classes, Platform,
    SimConfig, Workload,
};
use hcc_partition::{dp0, dp1, dp2, Dp1Options};
use hcc_sparse::DatasetProfile;

fn main() {
    let epochs = 20;
    let cfg = SimConfig::default();

    for (profile, strategies) in [
        (DatasetProfile::netflix(), ["DP0", "DP1"]),
        (DatasetProfile::yahoo_r2(), ["DP0", "DP1"]),
        (DatasetProfile::r1_star(), ["DP1", "DP2"]),
    ] {
        let wl = Workload::from_profile(&profile);
        for workers in [3usize, 4] {
            let platform = if workers == 3 {
                Platform::paper_testbed_3workers()
            } else {
                Platform::paper_testbed_4workers()
            };
            let mut rows = Vec::new();
            let mut totals = Vec::new();
            for name in strategies {
                let x = partition(name, &platform, &wl, &cfg);
                let sim = simulate_training(&platform, &wl, &cfg, &x, epochs);
                let e = epochs as f64;
                for (w, t) in sim.epoch.totals.iter().enumerate() {
                    rows.push(vec![
                        name.to_string(),
                        platform.worker_names()[w].to_string(),
                        fmt_secs(t.pull * e),
                        fmt_secs(t.compute * e),
                        fmt_secs(t.push * e),
                    ]);
                }
                rows.push(vec![
                    name.to_string(),
                    "TOTAL COST".into(),
                    String::new(),
                    String::new(),
                    fmt_secs(sim.total_time),
                ]);
                totals.push(sim.total_time);
            }
            print_table(
                &format!("Fig 8: {} — {} workers, 20 epochs", profile.name, workers),
                &["strategy", "worker", "pull", "compute", "push"],
                &rows,
            );
            println!(
                "{} improves total cost by {:.1}% over {}  (paper: DP1 −12.2% on Netflix-4W, \
                 −10% on R2; DP2 −12.1% on R1*-4W)",
                strategies[1],
                100.0 * (totals[0] - totals[1]) / totals[0],
                strategies[0],
            );
        }
    }
}

fn partition(name: &str, platform: &Platform, wl: &Workload, cfg: &SimConfig) -> Vec<f64> {
    let x0 = dp0(&standalone_times(platform, wl));
    match name {
        "DP0" => x0,
        "DP1" => dp1(
            &x0,
            &worker_classes(platform),
            Dp1Options::default(),
            virtual_measure(platform, wl),
        ),
        "DP2" => {
            let x1 = dp1(
                &x0,
                &worker_classes(platform),
                Dp1Options::default(),
                virtual_measure(platform, wl),
            );
            let mut measure = virtual_measure(platform, wl);
            let t = measure(&x1);
            let model = cost_model_for(platform, wl, cfg);
            dp2(&x1, &t, model.sync_time_per_worker())
        }
        other => panic!("unknown strategy {other}"),
    }
}
