//! Beyond the paper — multi-node scaling with a node-sharded server.
//!
//! The paper's testbed is one node; its Fig. 2 motivates the design with a
//! QPI ring of four 2-CPU nodes. This experiment asks: does HCC-MF keep
//! scaling when workers sit behind a cross-node hop? The centralized
//! parameter server of PRs 1–5 does not — its serialized sync queue and the
//! full-buffer push volume cap 4-node scaling near 2.9x. With one server
//! shard per node (the `--server-shards N` trainer path) the merge
//! parallelizes across shard queues, and delta shipping cuts push bytes to
//! the rows actually touched, so the same cluster clears 3.2x.
//!
//! Two sections, both deterministic:
//!
//! 1. **Scaling** (virtual platform): updates/s at 1/2/4 simulated nodes,
//!    each node hosting one server shard (`SimConfig::server_shards`).
//! 2. **Delta accounting** (real transport): a [`ShardedServer`] over
//!    per-shard `CommShared` endpoints replays a sparse training epoch
//!    pattern and reports shipped vs full-buffer push bytes from its
//!    [`hcc_mf::DeltaStats`].
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin cluster_scaling \
//!     [-- --epochs N --out results/BENCH_cluster.json]
//! ```
//!
//! Writes `results/BENCH_cluster.json` (schema: `results/README.md`),
//! diffed by the `perf_gate` binary in CI. `--quick` is accepted for CI
//! symmetry with the other bench bins; the simulator is virtual-time, so
//! quick and full runs produce identical numbers.

use hcc_bench::{fmt_mups, fmt_pct, plan, print_table};
use hcc_comm::{CommShared, Precision, Transport};
use hcc_hetsim::{ideal_computing_power, simulate_training, ClusterBuilder, SimConfig, Workload};
use hcc_mf::ShardedServer;
use hcc_partition::ShardRouter;
use hcc_sparse::{DatasetProfile, GenConfig, SyntheticDataset};
use std::sync::Arc;

const NODE_COUNTS: [usize; 3] = [1, 2, 4];

struct NodeResult {
    nodes: usize,
    workers: usize,
    strategy: String,
    updates_per_sec: f64,
    ideal: f64,
}

struct DatasetResult {
    name: String,
    rows: Vec<NodeResult>,
    scaling_4node: f64,
}

fn scale_dataset(profile: &DatasetProfile, epochs: usize) -> DatasetResult {
    let wl = Workload::from_profile(profile);
    let mut rows = Vec::new();
    for nodes in NODE_COUNTS {
        let platform = ClusterBuilder::new(nodes).build();
        // One server shard per node: each shard merges its row range on its
        // own queue, exactly like the trainer's `--server-shards nodes`.
        let cfg = SimConfig {
            server_shards: nodes,
            ..SimConfig::default()
        };
        let p = plan(&platform, &wl, &cfg);
        let sim = simulate_training(&platform, &wl, &cfg, &p.fractions, epochs);
        rows.push(NodeResult {
            nodes,
            workers: platform.worker_count(),
            strategy: format!("{:?}", p.strategy),
            updates_per_sec: sim.computing_power,
            ideal: ideal_computing_power(&platform, &wl),
        });
    }
    let scaling_4node = rows.last().unwrap().updates_per_sec / rows[0].updates_per_sec;
    DatasetResult {
        name: profile.name.to_string(),
        rows,
        scaling_4node,
    }
}

struct DeltaReplay {
    workers: usize,
    region_rows: usize,
    k: usize,
    epochs: usize,
    stats: hcc_mf::DeltaStats,
}

/// Replays the sync loop of a sparse epoch against a real 4-shard server:
/// each worker's push touches only the item rows its rating shard hits, so
/// the delta codec's savings are measured, not modeled.
fn replay_delta(epochs: usize) -> DeltaReplay {
    let (workers, shards, k) = (4usize, 4usize, 32usize);
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 400,
        cols: 4096,
        nnz: 6_000,
        planted_rank: 4,
        ..GenConfig::default()
    });
    let region_rows = 4096usize;
    let router = ShardRouter::uniform(region_rows, shards);
    let inners: Vec<Arc<dyn Transport>> = (0..shards)
        .map(|s| {
            let pull = router.range(s).len() * k;
            let push = ShardedServer::shard_push_len(&router, s, k);
            Arc::new(CommShared::new(workers, pull, push, Precision::Fp32)) as Arc<dyn Transport>
        })
        .collect();
    let server = ShardedServer::new(router, k, region_rows * k, Precision::Fp32, inners);

    // Worker w owns the users in its quarter of the row space; its push
    // touches the distinct item rows of its ratings.
    let mut touched: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for r in ds.matrix.entries() {
        let w = (r.u as usize * workers / 400).min(workers - 1);
        touched[w].push(r.i as usize);
    }
    for t in &mut touched {
        t.sort_unstable();
        t.dedup();
    }

    let mut global = vec![0.1f32; region_rows * k];
    for epoch in 0..epochs {
        server.publish(&global);
        for (w, rows) in touched.iter().enumerate() {
            let mut local = vec![0f32; region_rows * k];
            server.pull(w, &mut local);
            for &row in rows {
                local[row * k] += 0.01 * (epoch + 1) as f32;
            }
            server.push(w, &local);
            let mut merged = vec![0f32; region_rows * k];
            server.collect(w, &mut merged);
            global = merged;
        }
    }
    DeltaReplay {
        workers,
        region_rows,
        k,
        epochs,
        stats: server.delta_stats(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut epochs = 20usize;
    let mut out = "results/BENCH_cluster.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--epochs" => epochs = it.next().and_then(|v| v.parse().ok()).expect("--epochs N"),
            "--out" => out = it.next().expect("--out FILE.json").clone(),
            // Virtual-time simulation: quick == full, flag kept for CI
            // symmetry with the other bench bins.
            "--quick" => {}
            other => panic!("unknown flag {other} (supported: --epochs N, --quick, --out FILE)"),
        }
    }

    let datasets: Vec<DatasetResult> = [DatasetProfile::yahoo_r2(), DatasetProfile::netflix()]
        .iter()
        .map(|p| scale_dataset(p, epochs))
        .collect();

    for d in &datasets {
        let rows: Vec<Vec<String>> = d
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    r.workers.to_string(),
                    r.strategy.clone(),
                    fmt_mups(r.updates_per_sec),
                    fmt_mups(r.ideal),
                    fmt_pct(r.updates_per_sec / r.ideal),
                    format!("{:.2}x", r.updates_per_sec / d.rows[0].updates_per_sec),
                ]
            })
            .collect();
        print_table(
            &format!(
                "sharded-server cluster scaling — {} (2 CPUs + 2 GPUs + 1 shard per node)",
                d.name
            ),
            &[
                "nodes",
                "workers",
                "strategy",
                "HCC power",
                "ideal",
                "utilization",
                "scaling",
            ],
            &rows,
        );
    }

    let delta = replay_delta(5);
    let shipped_ratio = delta.stats.bytes_shipped as f64 / delta.stats.bytes_full as f64;
    println!(
        "\ndelta shipping (4 shards, {} epochs over a {}-row region): {} of {} rows shipped, \
         {} -> {} push bytes ({:.1}% of full shipping)",
        delta.epochs,
        delta.region_rows,
        delta.stats.rows_shipped,
        delta.stats.rows_total,
        delta.stats.bytes_full,
        delta.stats.bytes_shipped,
        shipped_ratio * 100.0
    );
    let scaling_min = datasets
        .iter()
        .map(|d| d.scaling_4node)
        .fold(f64::INFINITY, f64::min);
    println!(
        "4-node scaling: {} (floor for the perf gate: 3.2x)",
        datasets
            .iter()
            .map(|d| format!("{} {:.2}x", d.name, d.scaling_4node))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let dataset_json: Vec<String> = datasets
        .iter()
        .map(|d| {
            let rows: Vec<String> = d
                .rows
                .iter()
                .map(|r| {
                    format!(
                        "        {{\"nodes\": {}, \"workers\": {}, \"server_shards\": {}, \
                         \"strategy\": \"{}\", \"updates_per_sec\": {:.0}, \
                         \"ideal_updates_per_sec\": {:.0}}}",
                        r.nodes, r.workers, r.nodes, r.strategy, r.updates_per_sec, r.ideal
                    )
                })
                .collect();
            format!(
                "    {{\"name\": \"{}\", \"scaling_4node\": {:.4}, \"results\": [\n{}\n    ]}}",
                d.name,
                d.scaling_4node,
                rows.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"cluster_scaling\",\n  \"epochs\": {epochs},\n  \
         \"node_counts\": [1, 2, 4],\n  \"datasets\": [\n{}\n  ],\n  \
         \"scaling_4node_min\": {:.4},\n  \"delta\": {{\"workers\": {}, \"region_rows\": {}, \
         \"k\": {}, \"epochs\": {}, \"rows_shipped\": {}, \"rows_total\": {}, \
         \"bytes_shipped\": {}, \"bytes_full\": {}, \"shipped_ratio\": {:.6}}}\n}}\n",
        dataset_json.join(",\n"),
        scaling_min,
        delta.workers,
        delta.region_rows,
        delta.k,
        delta.epochs,
        delta.stats.rows_shipped,
        delta.stats.rows_total,
        delta.stats.bytes_shipped,
        delta.stats.bytes_full,
        shipped_ratio,
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
