//! Beyond the paper — multi-node scaling on the Fig. 2 cluster.
//!
//! The paper's testbed is one node; its Fig. 2 motivates the design with a
//! QPI ring of four 2-CPU nodes. This experiment asks: does HCC-MF's
//! centralized parameter server keep scaling when workers sit behind a
//! cross-node hop? (Spoiler, and the paper's own §4.6 logic: only while
//! `nnz/min(m,n)` keeps compute dominant — the server's sync and the
//! shared pull volume grow with worker count.)
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin cluster_scaling
//! ```

use hcc_bench::{fmt_mups, fmt_pct, plan, print_table};
use hcc_hetsim::{ideal_computing_power, simulate_training, ClusterBuilder, SimConfig, Workload};
use hcc_sparse::DatasetProfile;

fn main() {
    for profile in [DatasetProfile::yahoo_r2(), DatasetProfile::netflix()] {
        let wl = Workload::from_profile(&profile);
        let cfg = SimConfig::default();
        let mut rows = Vec::new();
        for nodes in 1..=4 {
            let platform = ClusterBuilder::new(nodes).build();
            let p = plan(&platform, &wl, &cfg);
            let sim = simulate_training(&platform, &wl, &cfg, &p.fractions, 20);
            let ideal = ideal_computing_power(&platform, &wl);
            rows.push(vec![
                nodes.to_string(),
                platform.worker_count().to_string(),
                format!("{:?}", p.strategy),
                fmt_mups(sim.computing_power),
                fmt_mups(ideal),
                fmt_pct(sim.computing_power / ideal),
            ]);
        }
        print_table(
            &format!(
                "cluster scaling — {} (2 CPUs + 2 GPUs per node)",
                profile.name
            ),
            &[
                "nodes",
                "workers",
                "strategy",
                "HCC power",
                "ideal",
                "utilization",
            ],
            &rows,
        );
    }
    println!(
        "\nreading: power keeps growing with nodes but utilization decays — the centralized \
         sync (serialized at the server) and the per-worker pull volume are the scaling \
         ceiling, which is exactly the limitation §6 leaves to future work."
    );
}
