//! Figure 3 — SGD-based MF performance across platforms, and their prices.
//!
//! (a) 20-epoch Netflix training time on single processors, on good
//!     collaborations (planned partition + Q-only COMM), and on the three
//!     deliberately bad configurations of §2.4.
//! (b) the hardware price catalog.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin fig3_platforms
//! ```

use hcc_bench::{fmt_secs, plan, print_table};
use hcc_comm::TransferStrategy;
use hcc_hetsim::{simulate_training, Platform, ProcessorProfile, SimConfig, Workload};
use hcc_sparse::DatasetProfile;

fn main() {
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let epochs = 20;
    let cfg = SimConfig::default();

    let mut rows = Vec::new();

    // Single processors: no communication, standalone rate.
    for profile in [
        ProcessorProfile::xeon_6242_24t(),
        ProcessorProfile::rtx_2080(),
        ProcessorProfile::rtx_2080_super(),
        ProcessorProfile::tesla_v100(),
    ] {
        let rate = profile.rates.netflix;
        let time = wl.nnz as f64 * epochs as f64 / rate;
        rows.push(vec![profile.name.clone(), "single".into(), fmt_secs(time)]);
    }

    // Good collaborations: planned partition, Q-only, shared COMM.
    let pairs = [
        Platform::pair(
            ProcessorProfile::xeon_6242_16t(),
            ProcessorProfile::rtx_2080(),
        ),
        Platform::pair(
            ProcessorProfile::xeon_6242_16t(),
            ProcessorProfile::rtx_2080_super(),
        ),
        Platform::pair(
            ProcessorProfile::rtx_2080(),
            ProcessorProfile::rtx_2080_super(),
        ),
    ];
    for platform in &pairs {
        let p = plan(platform, &wl, &cfg);
        let sim = simulate_training(platform, &wl, &cfg, &p.fractions, epochs);
        rows.push(vec![
            platform.name.clone(),
            "good collab".into(),
            fmt_secs(sim.total_time),
        ]);
    }

    // Bad collaborations, all on 6242 + 2080S.
    let bad_platform = Platform::pair(
        ProcessorProfile::xeon_6242_16t(),
        ProcessorProfile::rtx_2080_super(),
    );
    // Bad communication: unoptimized P&Q over the ps-lite transport.
    let bad_comm_cfg = SimConfig {
        strategy: TransferStrategy::FullPq,
        transport_efficiency: 0.15,
        ..Default::default()
    };
    let p = plan(&bad_platform, &wl, &bad_comm_cfg);
    let sim = simulate_training(&bad_platform, &wl, &bad_comm_cfg, &p.fractions, epochs);
    rows.push(vec![
        format!("{} (bad communication)", bad_platform.name),
        "bad collab".into(),
        fmt_secs(sim.total_time),
    ]);
    // Unbalanced data: uniform split despite a ~4× rate gap.
    let sim = simulate_training(&bad_platform, &wl, &cfg, &[0.5, 0.5], epochs);
    rows.push(vec![
        format!("{} (unbalanced data)", bad_platform.name),
        "bad collab".into(),
        fmt_secs(sim.total_time),
    ]);
    // Bad thread configuration: the CPU crippled to 10 threads but loaded
    // as if it had 16.
    let crippled = Platform::pair(
        ProcessorProfile::xeon_6242_10t(),
        ProcessorProfile::rtx_2080_super(),
    );
    let p16 = plan(&bad_platform, &wl, &cfg); // partition planned for 16T
    let sim = simulate_training(&crippled, &wl, &cfg, &p16.fractions, epochs);
    rows.push(vec![
        format!("{} (bad threads conf)", bad_platform.name),
        "bad collab".into(),
        fmt_secs(sim.total_time),
    ]);

    print_table(
        "Fig 3(a): Netflix, 20 epochs, k = 128 (simulated on calibrated profiles)",
        &["platform", "kind", "time"],
        &rows,
    );
    println!(
        "paper shape: GPUs ≈ 2–3× faster than the CPU; every good collaboration beats \
         its best single member; bad configs erase the benefit."
    );

    // Fig 3(b): prices.
    let mut price_rows = Vec::new();
    for profile in [
        ProcessorProfile::xeon_6242_16t(),
        ProcessorProfile::rtx_2080(),
        ProcessorProfile::rtx_2080_super(),
        ProcessorProfile::tesla_v100(),
    ] {
        price_rows.push(vec![
            profile.name.clone(),
            format!("${:.0}", profile.price_usd),
        ]);
    }
    for platform in &pairs {
        price_rows.push(vec![
            platform.name.clone(),
            format!("${:.0}", platform.total_price()),
        ]);
    }
    print_table(
        "Fig 3(b): platform prices (catalog estimates)",
        &["platform", "price"],
        &price_rows,
    );
    let combo = Platform::pair(
        ProcessorProfile::xeon_6242_16t(),
        ProcessorProfile::rtx_2080_super(),
    )
    .total_price();
    println!(
        "6242+2080S at ${combo:.0} is {:.0}% of a V100's price — the paper's economy argument.",
        100.0 * combo / ProcessorProfile::tesla_v100().price_usd
    );
}
