//! Figure 5 — epoch timing sequences under the three regimes:
//! unoptimized, DP1 (balanced, sync negligible), and DP2 (staggered,
//! sync hidden), rendered as ASCII timelines from simulator traces.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin fig5_timelines
//! ```

use hcc_bench::plan;
use hcc_comm::TransferStrategy;
use hcc_hetsim::{simulate_epoch, EpochTrace, Phase, Platform, SimConfig, Workload};
use hcc_partition::{dp0, dp2};
use hcc_sparse::DatasetProfile;

const WIDTH: usize = 72;

fn main() {
    let platform = Platform::paper_testbed_4workers();

    // Left sub-figure: original timing, no optimization — uniform split,
    // full P&Q transfers.
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let cfg = SimConfig {
        strategy: TransferStrategy::FullPq,
        ..Default::default()
    };
    let trace = simulate_epoch(&platform, &wl, &cfg, &[0.25; 4]);
    render(
        "unoptimized: uniform partition, P&Q transfers (Netflix)",
        &platform,
        &trace,
    );

    // Middle: optimized without considering sync — DP1 partition, Q-only.
    let cfg = SimConfig::default();
    let p = plan(&platform, &wl, &cfg);
    let trace = simulate_epoch(&platform, &wl, &cfg, &p.fractions);
    render("DP1: balanced compute, Q-only (Netflix)", &platform, &trace);

    // Right: sync-aware — DP2 staggering on the R1* workload where the
    // sync tail is material.
    let wl = Workload::from_profile(&DatasetProfile::r1_star());
    let x0 = dp0(&hcc_hetsim::standalone_times(&platform, &wl));
    let mut measure = hcc_hetsim::virtual_measure(&platform, &wl);
    let t = measure(&x0);
    let model = hcc_hetsim::cost_model_for(&platform, &wl, &cfg);
    let x2 = dp2(&x0, &t, model.sync_time_per_worker());
    let trace = simulate_epoch(&platform, &wl, &cfg, &x2);
    render("DP2: staggered compute hides sync (R1*)", &platform, &trace);
}

fn render(title: &str, platform: &Platform, trace: &EpochTrace) {
    println!("\n== {title} ==");
    println!("epoch = {:.1} ms", trace.epoch_time * 1e3);
    let scale = WIDTH as f64 / trace.epoch_time;
    for (w, name) in platform.worker_names().iter().enumerate() {
        let mut line = [b' '; WIDTH + 1];
        for span in trace.worker_spans(w) {
            let ch = match span.phase {
                Phase::Pull => b'<',
                Phase::Compute => b'#',
                Phase::Push => b'>',
                Phase::Sync => b'S',
            };
            let lo = (span.start * scale).floor() as usize;
            let hi = ((span.end * scale).ceil() as usize).min(WIDTH);
            for cell in line.iter_mut().take(hi.max(lo + 1).min(WIDTH + 1)).skip(lo) {
                *cell = ch;
            }
        }
        println!(
            "  {:<10} |{}|",
            name,
            String::from_utf8_lossy(&line[..WIDTH])
        );
    }
    println!("  {:<10}  < pull   # compute   > push   S server sync", "");
}
