//! Ablation — Strategy 3's stream count.
//!
//! Fig. 6 claims asynchronous computing–transmission reduces exposed
//! transfer cost toward `1/streams` without touching compute. This sweep
//! verifies the scaling law on the simulator for the communication-heavy
//! workloads, and shows the diminishing returns past ~4 streams.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin ablation_streams
//! ```

use hcc_bench::{fmt_secs, plan, print_table};
use hcc_hetsim::{simulate_epoch, Platform, SimConfig, Workload};
use hcc_sparse::DatasetProfile;

fn main() {
    for profile in [DatasetProfile::yahoo_r1(), DatasetProfile::movielens_20m()] {
        let platform = Platform::paper_testbed_3workers();
        let wl = Workload::from_profile(&profile);
        let base = simulate_epoch(
            &platform,
            &wl,
            &SimConfig::default(),
            &plan(&platform, &wl, &SimConfig::default()).fractions,
        );
        let base_exposed =
            base.epoch_time - base.totals.iter().map(|t| t.compute).fold(0.0f64, f64::max);

        let mut rows = Vec::new();
        for streams in [1usize, 2, 4, 8, 16] {
            let cfg = SimConfig {
                streams,
                ..Default::default()
            };
            let p = plan(&platform, &wl, &cfg);
            let trace = simulate_epoch(&platform, &wl, &cfg, &p.fractions);
            let max_compute = trace
                .totals
                .iter()
                .map(|t| t.compute)
                .fold(0.0f64, f64::max);
            let exposed = (trace.epoch_time - max_compute).max(0.0);
            rows.push(vec![
                streams.to_string(),
                fmt_secs(trace.epoch_time),
                fmt_secs(max_compute),
                fmt_secs(exposed),
                format!("{:.2}", exposed / base_exposed.max(1e-12)),
            ]);
        }
        print_table(
            &format!(
                "stream sweep — {} (Fig. 6: exposed transfer → 1/streams; GPUs cap at 4 streams)",
                profile.name
            ),
            &[
                "streams",
                "epoch",
                "max compute",
                "exposed comm+sync",
                "vs 1 stream",
            ],
            &rows,
        );
    }
    println!(
        "\nreading: exposed non-compute time falls steeply to 4 streams (the GPUs' copy-engine \
         limit in the profiles) and flattens after — matching Fig. 6's 1/streams argument with \
         a hardware ceiling."
    );
}
