//! Related-work shoot-out (§5): every solver in the repository trains the
//! same dataset with the same budget — serial SGD, FPSGD, CuMF_SGD-sim,
//! DSGD, NOMAD, and HCC-MF — reporting convergence and wall time.
//!
//! This is *real training* on this machine; on a single-core box the time
//! column measures overhead structure (barriers, channels, scheduling),
//! not parallel speedup.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin related_work
//! ```

use hcc_baselines::{CumfSgdSim, Dsgd, Fpsgd, Nomad, SerialSgd, TrainConfig, TrainReport};
use hcc_bench::{fmt_secs, print_table};
use hcc_mf::{HccConfig, HccMf, LearningRate, WorkerSpec};
use hcc_sparse::{DatasetProfile, SyntheticDataset};

fn main() {
    let profile = DatasetProfile::netflix();
    let ds = SyntheticDataset::generate(profile.scaled_gen_config(600.0, 42));
    let epochs = 25;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 4);
    println!(
        "dataset: Netflix-shaped {}×{} with {} ratings; k=16, {} epochs, {} thread(s)",
        ds.matrix.rows(),
        ds.matrix.cols(),
        ds.matrix.nnz(),
        epochs,
        threads
    );

    let cfg = TrainConfig {
        k: 16,
        epochs,
        learning_rate: LearningRate::Constant(0.01),
        lambda_p: 0.01,
        lambda_q: 0.01,
        threads,
        seed: 1,
        track_rmse: true,
    };

    let mut rows = Vec::new();
    let mut push = |name: &str, report: TrainReport| {
        rows.push(vec![
            name.to_string(),
            format!("{:.4}", report.rmse_history[0]),
            format!("{:.4}", report.rmse_history[epochs / 2]),
            format!("{:.4}", report.rmse_history[epochs - 1]),
            fmt_secs(report.total_time().as_secs_f64()),
            format!("{:.1}M/s", report.computing_power() / 1e6),
        ]);
    };

    push("serial SGD", SerialSgd.train(&ds.matrix, &cfg));
    push("FPSGD", Fpsgd::default().train(&ds.matrix, &cfg));
    push(
        "CuMF_SGD-sim",
        CumfSgdSim::default().train(&ds.matrix, &cfg),
    );
    push("DSGD", Dsgd::default().train(&ds.matrix, &cfg));
    push("NOMAD", Nomad.train(&ds.matrix, &cfg));

    let hcc_cfg = HccConfig::builder()
        .k(16)
        .epochs(epochs)
        .learning_rate(LearningRate::Constant(0.01))
        .lambda(0.01)
        .workers(vec![
            WorkerSpec::cpu(threads.div_ceil(2)),
            WorkerSpec::gpu_sim(threads),
        ])
        .track_rmse(true)
        .build();
    let report = HccMf::new(hcc_cfg).train(&ds.matrix).expect("hcc");
    rows.push(vec![
        "HCC-MF".to_string(),
        format!("{:.4}", report.rmse_history[0]),
        format!("{:.4}", report.rmse_history[epochs / 2]),
        format!("{:.4}", report.rmse_history[epochs - 1]),
        fmt_secs(report.total_time().as_secs_f64()),
        format!("{:.1}M/s", report.computing_power() / 1e6),
    ]);

    print_table(
        "related-work solvers, identical budget (real training)",
        &[
            "solver",
            "RMSE@1",
            "RMSE@mid",
            "RMSE@end",
            "time",
            "throughput",
        ],
        &rows,
    );
    println!(
        "\nreading: all solvers reach comparable final RMSE (the §4.2 equivalence); structural \
         overheads differ — DSGD pays d barriers/epoch, NOMAD pays channel hops, HCC-MF pays \
         pull/push/sync but hides them."
    );
}
