//! What-if — shared PCI-E links.
//!
//! §2.2 asserts that "as long as these connection channels are sufficient,
//! processors can communicate in parallel without losing bandwidth", and
//! every evaluation result leans on that independence. This experiment
//! quantifies what happens when it *doesn't* hold: both GPUs behind one
//! x16 switch (a common workstation board layout).
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin bus_contention
//! ```

use hcc_bench::{fmt_pct, fmt_secs, plan, print_table};
use hcc_hetsim::{
    ideal_computing_power, simulate_training, BusKind, Platform, ProcessorProfile, SimConfig,
    Workload,
};
use hcc_sparse::DatasetProfile;

fn main() {
    for profile in [DatasetProfile::netflix(), DatasetProfile::yahoo_r1()] {
        let wl = Workload::from_profile(&profile);
        // R1 runs the async strategy, as in the paper.
        let cfg = if profile.name.contains("R1") {
            SimConfig {
                streams: 4,
                ..Default::default()
            }
        } else {
            SimConfig::default()
        };

        let dedicated = Platform::new("dedicated x16 per GPU")
            .with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi)
            .with_worker(ProcessorProfile::rtx_2080(), BusKind::PciE3x16)
            .with_worker(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16);
        let shared = Platform::new("GPUs behind one x16 switch")
            .with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi)
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080(), BusKind::PciE3x16, 0)
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16, 0);

        let mut rows = Vec::new();
        for platform in [&dedicated, &shared] {
            let p = plan(platform, &wl, &cfg);
            let sim = simulate_training(platform, &wl, &cfg, &p.fractions, 20);
            let ideal = ideal_computing_power(platform, &wl);
            let comm: f64 = sim
                .epoch
                .totals
                .iter()
                .map(|t| (t.pull + t.push) * 20.0)
                .sum();
            rows.push(vec![
                platform.name.clone(),
                fmt_secs(sim.total_time),
                fmt_secs(comm),
                fmt_pct(sim.computing_power / ideal),
            ]);
        }
        print_table(
            &format!("bus contention — {} (20 epochs)", profile.name),
            &["topology", "total time", "cumulative comm", "utilization"],
            &rows,
        );
    }
    println!(
        "\nreading: on Netflix the Q-only payload is tiny, so halving GPU link bandwidth barely \
         registers; on R1 the shared switch bites even through the 4-stream pipeline — the \
         Fig.-2 channel-independence assumption matters exactly where communication is already \
         the bottleneck."
    );
}
