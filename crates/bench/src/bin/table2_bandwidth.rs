//! Table 2 — runtime memory bandwidth per worker: independent ("IW", full
//! data) vs. under the DP0 partition.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin table2_bandwidth
//! ```

use hcc_bench::print_table;
use hcc_hetsim::{bandwidth_table, standalone_times, Platform, Workload};
use hcc_partition::dp0;
use hcc_sparse::DatasetProfile;

fn main() {
    let platform = Platform::paper_testbed_4workers();
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let x0 = dp0(&standalone_times(&platform, &wl));

    // Paper Table 2 (GB/s): worker → (IW, DP0).
    let paper: &[(&str, f64, f64)] = &[
        ("6242-24T", 67.3001, 67.75335),
        ("6242L-10T", 39.31905, 39.5995),
        ("RTX 2080", 378.616, 388.7935),
        ("RTX 2080S", 407.095, 412.042),
    ];

    let rows: Vec<Vec<String>> = bandwidth_table(&platform, &x0)
        .into_iter()
        .map(|(name, iw, dp0_bw)| {
            let reference = paper.iter().find(|(n, _, _)| *n == name);
            let (p_iw, p_dp0) = reference
                .map(|(_, a, b)| (*a, *b))
                .unwrap_or((f64::NAN, f64::NAN));
            vec![
                name,
                format!("{iw:.1}"),
                format!("{dp0_bw:.1}"),
                format!("{p_iw:.1}"),
                format!("{p_dp0:.1}"),
            ]
        })
        .collect();

    print_table(
        "Table 2: memory bandwidth (GB/s), Netflix DP0 shares",
        &[
            "worker",
            "IW (ours)",
            "DP0 (ours)",
            "IW (paper)",
            "DP0 (paper)",
        ],
        &rows,
    );
    println!(
        "shape: GPU bandwidth rises slightly on the smaller DP0 shard; CPU bandwidth is flat \
         — the effect DP1's compensation loop corrects."
    );
    println!(
        "DP0 shares used: {:?}",
        x0.iter()
            .map(|v| (v * 1000.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
}
