//! Table 4 — per-processor "computing power" (Eq. 8), the platform ideal,
//! HCC-MF's achieved power, and the utilization percentage, per dataset.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin table4_power
//! ```

use hcc_bench::{fmt_mups, fmt_pct, plan, print_table};
use hcc_hetsim::{ideal_computing_power, simulate_training, Platform, SimConfig, Workload};
use hcc_sparse::DatasetProfile;

fn main() {
    let epochs = 20;

    // Paper Table 4 utilization for comparison.
    let paper_util = [
        ("Netflix", 0.86),
        ("Yahoo! Music R1", 0.62),
        ("Yahoo! Music R2", 0.88),
        ("MovieLens-20m", 0.46),
    ];

    let mut rows = Vec::new();
    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::yahoo_r2(),
        DatasetProfile::movielens_20m(),
    ] {
        let wl = Workload::from_profile(&profile);
        // §4.2 configuration: the overall testbed. On R1 the paper runs the
        // asynchronous computing-transmission strategy, which occupies the
        // server CPU (no time-sharing worker) and pipelines 4 streams.
        let (platform, cfg) = if profile.name.contains("R1") {
            (
                Platform::paper_testbed_3workers(),
                SimConfig {
                    streams: 4,
                    ..Default::default()
                },
            )
        } else {
            (Platform::paper_testbed_overall(), SimConfig::default())
        };

        let per_worker: Vec<String> = platform
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{}={}",
                    w.profile.name,
                    fmt_mups(w.profile.rates.rate(&wl.name, wl.m, wl.n, wl.nnz))
                )
            })
            .collect();

        let p = plan(&platform, &wl, &cfg);
        let sim = simulate_training(&platform, &wl, &cfg, &p.fractions, epochs);
        let ideal = ideal_computing_power(&platform, &wl);
        let util = sim.computing_power / ideal;
        let paper = paper_util
            .iter()
            .find(|(n, _)| *n == profile.name)
            .map(|(_, u)| fmt_pct(*u))
            .unwrap_or_default();
        rows.push(vec![
            profile.name.to_string(),
            per_worker.join(" "),
            fmt_mups(ideal),
            fmt_mups(sim.computing_power),
            fmt_pct(util),
            paper,
        ]);
    }

    print_table(
        "Table 4: computing power over 20 epochs (updates/s)",
        &[
            "dataset",
            "standalone rates",
            "ideal",
            "HCC",
            "util (ours)",
            "util (paper)",
        ],
        &rows,
    );
    println!(
        "shape: Netflix and R2 land near 85–90%, R1 well below them, MovieLens lowest \
         (communication-bound, §4.6)."
    );
}
