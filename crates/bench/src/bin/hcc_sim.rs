//! `hcc-sim` — interactive access to the virtual platform: plan a partition
//! and simulate an epoch for any dataset/worker/strategy combination.
//!
//! ```text
//! hcc-sim [--dataset netflix|r1|r1star|r2|movielens]
//!         [--workers testbed4|testbed3|overall|FILE-less specs: 6242,2080,2080s,v100,6242l]
//!         [--strategy pq|q|halfq] [--streams N] [--epochs N] [--csv PREFIX]
//! ```
//!
//! Example:
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin hcc-sim -- --dataset r1 --workers 6242,2080s --streams 4
//! ```

use hcc_bench::{fmt_mups, fmt_pct, fmt_secs, plan};
use hcc_comm::TransferStrategy;
use hcc_hetsim::{
    export, ideal_computing_power, simulate_epoch, simulate_training, BusKind, Platform,
    ProcessorProfile, SimConfig, Workload,
};
use hcc_sparse::DatasetProfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: hcc-sim [--dataset netflix|r1|r1star|r2|movielens] \
                 [--workers testbed4|testbed3|overall|6242,2080s,...] \
                 [--strategy pq|q|halfq] [--streams N] [--epochs N] [--csv PREFIX]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut dataset = "netflix".to_string();
    let mut workers = "testbed4".to_string();
    let mut strategy = TransferStrategy::QOnly;
    let mut streams = 1usize;
    let mut epochs = 20usize;
    let mut csv: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--dataset" => dataset = next("--dataset")?,
            "--workers" => workers = next("--workers")?,
            "--streams" => {
                streams = next("--streams")?
                    .parse()
                    .map_err(|e| format!("--streams: {e}"))?
            }
            "--epochs" => {
                epochs = next("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--csv" => csv = Some(next("--csv")?),
            "--strategy" => {
                strategy = match next("--strategy")?.as_str() {
                    "pq" => TransferStrategy::FullPq,
                    "q" => TransferStrategy::QOnly,
                    "halfq" => TransferStrategy::HalfQ,
                    other => return Err(format!("unknown strategy {other}")),
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }

    let profile = match dataset.as_str() {
        "netflix" => DatasetProfile::netflix(),
        "r1" => DatasetProfile::yahoo_r1(),
        "r1star" => DatasetProfile::r1_star(),
        "r2" => DatasetProfile::yahoo_r2(),
        "movielens" => DatasetProfile::movielens_20m(),
        other => return Err(format!("unknown dataset {other}")),
    };
    let platform = parse_platform(&workers)?;
    let wl = Workload::from_profile(&profile);
    let cfg = SimConfig {
        strategy,
        streams,
        ..Default::default()
    };

    println!(
        "platform: {} ({} workers, ${:.0})",
        platform.name,
        platform.worker_count(),
        platform.total_price()
    );
    println!(
        "workload: {} (m={}, n={}, nnz={}); strategy {}, {} stream(s)",
        profile.name,
        wl.m,
        wl.n,
        wl.nnz,
        strategy.label(),
        streams
    );

    let p = plan(&platform, &wl, &cfg);
    println!(
        "\nplanned partition ({:?}, sync ratio {:.1}):",
        p.strategy, p.sync_ratio
    );
    for (w, name) in platform.worker_names().iter().enumerate() {
        println!("  {name:<12} {:5.1}%", p.fractions[w] * 100.0);
    }

    let trace = simulate_epoch(&platform, &wl, &cfg, &p.fractions);
    println!("\nper-epoch phase totals:");
    println!(
        "  {:<12} {:>9} {:>9} {:>9}",
        "worker", "pull", "compute", "push"
    );
    for (w, name) in platform.worker_names().iter().enumerate() {
        let t = &trace.totals[w];
        println!(
            "  {:<12} {:>9} {:>9} {:>9}",
            name,
            fmt_secs(t.pull),
            fmt_secs(t.compute),
            fmt_secs(t.push)
        );
    }
    println!("  server sync total: {}", fmt_secs(trace.sync_total));
    println!("  epoch makespan:    {}", fmt_secs(trace.epoch_time));

    let sim = simulate_training(&platform, &wl, &cfg, &p.fractions, epochs);
    let ideal = ideal_computing_power(&platform, &wl);
    println!(
        "\n{epochs} epochs: {} — {} of {} ideal ({})",
        fmt_secs(sim.total_time),
        fmt_mups(sim.computing_power),
        fmt_mups(ideal),
        fmt_pct(sim.computing_power / ideal)
    );

    if let Some(prefix) = csv {
        let (spans, totals) =
            export::write_csvs(&prefix, &platform, &trace).map_err(|e| e.to_string())?;
        println!(
            "trace CSVs written: {} / {}",
            spans.display(),
            totals.display()
        );
    }
    Ok(())
}

fn parse_platform(spec: &str) -> Result<Platform, String> {
    match spec {
        "testbed4" => return Ok(Platform::paper_testbed_4workers()),
        "testbed3" => return Ok(Platform::paper_testbed_3workers()),
        "overall" => return Ok(Platform::paper_testbed_overall()),
        _ => {}
    }
    let mut platform = Platform::new(spec);
    for part in spec.split(',') {
        platform = match part {
            "6242" => platform.with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi),
            "6242-16t" => platform.with_worker(ProcessorProfile::xeon_6242_16t(), BusKind::Upi),
            "6242l" => platform.with_server_worker(ProcessorProfile::xeon_6242_10t()),
            "2080" => platform.with_worker(ProcessorProfile::rtx_2080(), BusKind::PciE3x16),
            "2080s" => platform.with_worker(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16),
            "v100" => platform.with_worker(ProcessorProfile::tesla_v100(), BusKind::PciE3x16),
            other => return Err(format!("unknown worker {other}")),
        };
    }
    Ok(platform)
}
