//! CI perf-regression gate: diffs a fresh quick-mode hotpath run against
//! the committed baseline and exits non-zero if any measured cell's
//! throughput dropped by more than the threshold.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin hotpath -- --quick --out current.json
//! cargo run --release -p hcc-bench --bin perf_gate -- \
//!     --baseline results/BENCH_hotpath_quick.json --current current.json \
//!     [--threshold 0.15]
//! ```
//!
//! A cell that exists in the baseline but not in the current run (e.g. the
//! SIMD tier stopped being detected) also fails the gate. CI runs this in
//! the `perf-gate` job; a genuine machine-variance false positive is
//! overridden by applying the `perf-override` label to the PR (documented
//! in `.github/workflows/ci.yml` and `results/README.md`).

use hcc_bench::gate::{compare, parse_hotpath};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = "results/BENCH_hotpath_quick.json".to_string();
    let mut current_path: Option<String> = None;
    let mut threshold = 0.15f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().expect("--baseline FILE").clone(),
            "--current" => current_path = Some(it.next().expect("--current FILE").clone()),
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold F (fraction, e.g. 0.15)")
            }
            other => panic!(
                "unknown flag {other} (supported: --baseline FILE, --current FILE, --threshold F)"
            ),
        }
    }
    let current_path = current_path.expect("perf_gate requires --current FILE");

    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
    };
    let baseline = parse_hotpath(&read(&baseline_path))
        .unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
    let current = parse_hotpath(&read(&current_path))
        .unwrap_or_else(|e| panic!("parsing current {current_path}: {e}"));

    let (verdicts, pass) = compare(&baseline, &current, threshold);
    println!(
        "perf gate: {} vs {} (fail below {:.0}% of baseline)",
        current_path,
        baseline_path,
        (1.0 - threshold) * 100.0
    );
    for v in &verdicts {
        match (v.current, v.ratio) {
            (Some(cur), Some(r)) => println!(
                "  {:<18} {:>10.0} -> {:>10.0} updates/s  ({:>5.1}%){}",
                v.cell,
                v.baseline,
                cur,
                r * 100.0,
                if v.regressed { "  REGRESSED" } else { "" }
            ),
            _ => println!(
                "  {:<18} {:>10.0} -> (missing)  REGRESSED",
                v.cell, v.baseline
            ),
        }
    }
    if pass {
        println!("perf gate: PASS");
    } else {
        println!(
            "perf gate: FAIL — throughput regressed more than {:.0}%. If this is machine \
             variance rather than a real regression, apply the `perf-override` label to the PR \
             or regenerate the baseline with `cargo run --release -p hcc-bench --bin hotpath -- \
             --quick`.",
            threshold * 100.0
        );
        std::process::exit(1);
    }
}
