//! CI perf-regression gate: diffs fresh quick-mode bench runs against the
//! committed baselines and exits non-zero if any measured cell's
//! throughput dropped by more than the threshold.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin hotpath -- --quick --out current.json
//! cargo run --release -p hcc-bench --bin perf_gate -- \
//!     --baseline results/BENCH_hotpath_quick.json --current current.json \
//!     [--threshold 0.15]
//!
//! # optionally also gate the serving bench in the same invocation:
//! cargo run --release -p hcc-bench --bin serving -- --quick --out serving.json
//! cargo run --release -p hcc-bench --bin perf_gate -- \
//!     --baseline results/BENCH_hotpath_quick.json --current current.json \
//!     --serving-baseline results/BENCH_serving_quick.json --serving-current serving.json
//!
//! # and/or the quantized serving bench (also enforces the recall floor):
//! cargo run --release -p hcc-bench --bin serving_quant -- --quick --out quant.json
//! cargo run --release -p hcc-bench --bin perf_gate -- \
//!     --quant-baseline results/BENCH_serving_quant_quick.json --quant-current quant.json
//!
//! # and/or the cluster-scaling bench (also enforces the 3.2x scaling floor):
//! cargo run --release -p hcc-bench --bin cluster_scaling -- --out cluster.json
//! cargo run --release -p hcc-bench --bin perf_gate -- \
//!     --cluster-baseline results/BENCH_cluster.json --cluster-current cluster.json
//! ```
//!
//! A cell that exists in a baseline but not in the current run (e.g. the
//! SIMD tier stopped being detected, or a batch size was dropped) also
//! fails the gate. CI runs this in the `perf-gate` job; a genuine
//! machine-variance false positive is overridden by applying the
//! `perf-override` label to the PR (documented in
//! `.github/workflows/ci.yml` and `results/README.md`).

use hcc_bench::gate::{
    compare, compare_cluster, compare_serving, compare_serving_quant, parse_cluster, parse_hotpath,
    parse_serving, parse_serving_quant, Verdict,
};

/// Recall floor for the quantized serving gate: quantization or pruning
/// changes that trade more than a point of recall@topk for speed fail even
/// when throughput holds.
const QUANT_RECALL_FLOOR: f64 = 0.99;

/// Scaling floor for the cluster gate: the node-sharded server must keep
/// at least 3.2x of the 1-node throughput at 4 nodes on every dataset.
const CLUSTER_SCALING_FLOOR: f64 = 3.2;

fn print_verdicts(title: &str, baseline_path: &str, current_path: &str, verdicts: &[Verdict]) {
    println!("perf gate [{title}]: {current_path} vs {baseline_path}");
    for v in verdicts {
        match (v.current, v.ratio) {
            (Some(cur), Some(r)) => println!(
                "  {:<22} {:>10.0} -> {:>10.0} /s  ({:>5.1}%){}",
                v.cell,
                v.baseline,
                cur,
                r * 100.0,
                if v.regressed { "  REGRESSED" } else { "" }
            ),
            _ => println!(
                "  {:<22} {:>10.0} -> (missing)  REGRESSED",
                v.cell, v.baseline
            ),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path = "results/BENCH_hotpath_quick.json".to_string();
    let mut current_path: Option<String> = None;
    let mut serving_baseline_path = "results/BENCH_serving_quick.json".to_string();
    let mut serving_current_path: Option<String> = None;
    let mut quant_baseline_path = "results/BENCH_serving_quant_quick.json".to_string();
    let mut quant_current_path: Option<String> = None;
    let mut cluster_baseline_path = "results/BENCH_cluster.json".to_string();
    let mut cluster_current_path: Option<String> = None;
    let mut threshold = 0.15f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().expect("--baseline FILE").clone(),
            "--current" => current_path = Some(it.next().expect("--current FILE").clone()),
            "--serving-baseline" => {
                serving_baseline_path = it.next().expect("--serving-baseline FILE").clone()
            }
            "--serving-current" => {
                serving_current_path = Some(it.next().expect("--serving-current FILE").clone())
            }
            "--quant-baseline" => {
                quant_baseline_path = it.next().expect("--quant-baseline FILE").clone()
            }
            "--quant-current" => {
                quant_current_path = Some(it.next().expect("--quant-current FILE").clone())
            }
            "--cluster-baseline" => {
                cluster_baseline_path = it.next().expect("--cluster-baseline FILE").clone()
            }
            "--cluster-current" => {
                cluster_current_path = Some(it.next().expect("--cluster-current FILE").clone())
            }
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threshold F (fraction, e.g. 0.15)")
            }
            other => panic!(
                "unknown flag {other} (supported: --baseline FILE, --current FILE, \
                 --serving-baseline FILE, --serving-current FILE, \
                 --quant-baseline FILE, --quant-current FILE, \
                 --cluster-baseline FILE, --cluster-current FILE, --threshold F)"
            ),
        }
    }
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
    };
    println!(
        "perf gate: fail below {:.0}% of baseline",
        (1.0 - threshold) * 100.0
    );

    let mut pass = true;
    let mut gated = false;
    if let Some(current_path) = &current_path {
        let baseline = parse_hotpath(&read(&baseline_path))
            .unwrap_or_else(|e| panic!("parsing baseline {baseline_path}: {e}"));
        let current = parse_hotpath(&read(current_path))
            .unwrap_or_else(|e| panic!("parsing current {current_path}: {e}"));
        let (verdicts, ok) = compare(&baseline, &current, threshold);
        print_verdicts("hotpath", &baseline_path, current_path, &verdicts);
        pass &= ok;
        gated = true;
    }
    if let Some(serving_current_path) = &serving_current_path {
        let (baseline, _) = parse_serving(&read(&serving_baseline_path))
            .unwrap_or_else(|e| panic!("parsing serving baseline {serving_baseline_path}: {e}"));
        let (current, speedup) = parse_serving(&read(serving_current_path))
            .unwrap_or_else(|e| panic!("parsing serving current {serving_current_path}: {e}"));
        let (verdicts, ok) = compare_serving(&baseline, &current, threshold);
        print_verdicts(
            "serving",
            &serving_baseline_path,
            serving_current_path,
            &verdicts,
        );
        println!("  batch-256 vs naive speedup: {speedup:.2}x");
        pass &= ok;
        gated = true;
    }
    if let Some(quant_current_path) = &quant_current_path {
        let (baseline, _) = parse_serving_quant(&read(&quant_baseline_path))
            .unwrap_or_else(|e| panic!("parsing quant baseline {quant_baseline_path}: {e}"));
        let (current, speedup) = parse_serving_quant(&read(quant_current_path))
            .unwrap_or_else(|e| panic!("parsing quant current {quant_current_path}: {e}"));
        let (verdicts, ok) =
            compare_serving_quant(&baseline, &current, threshold, QUANT_RECALL_FLOOR);
        print_verdicts(
            "serving_quant",
            &quant_baseline_path,
            quant_current_path,
            &verdicts,
        );
        for r in &current {
            if r.recall_at_topk < QUANT_RECALL_FLOOR {
                println!(
                    "  {}+{} recall {:.4} below the {QUANT_RECALL_FLOOR} floor  REGRESSED",
                    r.precision,
                    if r.pruned { "pruned" } else { "exhaustive" },
                    r.recall_at_topk
                );
            }
        }
        println!("  best cell vs f32 exhaustive speedup: {speedup:.2}x");
        pass &= ok;
        gated = true;
    }
    if let Some(cluster_current_path) = &cluster_current_path {
        let (baseline, _) = parse_cluster(&read(&cluster_baseline_path))
            .unwrap_or_else(|e| panic!("parsing cluster baseline {cluster_baseline_path}: {e}"));
        let (current, scaling_min) = parse_cluster(&read(cluster_current_path))
            .unwrap_or_else(|e| panic!("parsing cluster current {cluster_current_path}: {e}"));
        let (verdicts, ok) = compare_cluster(&baseline, &current, threshold);
        print_verdicts(
            "cluster",
            &cluster_baseline_path,
            cluster_current_path,
            &verdicts,
        );
        if scaling_min < CLUSTER_SCALING_FLOOR {
            println!(
                "  4-node scaling {scaling_min:.2}x below the {CLUSTER_SCALING_FLOOR}x floor  \
                 REGRESSED"
            );
        }
        println!("  worst-case 4-node scaling: {scaling_min:.2}x");
        pass &= ok && scaling_min >= CLUSTER_SCALING_FLOOR;
        gated = true;
    }
    if !gated {
        panic!(
            "perf_gate requires --current FILE, --serving-current FILE, \
             --quant-current FILE and/or --cluster-current FILE"
        );
    }

    if pass {
        println!("perf gate: PASS");
    } else {
        println!(
            "perf gate: FAIL — throughput regressed more than {:.0}%. If this is machine \
             variance rather than a real regression, apply the `perf-override` label to the PR \
             or regenerate the baseline with `cargo run --release -p hcc-bench --bin hotpath -- \
             --quick` / `--bin serving -- --quick`.",
            threshold * 100.0
        );
        std::process::exit(1);
    }
}
