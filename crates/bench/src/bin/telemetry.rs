//! Telemetry bench: runs real 4-worker training under each data-partition
//! strategy (DP0, DP1, DP2) with the observability subsystem enabled,
//! and writes the per-epoch phase breakdown — the measured decomposition of
//! Eq. 1's `t_pull + t_comp + t_push + t_sync` — plus the cost-model
//! validation summary to `results/BENCH_epoch_breakdown.json`.
//!
//! It also measures the overhead of enabling telemetry at all: the same
//! configuration is trained with the subsystem disabled and enabled, and
//! the wall-time delta lands in the JSON's `telemetry_overhead` object.
//! The design budget is < 2% (DESIGN.md §9); the disabled path must be a
//! single branch per call site.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin telemetry [-- --out FILE.json]
//! ```

use hcc_mf::{HccConfig, HccMf, HccReport, PartitionMode, WorkerSpec};
use hcc_sparse::{GenConfig, SyntheticDataset};
use hcc_telemetry::epoch_breakdown;
use std::time::Instant;

const K: usize = 16;
const NNZ: usize = 80_000;
const EPOCHS: usize = 5;

fn workers() -> Vec<WorkerSpec> {
    // Heterogeneous on purpose: the throttled worker gives DP1/DP2 a real
    // imbalance to correct, so the breakdown shows the strategies differ.
    vec![
        WorkerSpec::cpu(1),
        WorkerSpec::cpu(1).throttled(0.5),
        WorkerSpec::cpu(2),
        WorkerSpec::cpu(1),
    ]
}

fn train(
    ds: &SyntheticDataset,
    mode: PartitionMode,
    epochs: usize,
    telemetry: Option<&std::path::Path>,
) -> HccReport {
    let mut builder = HccConfig::builder()
        .k(K)
        .epochs(epochs)
        .workers(workers())
        .partition(mode)
        .seed(17);
    if let Some(path) = telemetry {
        builder = builder.telemetry(path);
    }
    HccMf::new(builder.build()).train(&ds.matrix).unwrap()
}

fn mode_json(name: &str, report: &HccReport) -> String {
    let timeline = report.timeline.as_ref().expect("telemetry was enabled");
    let epochs: Vec<String> = epoch_breakdown(timeline)
        .iter()
        .map(|b| {
            let per_worker: Vec<String> = b
                .workers
                .iter()
                .map(|t| {
                    format!(
                        "{{\"pull_secs\": {:.6}, \"comp_secs\": {:.6}, \"push_secs\": {:.6}, \"sync_secs\": {:.6}}}",
                        t.pull, t.comp, t.push, t.sync
                    )
                })
                .collect();
            format!(
                "        {{\"epoch\": {}, \"wall_secs\": {:.6}, \"pull_bytes\": {}, \"push_bytes\": {}, \"workers\": [{}]}}",
                b.epoch,
                b.wall,
                b.pull_bytes,
                b.push_bytes,
                per_worker.join(", ")
            )
        })
        .collect();
    let validation = hcc_mf::observe::model_validation(report).map_or("null".to_string(), |v| {
        format!(
            "{{\"mean_error\": {:.6}, \"worst_error\": {:.6}, \"epochs_scored\": {}}}",
            v.mean_error, v.worst_error, v.epochs_scored
        )
    });
    format!
        ("    {{\"mode\": \"{name}\", \"epochs\": [\n{}\n      ], \"model_validation\": {validation}}}",
        epochs.join(",\n")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "results/BENCH_epoch_breakdown.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().expect("--out FILE.json").clone(),
            other => panic!("unknown flag {other} (supported: --out FILE)"),
        }
    }

    println!("generating dataset ({NNZ} ratings, k = {K})...");
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 2_000,
        cols: 1_000,
        nnz: NNZ,
        seed: 17,
        ..GenConfig::default()
    });
    let scratch = std::env::temp_dir().join("hcc_bench_telemetry.jsonl");

    let mut modes = Vec::new();
    for (name, mode) in [
        ("dp0", PartitionMode::Dp0),
        ("dp1", PartitionMode::Dp1),
        ("dp2", PartitionMode::Dp2),
    ] {
        println!("training under {name}...");
        let report = train(&ds, mode, EPOCHS, Some(&scratch));
        let timeline = report.timeline.as_ref().unwrap();
        println!(
            "  {} events, {} epochs, {} rollbacks",
            timeline.events.len(),
            report.epoch_times.len(),
            report.rollbacks
        );
        modes.push(mode_json(name, &report));
    }
    std::fs::remove_file(&scratch).ok();

    // Overhead of flipping telemetry on, measured on DP0 (the steadiest
    // mode: no repartitioning mid-run). The run is long enough (many
    // epochs) that per-run fixed costs — ring-buffer allocation, the final
    // sort, the JSONL file write — amortize the way they do in real
    // training. Each configuration is trained several times and the
    // *minimum* wall time kept — the noise-robust estimator for a fixed
    // workload — after one warm-up each.
    println!("measuring telemetry overhead (disabled vs enabled)...");
    const REPS: usize = 7;
    const OVERHEAD_EPOCHS: usize = 20;
    // A larger matrix than the breakdown runs: epochs of a few milliseconds
    // make the per-call cost visible at its realistic relative scale rather
    // than swamped by per-epoch fixed costs.
    let big = SyntheticDataset::generate(GenConfig {
        rows: 8_000,
        cols: 4_000,
        nnz: 400_000,
        seed: 18,
        ..GenConfig::default()
    });
    let timed = |telemetry: Option<&std::path::Path>| {
        let t = Instant::now();
        train(&big, PartitionMode::Dp0, OVERHEAD_EPOCHS, telemetry);
        t.elapsed().as_secs_f64()
    };
    // Interleaved min-of-N: alternating the two configurations decorrelates
    // slow machine-state drift (frequency scaling, cache temperature) from
    // the disabled/enabled comparison.
    timed(None);
    timed(Some(&scratch)); // warm-ups
    let mut disabled_secs = f64::INFINITY;
    let mut enabled_secs = f64::INFINITY;
    for _ in 0..REPS {
        disabled_secs = disabled_secs.min(timed(None));
        enabled_secs = enabled_secs.min(timed(Some(&scratch)));
    }
    std::fs::remove_file(&scratch).ok();
    let overhead_frac = enabled_secs / disabled_secs - 1.0;
    println!(
        "  disabled {disabled_secs:.3}s, enabled {enabled_secs:.3}s -> {:+.2}% (budget < 2%)",
        overhead_frac * 100.0
    );

    let json = format!(
        "{{\n  \"bench\": \"epoch_breakdown\",\n  \"k\": {K},\n  \"nnz\": {NNZ},\n  \
         \"workers\": 4,\n  \"epochs\": {EPOCHS},\n  \"modes\": [\n{}\n  ],\n  \
         \"telemetry_overhead\": {{\"disabled_secs\": {disabled_secs:.6}, \
         \"enabled_secs\": {enabled_secs:.6}, \"overhead_frac\": {overhead_frac:.6}}}\n}}\n",
        modes.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("wrote {out}");
}
