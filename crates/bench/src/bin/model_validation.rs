//! Model validation — §4.3's claim that "the actual execution process of
//! HCC-MF is consistent with the proposed time cost model".
//!
//! The closed-form model (Eqs. 1–4) predicts the epoch makespan from the
//! partition vector; the discrete-event simulator executes the full
//! pipeline with stream overlap and a serialized sync queue. This binary
//! compares the two across datasets and partitions and reports the
//! relative error — small errors mean the paper's analytical planning on
//! top of the model is sound.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin model_validation [-- --measured]
//! ```
//!
//! With `--measured`, a real heterogeneous 4-worker training run executes
//! with telemetry enabled and the *measured* per-worker `t_comp` is scored
//! against the model's prediction from the partition fractions — the
//! workflow described in DESIGN.md §9.3. `results/model_validation.txt`
//! archives the combined output.

use hcc_bench::{fmt_secs, plan, print_table};
use hcc_hetsim::{cost_model_for, simulate_epoch, standalone_times, Platform, SimConfig, Workload};
use hcc_partition::dp0;
use hcc_sparse::DatasetProfile;

/// Trains for real (no simulation) with telemetry on, and prints the
/// measured-vs-model report for each partition strategy.
fn measured_section() {
    use hcc_mf::{HccConfig, HccMf, PartitionMode, WorkerSpec};
    use hcc_sparse::{GenConfig, SyntheticDataset};

    println!("\n== measured-vs-model validation (real training, telemetry on) ==");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "host parallelism: {cores} core(s) for 5 threads (4 workers + server){}",
        if cores < 5 {
            " — workers timeshare cores, so wall-clock t_comp includes descheduled \
             time and the per-worker-constant-bandwidth assumption degrades"
        } else {
            ""
        }
    );
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 2_000,
        cols: 1_000,
        nnz: 80_000,
        seed: 17,
        ..GenConfig::default()
    });
    let scratch = std::env::temp_dir().join("hcc_model_validation.jsonl");
    for (name, mode) in [
        ("DP0", PartitionMode::Dp0),
        ("DP1", PartitionMode::Dp1),
        ("DP2", PartitionMode::Dp2),
    ] {
        let config = HccConfig::builder()
            .k(16)
            .epochs(6)
            .workers(vec![
                WorkerSpec::cpu(1),
                WorkerSpec::cpu(1).throttled(0.5),
                WorkerSpec::cpu(2),
                WorkerSpec::cpu(1),
            ])
            .partition(mode)
            .seed(17)
            .telemetry(&scratch)
            .build();
        let report = HccMf::new(config).train(&ds.matrix).unwrap();
        println!("\n[{name}]");
        match hcc_mf::observe::model_validation(&report) {
            Some(v) => print!("{}", hcc_mf::observe::model_validation_text(&v)),
            None => println!("too few comparable epochs to score"),
        }
    }
    std::fs::remove_file(&scratch).ok();
}

fn main() {
    let measured = std::env::args().skip(1).any(|a| a == "--measured");
    let cfg = SimConfig::default();
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;

    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::yahoo_r2(),
        DatasetProfile::movielens_20m(),
    ] {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let model = cost_model_for(&platform, &wl, &cfg);

        let uniform = vec![0.25; 4];
        let x0 = dp0(&standalone_times(&platform, &wl));
        let planned = plan(&platform, &wl, &cfg).fractions;

        for (name, x) in [("uniform", &uniform), ("DP0", &x0), ("planned", &planned)] {
            let trace = simulate_epoch(&platform, &wl, &cfg, x);
            // Eq. 4 with every sync trailing the slowest worker — an upper
            // bound; and with one trailing sync — a lower bound. The
            // discrete-event result must land between them, near the
            // single-sync form when workers are staggered.
            let t_upper = model.epoch_time(x, platform.worker_count());
            let t_lower = model.epoch_time(x, 1);
            let sim = trace.epoch_time;
            let mid = 0.5 * (t_upper + t_lower);
            let err = (sim - mid).abs() / mid;
            worst = worst.max(err);
            // The model evaluates B_i at full-data bandwidth; the executed
            // pipeline enjoys the Table-2 bandwidth lift on small GPU
            // shards, so the simulation may undercut the lower bound by
            // that ~1-3% — exactly the neglect DP1 compensates. Allow it.
            let inside = sim >= t_lower * 0.96 && sim <= t_upper * 1.02;
            rows.push(vec![
                profile.name.to_string(),
                name.to_string(),
                fmt_secs(t_lower),
                fmt_secs(sim),
                fmt_secs(t_upper),
                format!("{}", if inside { "yes" } else { "NO" }),
                format!("{:.1}%", err * 100.0),
            ]);
        }
    }

    print_table(
        "time-cost model vs discrete-event simulation (one epoch, 4-worker testbed)",
        &[
            "dataset",
            "partition",
            "model (1 sync)",
            "simulated",
            "model (p syncs)",
            "in bounds",
            "err vs midpoint",
        ],
        &rows,
    );
    println!(
        "\nworst midpoint error {:.1}% — the closed-form model (Eq. 4) brackets the executed \
         pipeline to within the GPU bandwidth-shift it deliberately neglects (Table 2, the \
         effect DP1 corrects), validating planning on the model (§4.3).",
        worst * 100.0
    );

    if measured {
        measured_section();
    }
}
