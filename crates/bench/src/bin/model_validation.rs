//! Model validation — §4.3's claim that "the actual execution process of
//! HCC-MF is consistent with the proposed time cost model".
//!
//! The closed-form model (Eqs. 1–4) predicts the epoch makespan from the
//! partition vector; the discrete-event simulator executes the full
//! pipeline with stream overlap and a serialized sync queue. This binary
//! compares the two across datasets and partitions and reports the
//! relative error — small errors mean the paper's analytical planning on
//! top of the model is sound.
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin model_validation
//! ```

use hcc_bench::{fmt_secs, plan, print_table};
use hcc_hetsim::{cost_model_for, simulate_epoch, standalone_times, Platform, SimConfig, Workload};
use hcc_partition::dp0;
use hcc_sparse::DatasetProfile;

fn main() {
    let cfg = SimConfig::default();
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;

    for profile in [
        DatasetProfile::netflix(),
        DatasetProfile::yahoo_r1(),
        DatasetProfile::yahoo_r2(),
        DatasetProfile::movielens_20m(),
    ] {
        let platform = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&profile);
        let model = cost_model_for(&platform, &wl, &cfg);

        let uniform = vec![0.25; 4];
        let x0 = dp0(&standalone_times(&platform, &wl));
        let planned = plan(&platform, &wl, &cfg).fractions;

        for (name, x) in [("uniform", &uniform), ("DP0", &x0), ("planned", &planned)] {
            let trace = simulate_epoch(&platform, &wl, &cfg, x);
            // Eq. 4 with every sync trailing the slowest worker — an upper
            // bound; and with one trailing sync — a lower bound. The
            // discrete-event result must land between them, near the
            // single-sync form when workers are staggered.
            let t_upper = model.epoch_time(x, platform.worker_count());
            let t_lower = model.epoch_time(x, 1);
            let sim = trace.epoch_time;
            let mid = 0.5 * (t_upper + t_lower);
            let err = (sim - mid).abs() / mid;
            worst = worst.max(err);
            // The model evaluates B_i at full-data bandwidth; the executed
            // pipeline enjoys the Table-2 bandwidth lift on small GPU
            // shards, so the simulation may undercut the lower bound by
            // that ~1-3% — exactly the neglect DP1 compensates. Allow it.
            let inside = sim >= t_lower * 0.96 && sim <= t_upper * 1.02;
            rows.push(vec![
                profile.name.to_string(),
                name.to_string(),
                fmt_secs(t_lower),
                fmt_secs(sim),
                fmt_secs(t_upper),
                format!("{}", if inside { "yes" } else { "NO" }),
                format!("{:.1}%", err * 100.0),
            ]);
        }
    }

    print_table(
        "time-cost model vs discrete-event simulation (one epoch, 4-worker testbed)",
        &[
            "dataset",
            "partition",
            "model (1 sync)",
            "simulated",
            "model (p syncs)",
            "in bounds",
            "err vs midpoint",
        ],
        &rows,
    );
    println!(
        "\nworst midpoint error {:.1}% — the closed-form model (Eq. 4) brackets the executed \
         pipeline to within the GPU bandwidth-shift it deliberately neglects (Table 2, the \
         effect DP1 corrects), validating planning on the model (§4.3).",
        worst * 100.0
    );
}
