//! Figure 7 — convergence: RMSE vs epoch (a–c) and RMSE vs training time
//! with speedups (d–f), HCC-MF vs FPSGD vs CuMF_SGD.
//!
//! Parts (a–c) run *real training* on laptop-scale datasets with each
//! dataset's paper shape; the claim under test is §4.2's "equivalent
//! convergence rate". Parts (d–f) report measured wall-clock on this
//! machine plus the paper-scale speedup the calibrated simulator predicts
//! (this box has no GPU — see DESIGN.md).
//!
//! ```sh
//! cargo run --release -p hcc-bench --bin fig7_convergence
//! ```

use hcc_baselines::{CumfSgdSim, Fpsgd, TrainConfig};
use hcc_bench::{fmt_secs, plan, print_table};
use hcc_hetsim::{simulate_training, Platform, ProcessorProfile, SimConfig, Workload};
use hcc_mf::{HccConfig, HccMf, LearningRate, WorkerSpec};
use hcc_sparse::{DatasetProfile, SyntheticDataset};

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("running real training on {cores} core(s); k = 16, 40 epochs, scaled datasets");
    if cores == 1 {
        println!("NOTE: single-core machine — wall-clock speedups between solvers are not");
        println!("meaningful here; convergence curves are. Paper-scale speedups below come");
        println!("from the calibrated simulator.");
    }

    let epochs = 40;
    let threads = cores.clamp(1, 4);

    for (profile, scale) in [
        (DatasetProfile::netflix(), 600.0),
        (DatasetProfile::yahoo_r1(), 800.0),
        (DatasetProfile::yahoo_r2(), 2500.0),
    ] {
        let gen = profile.scaled_gen_config(scale, 42);
        let ds = SyntheticDataset::generate(gen.clone());
        println!(
            "\n=== {} (scaled {:.0}x: {}×{}, {} nnz) ===",
            profile.name,
            scale,
            ds.matrix.rows(),
            ds.matrix.cols(),
            ds.matrix.nnz()
        );

        // The paper's own hyper-parameters (Table 3): γ = 0.005 everywhere,
        // λ = 1 on R1 (which is what keeps the 0–100-scale ratings stable).
        let lr = LearningRate::Constant(profile.learning_rate);
        let lambda = profile.lambda;

        // FPSGD and CuMF_SGD-sim baselines.
        let base_cfg = TrainConfig {
            k: 16,
            epochs,
            learning_rate: lr,
            lambda_p: lambda,
            lambda_q: lambda,
            threads,
            seed: 1,
            track_rmse: true,
        };
        let t0 = std::time::Instant::now();
        let fpsgd = Fpsgd::default().train(&ds.matrix, &base_cfg);
        let fpsgd_time = t0.elapsed();
        let t0 = std::time::Instant::now();
        let cumf = CumfSgdSim::default().train(&ds.matrix, &base_cfg);
        let cumf_time = t0.elapsed();

        // HCC-MF with a heterogeneous worker set.
        let hcc_cfg = HccConfig::builder()
            .k(16)
            .epochs(epochs)
            .learning_rate(lr)
            .lambda(lambda)
            .workers(vec![
                WorkerSpec::cpu(threads.div_ceil(2)),
                WorkerSpec::gpu_sim(threads),
            ])
            .track_rmse(true)
            .build();
        let t0 = std::time::Instant::now();
        let hcc = HccMf::new(hcc_cfg)
            .train(&ds.matrix)
            .expect("hcc training failed");
        let hcc_time = t0.elapsed();

        // (a–c): RMSE vs epoch, sampled.
        let mut rows = Vec::new();
        for e in [0usize, 4, 9, 19, 29, 39] {
            rows.push(vec![
                format!("{}", e + 1),
                format!("{:.4}", hcc.rmse_history[e]),
                format!("{:.4}", fpsgd.rmse_history[e]),
                format!("{:.4}", cumf.rmse_history[e]),
            ]);
        }
        print_table(
            &format!("Fig 7(a–c): {} — RMSE by epoch", profile.name),
            &["epoch", "HCC", "FPSGD", "CuMF_SGD"],
            &rows,
        );
        let final_gap = (hcc.rmse_history[epochs - 1] - fpsgd.rmse_history[epochs - 1]).abs()
            / fpsgd.rmse_history[epochs - 1];
        println!(
            "final-RMSE gap HCC vs FPSGD: {:.1}% (paper: convergence rates equivalent)",
            100.0 * final_gap
        );

        // (d–f): measured wall time + simulated paper-scale speedups.
        let wl = Workload::from_profile(&profile);
        let (platform, sim_cfg) = if profile.name.contains("R1") {
            (
                Platform::paper_testbed_3workers(),
                SimConfig {
                    streams: 4,
                    ..Default::default()
                },
            )
        } else {
            (Platform::paper_testbed_overall(), SimConfig::default())
        };
        let p = plan(&platform, &wl, &sim_cfg);
        let hcc_sim = simulate_training(&platform, &wl, &sim_cfg, &p.fractions, 20);
        let cumf_sim_time = wl.nnz as f64 * 20.0
            / ProcessorProfile::rtx_2080_super()
                .rates
                .rate(&wl.name, wl.m, wl.n, wl.nnz);
        let fpsgd_sim_time = wl.nnz as f64 * 20.0
            / ProcessorProfile::xeon_6242_24t()
                .rates
                .rate(&wl.name, wl.m, wl.n, wl.nnz);
        print_table(
            &format!("Fig 7(d–f): {} — training time", profile.name),
            &[
                "solver",
                "measured (this box)",
                "paper-scale sim (20 ep)",
                "sim speedup vs HCC",
            ],
            &[
                vec![
                    "HCC".into(),
                    fmt_secs(hcc_time.as_secs_f64()),
                    fmt_secs(hcc_sim.total_time),
                    "1.0x".into(),
                ],
                vec![
                    "CuMF_SGD (2080S)".into(),
                    fmt_secs(cumf_time.as_secs_f64()),
                    fmt_secs(cumf_sim_time),
                    format!("{:.2}x", cumf_sim_time / hcc_sim.total_time),
                ],
                vec![
                    "FPSGD (6242)".into(),
                    fmt_secs(fpsgd_time.as_secs_f64()),
                    fmt_secs(fpsgd_sim_time),
                    format!("{:.2}x", fpsgd_sim_time / hcc_sim.total_time),
                ],
            ],
        );
        println!(
            "paper speedups (HCC over CuMF / FPSGD): Netflix 2.3x/5.75x, R1 1.43x/6.96x, \
             R2 2.9x/3.13x"
        );
    }
}
