//! The perf-regression gate's comparison logic, plus schema validators for
//! every committed `results/BENCH_*.json` artifact.
//!
//! Parsing goes through `hcc_telemetry::json` (the same vendored parser the
//! telemetry JSONL reader uses), so the gate binary stays dependency-free.
//! The schemas themselves are documented in `results/README.md`; the
//! validators here are the executable version of that document and run as
//! unit tests against the committed artifacts.

use hcc_telemetry::json::{self, Value};

/// One measured cell of the hotpath bench: a (backend, schedule) pair and
/// its throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct HotpathRow {
    pub backend: String,
    pub schedule: String,
    pub updates_per_sec: f64,
}

/// The gate's verdict for one cell present in the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// `"backend + schedule"` label.
    pub cell: String,
    /// Baseline updates/s.
    pub baseline: f64,
    /// Current updates/s, `None` if the current run lacks this cell
    /// (counts as a failure: the gate must not silently skip cells).
    pub current: Option<f64>,
    /// `current / baseline` when both exist.
    pub ratio: Option<f64>,
    /// True when this cell trips the gate.
    pub regressed: bool,
}

/// Extracts the `results` rows of a hotpath JSON document.
pub fn parse_hotpath(src: &str) -> Result<Vec<HotpathRow>, String> {
    let doc = json::parse(src)?;
    validate_hotpath_schema(&doc)?;
    let rows = doc.get("results").and_then(Value::as_arr).unwrap();
    Ok(rows
        .iter()
        .map(|r| HotpathRow {
            backend: r
                .get("backend")
                .and_then(Value::as_str)
                .unwrap()
                .to_string(),
            schedule: r
                .get("schedule")
                .and_then(Value::as_str)
                .unwrap()
                .to_string(),
            updates_per_sec: r.get("updates_per_sec").and_then(Value::as_f64).unwrap(),
        })
        .collect())
}

/// Compares a current hotpath run against the committed baseline. A cell
/// regresses when its throughput drops by more than `threshold` (e.g. 0.15
/// = 15%), or when the baseline measured it and the current run did not
/// (a vanished SIMD tier is itself a regression). Returns the per-cell
/// verdicts and whether the gate passes.
pub fn compare(
    baseline: &[HotpathRow],
    current: &[HotpathRow],
    threshold: f64,
) -> (Vec<Verdict>, bool) {
    let verdicts: Vec<Verdict> = baseline
        .iter()
        .map(|b| {
            let cur = current
                .iter()
                .find(|c| c.backend == b.backend && c.schedule == b.schedule)
                .map(|c| c.updates_per_sec);
            let ratio = cur.map(|c| c / b.updates_per_sec);
            let regressed = match ratio {
                Some(r) => r < 1.0 - threshold,
                None => true,
            };
            Verdict {
                cell: format!("{} + {}", b.backend, b.schedule),
                baseline: b.updates_per_sec,
                current: cur,
                ratio,
                regressed,
            }
        })
        .collect();
    let pass = !verdicts.is_empty() && verdicts.iter().all(|v| !v.regressed);
    (verdicts, pass)
}

/// One measured cell of the serving bench: a (mode, batch) pair and its
/// query throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRow {
    pub mode: String,
    pub batch: u64,
    pub queries_per_sec: f64,
}

/// Extracts the `results` rows and the headline speedup of a serving JSON
/// document.
pub fn parse_serving(src: &str) -> Result<(Vec<ServingRow>, f64), String> {
    let doc = json::parse(src)?;
    validate_serving_schema(&doc)?;
    let rows = doc.get("results").and_then(Value::as_arr).unwrap();
    let parsed = rows
        .iter()
        .map(|r| ServingRow {
            mode: r.get("mode").and_then(Value::as_str).unwrap().to_string(),
            batch: r.get("batch").and_then(Value::as_f64).unwrap() as u64,
            queries_per_sec: r.get("queries_per_sec").and_then(Value::as_f64).unwrap(),
        })
        .collect();
    let speedup = doc
        .get("speedup_batch256_vs_naive")
        .and_then(Value::as_f64)
        .unwrap();
    Ok((parsed, speedup))
}

/// Compares a current serving run against the committed baseline with the
/// same rules as the hotpath gate: a (mode, batch) cell regresses when its
/// throughput drops by more than `threshold` or vanishes entirely.
pub fn compare_serving(
    baseline: &[ServingRow],
    current: &[ServingRow],
    threshold: f64,
) -> (Vec<Verdict>, bool) {
    let as_hotpath = |rows: &[ServingRow]| -> Vec<HotpathRow> {
        rows.iter()
            .map(|r| HotpathRow {
                backend: r.mode.clone(),
                schedule: format!("batch-{}", r.batch),
                updates_per_sec: r.queries_per_sec,
            })
            .collect()
    };
    compare(&as_hotpath(baseline), &as_hotpath(current), threshold)
}

fn require<'a>(doc: &'a Value, key: &str, what: &str) -> Result<&'a Value, String> {
    doc.get(key)
        .ok_or_else(|| format!("{what}: missing key \"{key}\""))
}

fn require_num(doc: &Value, key: &str, what: &str) -> Result<f64, String> {
    require(doc, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: \"{key}\" must be a number"))
}

fn require_str<'a>(doc: &'a Value, key: &str, what: &str) -> Result<&'a str, String> {
    require(doc, key, what)?
        .as_str()
        .ok_or_else(|| format!("{what}: \"{key}\" must be a string"))
}

fn require_arr<'a>(doc: &'a Value, key: &str, what: &str) -> Result<&'a [Value], String> {
    require(doc, key, what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: \"{key}\" must be an array"))
}

/// Validates the `BENCH_hotpath*.json` schema (see `results/README.md`).
pub fn validate_hotpath_schema(doc: &Value) -> Result<(), String> {
    let what = "hotpath";
    let bench = require_str(doc, "bench", what)?;
    if bench != "hotpath" {
        return Err(format!(
            "{what}: \"bench\" is \"{bench}\", expected \"hotpath\""
        ));
    }
    for key in ["k", "rows", "cols", "nnz", "threads", "epochs_timed"] {
        require_num(doc, key, what)?;
    }
    require_str(doc, "detected_backend", what)?;
    let grid = require(doc, "tile_grid", what)?;
    for key in ["grid_u", "grid_i", "u_block", "i_block", "build_secs"] {
        require_num(grid, key, "hotpath.tile_grid")?;
    }
    let rows = require_arr(doc, "results", what)?;
    if rows.is_empty() {
        return Err(format!("{what}: \"results\" is empty"));
    }
    for (i, r) in rows.iter().enumerate() {
        let what = format!("hotpath.results[{i}]");
        require_str(r, "backend", &what)?;
        require_str(r, "schedule", &what)?;
        let ups = require_num(r, "updates_per_sec", &what)?;
        let secs = require_num(r, "epoch_secs", &what)?;
        if ups <= 0.0 || secs <= 0.0 {
            return Err(format!("{what}: non-positive measurement"));
        }
    }
    Ok(())
}

/// Validates the `BENCH_serving*.json` schema (see `results/README.md`).
pub fn validate_serving_schema(doc: &Value) -> Result<(), String> {
    let what = "serving";
    let bench = require_str(doc, "bench", what)?;
    if bench != "serving" {
        return Err(format!(
            "{what}: \"bench\" is \"{bench}\", expected \"serving\""
        ));
    }
    for key in ["users", "items", "k", "topk", "queries", "shards", "rounds"] {
        require_num(doc, key, what)?;
    }
    require_str(doc, "backend", what)?;
    let rows = require_arr(doc, "results", what)?;
    if rows.is_empty() {
        return Err(format!("{what}: \"results\" is empty"));
    }
    for (i, r) in rows.iter().enumerate() {
        let what = format!("serving.results[{i}]");
        let mode = require_str(r, "mode", &what)?;
        if mode != "naive" && mode != "sharded" {
            return Err(format!("{what}: unknown mode \"{mode}\""));
        }
        require_num(r, "batch", &what)?;
        let qps = require_num(r, "queries_per_sec", &what)?;
        let p50 = require_num(r, "p50_us", &what)?;
        let p99 = require_num(r, "p99_us", &what)?;
        let p999 = require_num(r, "p999_us", &what)?;
        if qps <= 0.0 || p50 < 0.0 || p99 < p50 || p999 < p99 {
            return Err(format!("{what}: inconsistent measurement"));
        }
    }
    let speedup = require_num(doc, "speedup_batch256_vs_naive", what)?;
    if speedup <= 0.0 {
        return Err(format!("{what}: non-positive speedup"));
    }
    Ok(())
}

/// One measured cell of the quantized serving bench: a (precision, pruned)
/// pair with throughput and quality.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantRow {
    pub precision: String,
    pub pruned: bool,
    pub queries_per_sec: f64,
    pub recall_at_topk: f64,
    pub skip_rate: f64,
}

/// Extracts the `results` rows and the headline speedup of a
/// `BENCH_serving_quant*.json` document.
pub fn parse_serving_quant(src: &str) -> Result<(Vec<QuantRow>, f64), String> {
    let doc = json::parse(src)?;
    validate_serving_quant_schema(&doc)?;
    let rows = doc.get("results").and_then(Value::as_arr).unwrap();
    let parsed = rows
        .iter()
        .map(|r| QuantRow {
            precision: r
                .get("precision")
                .and_then(Value::as_str)
                .unwrap()
                .to_string(),
            pruned: matches!(r.get("pruned"), Some(Value::Bool(true))),
            queries_per_sec: r.get("queries_per_sec").and_then(Value::as_f64).unwrap(),
            recall_at_topk: r.get("recall_at_topk").and_then(Value::as_f64).unwrap(),
            skip_rate: r.get("skip_rate").and_then(Value::as_f64).unwrap(),
        })
        .collect();
    let speedup = doc
        .get("speedup_best_vs_f32_exhaustive")
        .and_then(Value::as_f64)
        .unwrap();
    Ok((parsed, speedup))
}

/// Compares a current quantized-serving run against the committed
/// baseline: a (precision, pruned) cell regresses when its throughput
/// drops by more than `threshold` or vanishes entirely (a missing cell —
/// e.g. a dropped precision tier — is itself a regression, same rule as
/// hotpath), and any cell whose recall falls below `recall_floor` fails
/// regardless of speed.
pub fn compare_serving_quant(
    baseline: &[QuantRow],
    current: &[QuantRow],
    threshold: f64,
    recall_floor: f64,
) -> (Vec<Verdict>, bool) {
    let as_hotpath = |rows: &[QuantRow]| -> Vec<HotpathRow> {
        rows.iter()
            .map(|r| HotpathRow {
                backend: r.precision.clone(),
                schedule: if r.pruned { "pruned" } else { "exhaustive" }.into(),
                updates_per_sec: r.queries_per_sec,
            })
            .collect()
    };
    let (verdicts, mut pass) = compare(&as_hotpath(baseline), &as_hotpath(current), threshold);
    pass &= current.iter().all(|r| r.recall_at_topk >= recall_floor);
    (verdicts, pass)
}

/// Validates the `BENCH_serving_quant*.json` schema (see
/// `results/README.md`). Every row must carry the full latency triple
/// (p50/p99/p999) plus recall and skip rate — a row missing any of them is
/// rejected, so the committed artifact cannot silently drop a tail cell.
pub fn validate_serving_quant_schema(doc: &Value) -> Result<(), String> {
    let what = "serving_quant";
    let bench = require_str(doc, "bench", what)?;
    if bench != "serving_quant" {
        return Err(format!(
            "{what}: \"bench\" is \"{bench}\", expected \"serving_quant\""
        ));
    }
    for key in [
        "users", "items", "k", "topk", "queries", "batch", "shards", "rounds",
    ] {
        require_num(doc, key, what)?;
    }
    require_str(doc, "backend", what)?;
    require_str(doc, "catalogue", what)?;
    require_str(doc, "best_cell", what)?;
    let rows = require_arr(doc, "results", what)?;
    if rows.is_empty() {
        return Err(format!("{what}: \"results\" is empty"));
    }
    let mut has_f32_exhaustive = false;
    for (i, r) in rows.iter().enumerate() {
        let what = format!("serving_quant.results[{i}]");
        let precision = require_str(r, "precision", &what)?;
        if !matches!(precision, "f32" | "fp16" | "int8") {
            return Err(format!("{what}: unknown precision \"{precision}\""));
        }
        let pruned = match require(r, "pruned", &what)? {
            Value::Bool(b) => *b,
            _ => return Err(format!("{what}: \"pruned\" must be a boolean")),
        };
        has_f32_exhaustive |= precision == "f32" && !pruned;
        let qps = require_num(r, "queries_per_sec", &what)?;
        let p50 = require_num(r, "p50_us", &what)?;
        let p99 = require_num(r, "p99_us", &what)?;
        let p999 = require_num(r, "p999_us", &what)?;
        let recall = require_num(r, "recall_at_topk", &what)?;
        let skip = require_num(r, "skip_rate", &what)?;
        if qps <= 0.0 || p50 < 0.0 || p99 < p50 || p999 < p99 {
            return Err(format!("{what}: inconsistent latency measurement"));
        }
        if !(0.0..=1.0).contains(&recall) || !(0.0..=1.0).contains(&skip) {
            return Err(format!("{what}: recall/skip_rate outside [0, 1]"));
        }
    }
    if !has_f32_exhaustive {
        return Err(format!("{what}: no f32 exhaustive reference cell"));
    }
    let speedup = require_num(doc, "speedup_best_vs_f32_exhaustive", what)?;
    if speedup <= 0.0 {
        return Err(format!("{what}: non-positive speedup"));
    }
    Ok(())
}

/// Validates the `BENCH_epoch_breakdown.json` schema (see
/// `results/README.md`).
pub fn validate_epoch_breakdown_schema(doc: &Value) -> Result<(), String> {
    let what = "epoch_breakdown";
    let bench = require_str(doc, "bench", what)?;
    if bench != "epoch_breakdown" {
        return Err(format!(
            "{what}: \"bench\" is \"{bench}\", expected \"epoch_breakdown\""
        ));
    }
    for key in ["k", "nnz", "workers", "epochs"] {
        require_num(doc, key, what)?;
    }
    let workers = require_num(doc, "workers", what)? as usize;
    let modes = require_arr(doc, "modes", what)?;
    if modes.is_empty() {
        return Err(format!("{what}: \"modes\" is empty"));
    }
    for m in modes {
        let mode = require_str(m, "mode", "epoch_breakdown.modes[]")?.to_string();
        let what = format!("epoch_breakdown.{mode}");
        let epochs = require_arr(m, "epochs", &what)?;
        for (i, e) in epochs.iter().enumerate() {
            let what = format!("{what}.epochs[{i}]");
            require_num(e, "epoch", &what)?;
            require_num(e, "wall_secs", &what)?;
            require_num(e, "pull_bytes", &what)?;
            require_num(e, "push_bytes", &what)?;
            let per_worker = require_arr(e, "workers", &what)?;
            if per_worker.len() != workers {
                return Err(format!(
                    "{what}: {} worker entries, header says {workers}",
                    per_worker.len()
                ));
            }
            for w in per_worker {
                for key in ["pull_secs", "comp_secs", "push_secs", "sync_secs"] {
                    require_num(w, key, &what)?;
                }
            }
        }
        let v = require(m, "model_validation", &what)?;
        if !matches!(v, Value::Null) {
            for key in ["mean_error", "worst_error", "epochs_scored"] {
                require_num(v, key, &format!("{what}.model_validation"))?;
            }
        }
    }
    let ovh = require(doc, "telemetry_overhead", what)?;
    for key in ["disabled_secs", "enabled_secs", "overhead_frac"] {
        require_num(ovh, key, "epoch_breakdown.telemetry_overhead")?;
    }
    Ok(())
}

/// One measured cell of the cluster-scaling bench: a dataset simulated at a
/// node count, with one server shard per node.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRow {
    pub dataset: String,
    pub nodes: u64,
    pub updates_per_sec: f64,
}

/// Extracts the per-(dataset, nodes) rows and the headline worst-case
/// 4-node scaling of a `BENCH_cluster.json` document.
pub fn parse_cluster(src: &str) -> Result<(Vec<ClusterRow>, f64), String> {
    let doc = json::parse(src)?;
    validate_cluster_schema(&doc)?;
    let mut parsed = Vec::new();
    for d in doc.get("datasets").and_then(Value::as_arr).unwrap() {
        let dataset = d.get("name").and_then(Value::as_str).unwrap().to_string();
        for r in d.get("results").and_then(Value::as_arr).unwrap() {
            parsed.push(ClusterRow {
                dataset: dataset.clone(),
                nodes: r.get("nodes").and_then(Value::as_f64).unwrap() as u64,
                updates_per_sec: r.get("updates_per_sec").and_then(Value::as_f64).unwrap(),
            });
        }
    }
    let scaling_min = doc
        .get("scaling_4node_min")
        .and_then(Value::as_f64)
        .unwrap();
    Ok((parsed, scaling_min))
}

/// Compares a current cluster-scaling run against the committed baseline
/// with the same rules as the hotpath gate: a (dataset, nodes) cell
/// regresses when its throughput drops by more than `threshold` or
/// vanishes entirely.
pub fn compare_cluster(
    baseline: &[ClusterRow],
    current: &[ClusterRow],
    threshold: f64,
) -> (Vec<Verdict>, bool) {
    let as_hotpath = |rows: &[ClusterRow]| -> Vec<HotpathRow> {
        rows.iter()
            .map(|r| HotpathRow {
                backend: r.dataset.clone(),
                schedule: format!("nodes-{}", r.nodes),
                updates_per_sec: r.updates_per_sec,
            })
            .collect()
    };
    compare(&as_hotpath(baseline), &as_hotpath(current), threshold)
}

/// Validates the `BENCH_cluster.json` schema (see `results/README.md`).
/// Beyond shape, this encodes the artifact's two load-bearing claims: every
/// dataset carries a 1-node reference and a 4-node cell (so the scaling
/// ratio is well-defined), and the delta section ships strictly fewer bytes
/// than full-buffer pushing would.
pub fn validate_cluster_schema(doc: &Value) -> Result<(), String> {
    let what = "cluster";
    let bench = require_str(doc, "bench", what)?;
    if bench != "cluster_scaling" {
        return Err(format!(
            "{what}: \"bench\" is \"{bench}\", expected \"cluster_scaling\""
        ));
    }
    require_num(doc, "epochs", what)?;
    let counts = require_arr(doc, "node_counts", what)?;
    if counts.is_empty() {
        return Err(format!("{what}: \"node_counts\" is empty"));
    }
    let datasets = require_arr(doc, "datasets", what)?;
    if datasets.is_empty() {
        return Err(format!("{what}: \"datasets\" is empty"));
    }
    for d in datasets {
        let name = require_str(d, "name", "cluster.datasets[]")?.to_string();
        let what = format!("cluster.{name}");
        let scaling = require_num(d, "scaling_4node", &what)?;
        if scaling <= 0.0 {
            return Err(format!("{what}: non-positive scaling_4node"));
        }
        let rows = require_arr(d, "results", &what)?;
        if rows.is_empty() {
            return Err(format!("{what}: \"results\" is empty"));
        }
        let mut node_counts_seen = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            let what = format!("{what}.results[{i}]");
            let nodes = require_num(r, "nodes", &what)?;
            let shards = require_num(r, "server_shards", &what)?;
            require_num(r, "workers", &what)?;
            require_str(r, "strategy", &what)?;
            let ups = require_num(r, "updates_per_sec", &what)?;
            let ideal = require_num(r, "ideal_updates_per_sec", &what)?;
            if ups <= 0.0 || ideal < ups {
                return Err(format!("{what}: updates/s outside (0, ideal]"));
            }
            if shards < 1.0 {
                return Err(format!("{what}: server_shards below 1"));
            }
            node_counts_seen.push(nodes as u64);
        }
        for need in [1, 4] {
            if !node_counts_seen.contains(&need) {
                return Err(format!("{what}: no {need}-node cell"));
            }
        }
    }
    let scaling_min = require_num(doc, "scaling_4node_min", what)?;
    if scaling_min <= 0.0 {
        return Err(format!("{what}: non-positive scaling_4node_min"));
    }
    let delta = require(doc, "delta", what)?;
    let what = "cluster.delta";
    for key in ["workers", "region_rows", "k", "epochs"] {
        require_num(delta, key, what)?;
    }
    let rows_shipped = require_num(delta, "rows_shipped", what)?;
    let rows_total = require_num(delta, "rows_total", what)?;
    let bytes_shipped = require_num(delta, "bytes_shipped", what)?;
    let bytes_full = require_num(delta, "bytes_full", what)?;
    let ratio = require_num(delta, "shipped_ratio", what)?;
    if rows_shipped > rows_total {
        return Err(format!("{what}: rows_shipped exceeds rows_total"));
    }
    if bytes_shipped >= bytes_full {
        return Err(format!(
            "{what}: delta shipping must beat full shipping \
             ({bytes_shipped} >= {bytes_full} bytes)"
        ));
    }
    if !(0.0..1.0).contains(&ratio) {
        return Err(format!("{what}: shipped_ratio outside [0, 1)"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(backend: &str, schedule: &str, ups: f64) -> HotpathRow {
        HotpathRow {
            backend: backend.into(),
            schedule: schedule.into(),
            updates_per_sec: ups,
        }
    }

    #[test]
    fn gate_passes_within_threshold() {
        let base = vec![row("scalar", "stripe", 100.0), row("avx2", "tiled", 400.0)];
        let cur = vec![row("scalar", "stripe", 90.0), row("avx2", "tiled", 420.0)];
        let (verdicts, pass) = compare(&base, &cur, 0.15);
        assert!(pass, "{verdicts:?}");
        assert_eq!(verdicts.len(), 2);
        assert!((verdicts[0].ratio.unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gate_fails_on_regression_or_missing_cell() {
        let base = vec![row("scalar", "stripe", 100.0), row("avx2", "tiled", 400.0)];
        let slow = vec![row("scalar", "stripe", 80.0), row("avx2", "tiled", 400.0)];
        assert!(!compare(&base, &slow, 0.15).1);
        let missing = vec![row("scalar", "stripe", 100.0)];
        let (verdicts, pass) = compare(&base, &missing, 0.15);
        assert!(!pass);
        assert!(verdicts[1].regressed && verdicts[1].current.is_none());
        // Extra cells in the current run are fine (e.g. a newer SIMD tier).
        let extra = vec![
            row("scalar", "stripe", 100.0),
            row("avx2", "tiled", 400.0),
            row("avx512", "tiled", 800.0),
        ];
        assert!(compare(&base, &extra, 0.15).1);
        // An empty baseline cannot pass: the gate would be vacuous.
        assert!(!compare(&[], &extra, 0.15).1);
    }

    fn committed(name: &str) -> Option<String> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results")
            .join(name);
        std::fs::read_to_string(path).ok()
    }

    #[test]
    fn committed_hotpath_artifacts_match_schema() {
        for name in ["BENCH_hotpath.json", "BENCH_hotpath_quick.json"] {
            let src = committed(name).unwrap_or_else(|| panic!("{name} missing from results/"));
            let rows = parse_hotpath(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                rows.iter()
                    .any(|r| r.backend == "scalar" && r.schedule == "stripe"),
                "{name}: no scalar+stripe baseline cell"
            );
        }
    }

    #[test]
    fn committed_serving_artifacts_match_schema_and_speedup_floor() {
        for name in ["BENCH_serving.json", "BENCH_serving_quick.json"] {
            let src = committed(name).unwrap_or_else(|| panic!("{name} missing from results/"));
            let (rows, speedup) = parse_serving(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                rows.iter().any(|r| r.mode == "naive" && r.batch == 1),
                "{name}: no naive single-query baseline cell"
            );
            assert!(
                rows.iter().any(|r| r.mode == "sharded" && r.batch == 256),
                "{name}: no sharded batch-256 cell"
            );
            // The committed full-size artifact must meet the design floor:
            // sharded batch-256 at least 3x the naive single-query path.
            if name == "BENCH_serving.json" {
                assert!(speedup >= 3.0, "{name}: speedup {speedup} below 3.0 floor");
            }
        }
    }

    #[test]
    fn serving_gate_compares_mode_batch_cells() {
        let srow = |mode: &str, batch: u64, qps: f64| ServingRow {
            mode: mode.into(),
            batch,
            queries_per_sec: qps,
        };
        let base = vec![srow("naive", 1, 50.0), srow("sharded", 256, 400.0)];
        let ok = vec![srow("naive", 1, 48.0), srow("sharded", 256, 390.0)];
        assert!(compare_serving(&base, &ok, 0.15).1);
        let slow = vec![srow("naive", 1, 50.0), srow("sharded", 256, 200.0)];
        let (verdicts, pass) = compare_serving(&base, &slow, 0.15);
        assert!(!pass);
        assert_eq!(verdicts[1].cell, "sharded + batch-256");
        // A vanished cell fails, same rule as hotpath.
        assert!(!compare_serving(&base, &base[..1], 0.15).1);
    }

    #[test]
    fn committed_quant_artifacts_meet_speedup_and_recall_floors() {
        for name in ["BENCH_serving_quant.json", "BENCH_serving_quant_quick.json"] {
            let src = committed(name).unwrap_or_else(|| panic!("{name} missing from results/"));
            let (rows, speedup) =
                parse_serving_quant(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(rows.len(), 6, "{name}: 3 precisions x pruned/exhaustive");
            for r in &rows {
                assert!(
                    r.recall_at_topk >= 0.99,
                    "{name}: {}+{} recall {} below 0.99",
                    r.precision,
                    if r.pruned { "pruned" } else { "exhaustive" },
                    r.recall_at_topk
                );
            }
            // The design floor from the serving rework: the best quantized/
            // pruned cell must beat the f32 exhaustive scan by >= 10x on the
            // committed full-size artifact.
            if name == "BENCH_serving_quant.json" {
                assert!(
                    speedup >= 10.0,
                    "{name}: speedup {speedup} below 10.0 floor"
                );
                let pruned = rows.iter().find(|r| r.pruned).unwrap();
                assert!(pruned.skip_rate > 0.0, "{name}: pruning never skipped");
            }
        }
    }

    #[test]
    fn quant_gate_compares_precision_cells_and_recall() {
        let qrow = |precision: &str, pruned: bool, qps: f64, recall: f64| QuantRow {
            precision: precision.into(),
            pruned,
            queries_per_sec: qps,
            recall_at_topk: recall,
            skip_rate: 0.5,
        };
        let base = vec![
            qrow("f32", false, 100.0, 1.0),
            qrow("int8", true, 1500.0, 0.995),
        ];
        let ok = vec![
            qrow("f32", false, 95.0, 1.0),
            qrow("int8", true, 1400.0, 0.996),
        ];
        assert!(compare_serving_quant(&base, &ok, 0.15, 0.99).1);
        // A slow cell fails.
        let slow = vec![
            qrow("f32", false, 100.0, 1.0),
            qrow("int8", true, 700.0, 0.995),
        ];
        let (verdicts, pass) = compare_serving_quant(&base, &slow, 0.15, 0.99);
        assert!(!pass);
        assert_eq!(verdicts[1].cell, "int8 + pruned");
        // A vanished cell fails even if everything present is fast.
        assert!(!compare_serving_quant(&base, &ok[..1], 0.15, 0.99).1);
        // A recall collapse fails even at full speed.
        let bad_recall = vec![
            qrow("f32", false, 100.0, 1.0),
            qrow("int8", true, 1500.0, 0.9),
        ];
        assert!(!compare_serving_quant(&base, &bad_recall, 0.15, 0.99).1);
    }

    #[test]
    fn quant_schema_rejects_malformed_documents() {
        let doc = json::parse(r#"{"bench": "serving_quant", "users": 10}"#).unwrap();
        assert!(validate_serving_quant_schema(&doc).is_err());
        // A row without p999 is rejected — the tail cell is not optional.
        let no_p999 = r#"{"bench": "serving_quant", "users": 1, "items": 1, "k": 1,
            "topk": 1, "queries": 1, "batch": 1, "shards": 1, "rounds": 1,
            "backend": "scalar", "catalogue": "zipf-norm(0.8)", "best_cell": "f32+exhaustive",
            "results": [{"precision": "f32", "pruned": false, "queries_per_sec": 10.0,
                         "p50_us": 1.0, "p99_us": 2.0,
                         "recall_at_topk": 1.0, "skip_rate": 0.0}],
            "speedup_best_vs_f32_exhaustive": 1.0}"#;
        let err = validate_serving_quant_schema(&json::parse(no_p999).unwrap()).unwrap_err();
        assert!(err.contains("p999_us"), "{err}");
        // Without the f32 exhaustive reference cell the speedup is
        // meaningless.
        let no_ref = no_p999
            .replace("\"p99_us\": 2.0,", "\"p99_us\": 2.0, \"p999_us\": 2.0,")
            .replace("\"pruned\": false", "\"pruned\": true");
        let err = validate_serving_quant_schema(&json::parse(&no_ref).unwrap()).unwrap_err();
        assert!(err.contains("f32 exhaustive"), "{err}");
    }

    #[test]
    fn serving_schema_rejects_malformed_documents() {
        let doc = json::parse(r#"{"bench": "serving", "users": 10}"#).unwrap();
        assert!(validate_serving_schema(&doc).is_err());
        // p99 below p50 is inconsistent.
        let bad = r#"{"bench": "serving", "users": 1, "items": 1, "k": 1, "topk": 1,
            "queries": 1, "shards": 1, "rounds": 1, "backend": "scalar",
            "results": [{"mode": "naive", "batch": 1, "queries_per_sec": 10.0,
                         "p50_us": 9.0, "p99_us": 2.0}],
            "speedup_batch256_vs_naive": 1.0}"#;
        assert!(validate_serving_schema(&json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn committed_epoch_breakdown_matches_schema() {
        let src = committed("BENCH_epoch_breakdown.json")
            .expect("BENCH_epoch_breakdown.json missing from results/");
        let doc = json::parse(&src).unwrap();
        validate_epoch_breakdown_schema(&doc).unwrap();
    }

    #[test]
    fn schema_rejects_malformed_documents() {
        let doc = json::parse(r#"{"bench": "hotpath", "k": 8}"#).unwrap();
        assert!(validate_hotpath_schema(&doc).is_err());
        let doc = json::parse(r#"{"bench": "wrong"}"#).unwrap();
        assert!(validate_hotpath_schema(&doc).is_err());
        assert!(validate_epoch_breakdown_schema(&doc).is_err());
    }

    #[test]
    fn committed_cluster_artifact_meets_scaling_and_delta_floors() {
        let src =
            committed("BENCH_cluster.json").expect("BENCH_cluster.json missing from results/");
        let (rows, scaling_min) = parse_cluster(&src).unwrap_or_else(|e| panic!("{e}"));
        // The schema already enforced bytes_shipped < bytes_full; the
        // committed artifact must additionally meet the design floor:
        // every dataset scales at least 3.2x from 1 to 4 nodes.
        assert!(
            scaling_min >= 3.2,
            "4-node scaling {scaling_min} below the 3.2x floor"
        );
        for dataset in ["Yahoo! Music R2", "Netflix"] {
            for nodes in [1, 2, 4] {
                assert!(
                    rows.iter()
                        .any(|r| r.dataset == dataset && r.nodes == nodes),
                    "no ({dataset}, {nodes}-node) cell"
                );
            }
        }
    }

    #[test]
    fn cluster_gate_compares_dataset_node_cells() {
        let crow = |dataset: &str, nodes: u64, ups: f64| ClusterRow {
            dataset: dataset.into(),
            nodes,
            updates_per_sec: ups,
        };
        let base = vec![crow("Netflix", 1, 2500.0), crow("Netflix", 4, 9000.0)];
        let ok = vec![crow("Netflix", 1, 2450.0), crow("Netflix", 4, 8800.0)];
        assert!(compare_cluster(&base, &ok, 0.15).1);
        let slow = vec![crow("Netflix", 1, 2500.0), crow("Netflix", 4, 5000.0)];
        let (verdicts, pass) = compare_cluster(&base, &slow, 0.15);
        assert!(!pass);
        assert_eq!(verdicts[1].cell, "Netflix + nodes-4");
        // A vanished node count fails, same rule as hotpath.
        assert!(!compare_cluster(&base, &base[..1], 0.15).1);
    }

    #[test]
    fn cluster_schema_rejects_malformed_documents() {
        let reject = |src: &str, why: &str| {
            let doc = json::parse(src).unwrap();
            assert!(validate_cluster_schema(&doc).is_err(), "accepted: {why}");
        };
        reject(r#"{"bench": "wrong"}"#, "wrong bench tag");
        reject(
            r#"{"bench": "cluster_scaling", "epochs": 20, "node_counts": [1],
                "datasets": [], "scaling_4node_min": 3.5,
                "delta": {"workers": 4, "region_rows": 10, "k": 8, "epochs": 1,
                          "rows_shipped": 1, "rows_total": 10,
                          "bytes_shipped": 10, "bytes_full": 100,
                          "shipped_ratio": 0.1}}"#,
            "empty datasets",
        );
        // A delta section whose shipped bytes do not beat full shipping is
        // rejected outright — the artifact's whole point.
        reject(
            r#"{"bench": "cluster_scaling", "epochs": 20, "node_counts": [1, 4],
                "datasets": [{"name": "Netflix", "scaling_4node": 3.5, "results": [
                    {"nodes": 1, "workers": 4, "server_shards": 1, "strategy": "Dp1",
                     "updates_per_sec": 100, "ideal_updates_per_sec": 120},
                    {"nodes": 4, "workers": 16, "server_shards": 4, "strategy": "Dp2",
                     "updates_per_sec": 350, "ideal_updates_per_sec": 480}]}],
                "scaling_4node_min": 3.5,
                "delta": {"workers": 4, "region_rows": 10, "k": 8, "epochs": 1,
                          "rows_shipped": 10, "rows_total": 10,
                          "bytes_shipped": 100, "bytes_full": 100,
                          "shipped_ratio": 1.0}}"#,
            "delta not below full shipping",
        );
        // Missing the 4-node cell: scaling would be undefined.
        reject(
            r#"{"bench": "cluster_scaling", "epochs": 20, "node_counts": [1],
                "datasets": [{"name": "Netflix", "scaling_4node": 3.5, "results": [
                    {"nodes": 1, "workers": 4, "server_shards": 1, "strategy": "Dp1",
                     "updates_per_sec": 100, "ideal_updates_per_sec": 120}]}],
                "scaling_4node_min": 3.5,
                "delta": {"workers": 4, "region_rows": 10, "k": 8, "epochs": 1,
                          "rows_shipped": 1, "rows_total": 10,
                          "bytes_shipped": 10, "bytes_full": 100,
                          "shipped_ratio": 0.1}}"#,
            "missing 4-node cell",
        );
    }
}
