//! Cost of partition planning and of one simulated epoch: the planner must
//! be cheap relative to a training epoch ("almost no computational time
//! overhead", §1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcc_bench::plan;
use hcc_hetsim::{simulate_epoch, Platform, SimConfig, Workload};
use hcc_partition::{dp0, dp2, equalize};
use hcc_sparse::{Axis, DatasetProfile, GenConfig, GridPartition, SyntheticDataset};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_math");
    for workers in [4usize, 16, 64] {
        let a: Vec<f64> = (0..workers).map(|j| 1.0 + j as f64 * 0.3).collect();
        let b = vec![0.05; workers];
        group.bench_with_input(
            BenchmarkId::new("equalize", workers),
            &workers,
            |bench, _| bench.iter(|| equalize(black_box(&a), black_box(&b))),
        );
        group.bench_with_input(BenchmarkId::new("dp0", workers), &workers, |bench, _| {
            bench.iter(|| dp0(black_box(&a)))
        });
        let x = dp0(&a);
        group.bench_with_input(BenchmarkId::new("dp2", workers), &workers, |bench, _| {
            bench.iter(|| dp2(black_box(&x), black_box(&a), 0.01))
        });
    }
    group.finish();
}

fn bench_planner_and_sim(c: &mut Criterion) {
    let platform = Platform::paper_testbed_4workers();
    let wl = Workload::from_profile(&DatasetProfile::netflix());
    let cfg = SimConfig::default();
    let mut group = c.benchmark_group("planning");
    group.bench_function("full_plan_netflix", |b| {
        b.iter(|| plan(black_box(&platform), black_box(&wl), black_box(&cfg)))
    });
    let p = plan(&platform, &wl, &cfg);
    group.bench_function("simulate_epoch_netflix", |b| {
        b.iter(|| simulate_epoch(black_box(&platform), &wl, &cfg, &p.fractions))
    });
    group.finish();
}

fn bench_grid_build(c: &mut Criterion) {
    let ds = SyntheticDataset::generate(GenConfig {
        rows: 50_000,
        cols: 5_000,
        nnz: 1_000_000,
        ..GenConfig::default()
    });
    let mut group = c.benchmark_group("grid_build");
    group.sample_size(10);
    for workers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| GridPartition::build_uniform(black_box(&ds.matrix), Axis::Row, w))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_solvers, bench_planner_and_sim, bench_grid_build
}
criterion_main!(benches);
