//! COMM vs COMM-P transfer cost (the mechanism behind Table 5's ~6–7×
//! shared-memory advantage) at feature-matrix payload sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcc_comm::{CommP, CommShared, Precision, Transport};
use std::hint::black_box;

fn roundtrip(transport: &dyn Transport, payload: &[f32], local: &mut [f32]) {
    transport.publish(black_box(payload));
    transport.pull(0, local);
    transport.push(0, local);
    transport.collect(0, local);
}

fn bench_transports(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_roundtrip");
    group.sample_size(20);
    for elems in [1usize << 14, 1 << 18, 1 << 22] {
        let payload: Vec<f32> = (0..elems).map(|j| (j % 997) as f32 * 0.01).collect();
        let mut local = vec![0f32; elems];
        group.throughput(Throughput::Bytes(elems as u64 * 4 * 4));

        let shared = CommShared::new(1, elems, elems, Precision::Fp32);
        group.bench_with_input(BenchmarkId::new("comm_fp32", elems), &elems, |b, _| {
            b.iter(|| roundtrip(&shared, &payload, &mut local))
        });

        let shared16 = CommShared::new(1, elems, elems, Precision::Fp16);
        group.bench_with_input(BenchmarkId::new("comm_fp16", elems), &elems, |b, _| {
            b.iter(|| roundtrip(&shared16, &payload, &mut local))
        });

        let commp = CommP::new(1, Precision::Fp32);
        group.bench_with_input(BenchmarkId::new("comm_p_fp32", elems), &elems, |b, _| {
            b.iter(|| roundtrip(&commp, &payload, &mut local))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transports);
criterion_main!(benches);
