//! Hogwild thread-scaling and solver comparison on a fixed dataset: the
//! real-engine analog of the paper's per-processor "computing power".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcc_baselines::{CumfSgdSim, Dsgd, Fpsgd, Nomad, SerialSgd, TrainConfig};
use hcc_sgd::{hogwild_epoch, FactorMatrix, HogwildConfig, SharedFactors};
use hcc_sparse::{GenConfig, SyntheticDataset};

fn dataset() -> SyntheticDataset {
    SyntheticDataset::generate(GenConfig {
        rows: 2_000,
        cols: 1_000,
        nnz: 100_000,
        ..GenConfig::default()
    })
}

fn bench_hogwild_threads(c: &mut Criterion) {
    let ds = dataset();
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("hogwild_epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.matrix.nnz() as u64));
    for threads in [1usize, 2, 4].into_iter().filter(|&t| t <= max.max(1) * 2) {
        let p = SharedFactors::from_matrix(&FactorMatrix::random(2_000, 32, 1));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(1_000, 32, 2));
        let cfg = HogwildConfig {
            threads,
            learning_rate: 0.005,
            lambda_p: 0.01,
            lambda_q: 0.01,
            schedule: Default::default(),
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| hogwild_epoch(ds.matrix.entries(), &p, &q, &cfg))
        });
    }
    group.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let ds = dataset();
    let cfg = TrainConfig {
        k: 32,
        epochs: 1,
        threads: 2,
        ..Default::default()
    };
    let mut group = c.benchmark_group("solver_epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.matrix.nnz() as u64));
    group.bench_function("serial", |b| b.iter(|| SerialSgd.train(&ds.matrix, &cfg)));
    group.bench_function("fpsgd", |b| {
        b.iter(|| Fpsgd::default().train(&ds.matrix, &cfg))
    });
    group.bench_function("cumf_sim", |b| {
        b.iter(|| CumfSgdSim::default().train(&ds.matrix, &cfg))
    });
    group.bench_function("cumf_sim_unsorted", |b| {
        let solver = CumfSgdSim {
            sort_by_row: false,
            ..Default::default()
        };
        b.iter(|| solver.train(&ds.matrix, &cfg))
    });
    group.bench_function("dsgd", |b| {
        b.iter(|| Dsgd::default().train(&ds.matrix, &cfg))
    });
    group.bench_function("nomad", |b| b.iter(|| Nomad.train(&ds.matrix, &cfg)));
    group.finish();
}

fn bench_optimizers(c: &mut Criterion) {
    use hcc_sgd::adagrad::{adagrad_hogwild_epoch, AdaGradConfig, AdaGradState};
    use hcc_sgd::momentum::{momentum_hogwild_epoch, MomentumConfig, MomentumState};
    let ds = dataset();
    let mut group = c.benchmark_group("optimizer_epoch");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.matrix.nnz() as u64));

    let p = SharedFactors::from_matrix(&FactorMatrix::random(2_000, 32, 1));
    let q = SharedFactors::from_matrix(&FactorMatrix::random(1_000, 32, 2));
    let sgd_cfg = HogwildConfig {
        threads: 2,
        learning_rate: 0.005,
        lambda_p: 0.01,
        lambda_q: 0.01,
        schedule: Default::default(),
    };
    group.bench_function("sgd", |b| {
        b.iter(|| hogwild_epoch(ds.matrix.entries(), &p, &q, &sgd_cfg))
    });

    let ada_state = AdaGradState::new(2_000, 1_000, 32);
    let ada_cfg = AdaGradConfig {
        threads: 2,
        ..Default::default()
    };
    group.bench_function("adagrad", |b| {
        b.iter(|| adagrad_hogwild_epoch(ds.matrix.entries(), &p, &q, &ada_state, &ada_cfg))
    });

    let mom_state = MomentumState::new(2_000, 1_000, 32);
    let mom_cfg = MomentumConfig {
        threads: 2,
        ..Default::default()
    };
    group.bench_function("momentum", |b| {
        b.iter(|| momentum_hogwild_epoch(ds.matrix.entries(), &p, &q, &mom_state, &mom_cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hogwild_threads,
    bench_solvers,
    bench_optimizers
);
criterion_main!(benches);
