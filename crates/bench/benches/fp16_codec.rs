//! FP16 codec throughput: the compression cost of "Transmitting FP16 Data"
//! (the paper accelerates it with AVX + multithreading; we compare the
//! scalar and rayon-parallel paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcc_sgd::fp16;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp16");
    for elems in [1usize << 12, 1 << 16, 1 << 20] {
        let src: Vec<f32> = (0..elems).map(|j| (j % 977) as f32 * 0.013 - 2.0).collect();
        let encoded = fp16::encode_vec(&src);
        let mut dst16 = vec![0u16; elems];
        let mut dst32 = vec![0f32; elems];
        group.throughput(Throughput::Bytes(elems as u64 * 4));

        group.bench_with_input(BenchmarkId::new("encode_scalar", elems), &elems, |b, _| {
            b.iter(|| fp16::encode_slice(black_box(&src), &mut dst16))
        });
        group.bench_with_input(
            BenchmarkId::new("encode_parallel", elems),
            &elems,
            |b, _| b.iter(|| fp16::encode_parallel(black_box(&src), &mut dst16)),
        );
        group.bench_with_input(BenchmarkId::new("decode_scalar", elems), &elems, |b, _| {
            b.iter(|| fp16::decode_slice(black_box(&encoded), &mut dst32))
        });
        group.bench_with_input(
            BenchmarkId::new("decode_parallel", elems),
            &elems,
            |b, _| b.iter(|| fp16::decode_parallel(black_box(&encoded), &mut dst32)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codec
}
criterion_main!(benches);
