//! Microbenchmarks of the SGD update kernel: dot product, plain update,
//! shared-atomic update — per-update cost across latent dimensions
//! (the `(16k+4)/B` term of the time-cost model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcc_sgd::kernel::{dot, dot_unrolled, sgd_step, sgd_step_shared};
use hcc_sgd::{FactorMatrix, SharedFactors};
use std::hint::black_box;

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    for k in [16usize, 32, 64, 128] {
        let a: Vec<f32> = (0..k).map(|j| j as f32 * 0.01).collect();
        let b: Vec<f32> = (0..k).map(|j| j as f32 * 0.02).collect();
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("plain", k), &k, |bench, _| {
            bench.iter(|| dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("unrolled", k), &k, |bench, _| {
            bench.iter(|| dot_unrolled(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_sgd_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd_step");
    for k in [16usize, 32, 64, 128] {
        let mut p: Vec<f32> = (0..k).map(|j| 0.1 + j as f32 * 0.001).collect();
        let mut q: Vec<f32> = (0..k).map(|j| 0.2 + j as f32 * 0.001).collect();
        group.throughput(Throughput::Elements(k as u64));
        group.bench_with_input(BenchmarkId::new("plain", k), &k, |bench, _| {
            bench.iter(|| sgd_step(black_box(&mut p), black_box(&mut q), 3.5, 0.005, 0.01, 0.01))
        });

        let ps = SharedFactors::from_matrix(&FactorMatrix::random(64, k, 1));
        let qs = SharedFactors::from_matrix(&FactorMatrix::random(64, k, 2));
        group.bench_with_input(BenchmarkId::new("shared", k), &k, |bench, _| {
            bench.iter(|| {
                sgd_step_shared(black_box(&ps), black_box(&qs), 7, 9, 3.5, 0.005, 0.01, 0.01)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_dot, bench_sgd_step
}
criterion_main!(benches);
