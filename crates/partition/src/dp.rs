//! The three data-partition strategies.
//!
//! * **DP0** (Eq. 6): split proportionally to measured standalone speed —
//!   `x_i = (1/T_i_e) / Σ_j (1/T_j_e)` where `T_i_e` is worker `i`'s
//!   independent full-data execution time.
//! * **DP1** (Algorithm 1): iterative compensation. DP0 leaves a small
//!   CPU-vs-GPU imbalance (GPU memory bandwidth shifts with input size and
//!   the model drops the `P_i` terms), so DP1 re-measures and shifts data
//!   between the CPU group and the GPU group until the group means agree
//!   within 10 %.
//! * **DP2** (Eq. 7): starting from DP1, *deliberately unbalance* the
//!   workers in steps of `T_sync` so worker `i`'s server-side merge hides
//!   under worker `i+1`'s still-running computation.

use serde::{Deserialize, Serialize};

/// Whether a worker sits in the CPU group or the GPU group (Algorithm 1
/// moves data between the two groups as wholes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerClass {
    /// A CPU worker.
    Cpu,
    /// A GPU worker.
    Gpu,
}

/// DP0: proportional split from standalone execution times (Eq. 6).
///
/// # Panics
/// Panics if `standalone_times` is empty or contains non-positive values.
pub fn dp0(standalone_times: &[f64]) -> Vec<f64> {
    assert!(!standalone_times.is_empty(), "need at least one worker");
    assert!(
        standalone_times.iter().all(|&t| t > 0.0 && t.is_finite()),
        "standalone times must be positive and finite"
    );
    let inv_sum: f64 = standalone_times.iter().map(|&t| 1.0 / t).sum();
    standalone_times
        .iter()
        .map(|&t| (1.0 / t) / inv_sum)
        .collect()
}

/// Options for the DP1 compensation loop.
#[derive(Debug, Clone, Copy)]
pub struct Dp1Options {
    /// Relative CPU/GPU group-mean gap below which the loop stops
    /// (Algorithm 1 uses 0.1).
    pub tolerance: f64,
    /// Safety bound on iterations ("usually only once" in practice).
    pub max_iterations: usize,
}

impl Default for Dp1Options {
    fn default() -> Self {
        Dp1Options {
            tolerance: 0.1,
            max_iterations: 16,
        }
    }
}

/// DP1: Algorithm 1's compensation loop.
///
/// `initial` is the DP0 partition; `classes[i]` says which group worker `i`
/// belongs to; `measure` runs (or simulates) one epoch with a candidate
/// partition and returns per-worker *compute* times — the paper's
/// `sgd_update` step on line 12.
///
/// If either group is empty the loop is skipped (nothing to balance between
/// groups) and the initial partition is returned unchanged.
///
/// Returns the refined partition (renormalized to sum to 1; Algorithm 1's
/// scaling steps conserve the total only approximately).
pub fn dp1(
    initial: &[f64],
    classes: &[WorkerClass],
    options: Dp1Options,
    mut measure: impl FnMut(&[f64]) -> Vec<f64>,
) -> Vec<f64> {
    assert_eq!(initial.len(), classes.len(), "length mismatch");
    let c = classes.iter().filter(|&&w| w == WorkerClass::Cpu).count();
    let g = classes.len() - c;
    if c == 0 || g == 0 {
        return initial.to_vec();
    }

    let mut x = initial.to_vec();
    let mut t = measure(&x);
    assert_eq!(t.len(), x.len(), "measure returned wrong length");

    for _ in 0..options.max_iterations {
        match dp1_step(&x, &t, classes, options.tolerance) {
            None => break,
            Some(next) => {
                x = next;
                t = measure(&x); // line 12: re-run sgd_update with the new x
            }
        }
    }
    x
}

/// One iteration of Algorithm 1's loop body (lines 3–11): given the current
/// partition `x` and its measured compute times `t`, returns the adjusted
/// partition, or `None` when the CPU/GPU group means already agree within
/// `tolerance` (the loop's exit test on line 2).
///
/// Exposed separately so the real engine can interleave one adjustment per
/// *training* epoch — the measurement on line 12 is then simply the next
/// epoch itself.
pub fn dp1_step(x: &[f64], t: &[f64], classes: &[WorkerClass], tolerance: f64) -> Option<Vec<f64>> {
    assert_eq!(x.len(), classes.len(), "length mismatch");
    assert_eq!(t.len(), classes.len(), "length mismatch");
    let c = classes.iter().filter(|&&w| w == WorkerClass::Cpu).count();
    let g = classes.len() - c;
    if c == 0 || g == 0 {
        return None;
    }
    let (avg_cpu, avg_gpu) = group_means(t, classes);
    let gap = (avg_cpu - avg_gpu).abs() / avg_cpu.min(avg_gpu).max(f64::MIN_POSITIVE);
    if gap <= tolerance {
        return None;
    }
    // l = +1 when CPUs are slower (shed CPU data toward GPUs).
    let l = if avg_cpu > avg_gpu { 1.0 } else { -1.0 };
    let delta_t = l * (avg_cpu - avg_gpu) / (c + g) as f64; // ≥ 0
    let mut next = x.to_vec();
    for i in 0..next.len() {
        if t[i] <= 0.0 {
            continue; // idle worker: nothing measurable to scale
        }
        match classes[i] {
            WorkerClass::Cpu => {
                // x_i ← x_i·(t_i − l·g·ΔT)/t_i  (lines 5–7)
                next[i] = (next[i] * (t[i] - l * g as f64 * delta_t) / t[i]).max(0.0);
            }
            WorkerClass::Gpu => {
                // x_j ← x_j·(t_j + l·c·ΔT)/t_j  (lines 8–10)
                next[i] = (next[i] * (t[i] + l * c as f64 * delta_t) / t[i]).max(0.0);
            }
        }
    }
    normalize(&mut next);
    Some(next)
}

/// DP2: hidden-synchronization staggering (Eq. 7).
///
/// Starting from a balanced partition `x` whose measured compute times are
/// `t` (≈ equal; their median is the anchor), target compute times are set
/// to `T_med + offset_i·T_sync` with offsets `…,−1, 0, +1,…` centred on the
/// median, so the server's merge of worker `i` overlaps worker `i+1`'s tail
/// of computation. Each `x_i` is then rescaled by `target_i / t_i` (the same
/// move as Algorithm 1's line 6).
///
/// Workers are staggered in index order: lower-index workers finish earlier.
pub fn dp2(x: &[f64], t: &[f64], sync_time: f64) -> Vec<f64> {
    assert_eq!(x.len(), t.len(), "length mismatch");
    assert!(!x.is_empty(), "need at least one worker");
    assert!(
        sync_time >= 0.0 && sync_time.is_finite(),
        "sync time must be non-negative"
    );
    assert!(
        t.iter().all(|&v| v > 0.0 && v.is_finite()),
        "compute times must be positive"
    );

    let median = median_of(t);
    let p = x.len();
    let mut out = Vec::with_capacity(p);
    for i in 0..p {
        // Offsets symmetric around the median position: for p=4 →
        // -1.5, -0.5, +0.5, +1.5; for p=3 → -1, 0, +1.
        let offset = i as f64 - (p - 1) as f64 / 2.0;
        let target = (median + offset * sync_time).max(f64::MIN_POSITIVE);
        out.push((x[i] * target / t[i]).max(0.0));
    }
    normalize(&mut out);
    out
}

fn group_means(t: &[f64], classes: &[WorkerClass]) -> (f64, f64) {
    let mut cpu_sum = 0.0;
    let mut cpu_n = 0usize;
    let mut gpu_sum = 0.0;
    let mut gpu_n = 0usize;
    for (ti, class) in t.iter().zip(classes) {
        match class {
            WorkerClass::Cpu => {
                cpu_sum += ti;
                cpu_n += 1;
            }
            WorkerClass::Gpu => {
                gpu_sum += ti;
                gpu_n += 1;
            }
        }
    }
    (cpu_sum / cpu_n.max(1) as f64, gpu_sum / gpu_n.max(1) as f64)
}

fn median_of(t: &[f64]) -> f64 {
    let mut sorted = t.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

fn normalize(x: &mut [f64]) {
    let sum: f64 = x.iter().sum();
    if sum > 0.0 {
        for v in x.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / x.len() as f64;
        for v in x.iter_mut() {
            *v = uniform;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dp0_inverts_times() {
        // Worker 0 takes 2s standalone, worker 1 takes 1s → 1/3 vs 2/3.
        let x = dp0(&[2.0, 1.0]);
        assert!((x[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dp0_equal_times_equal_split() {
        let x = dp0(&[5.0; 4]);
        assert!(x.iter().all(|&v| (v - 0.25).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn dp0_rejects_zero_time() {
        dp0(&[1.0, 0.0]);
    }

    /// A toy measurement model: worker i's compute time = x_i * nnz / rate_i,
    /// where GPU rates additionally *increase* slightly as their share
    /// shrinks — the Table 2 effect DP1 exists to correct.
    fn toy_measure(rates: Vec<f64>, classes: Vec<WorkerClass>) -> impl FnMut(&[f64]) -> Vec<f64> {
        move |x: &[f64]| {
            x.iter()
                .enumerate()
                .map(|(i, &xi)| {
                    let boost = match classes[i] {
                        WorkerClass::Gpu => 1.0 + 0.08 * (1.0 - xi),
                        WorkerClass::Cpu => 1.0,
                    };
                    xi * 1e6 / (rates[i] * boost)
                })
                .collect()
        }
    }

    #[test]
    fn dp1_closes_the_cpu_gpu_gap() {
        let classes = vec![
            WorkerClass::Cpu,
            WorkerClass::Cpu,
            WorkerClass::Gpu,
            WorkerClass::Gpu,
        ];
        let rates = vec![1e5, 1.2e5, 9e5, 1e6];
        // DP0 from standalone times (x = 1 → full data each).
        let standalone: Vec<f64> = rates.iter().map(|r| 1e6 / r).collect();
        let x0 = dp0(&standalone);
        let mut measure = toy_measure(rates.clone(), classes.clone());
        let t0 = measure(&x0);
        let (c0, g0) = group_means(&t0, &classes);
        let gap0 = (c0 - g0).abs() / c0.min(g0);

        let x1 = dp1(&x0, &classes, Dp1Options::default(), measure);
        let mut measure2 = toy_measure(rates, classes.clone());
        let t1 = measure2(&x1);
        let (c1, g1) = group_means(&t1, &classes);
        let gap1 = (c1 - g1).abs() / c1.min(g1);
        assert!(gap1 <= 0.1 + 1e-9, "gap after DP1: {gap1}");
        assert!(
            gap1 <= gap0 + 1e-12,
            "DP1 worsened the gap: {gap0} -> {gap1}"
        );
        assert!((x1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dp1_with_single_class_is_identity() {
        let classes = vec![WorkerClass::Cpu; 3];
        let x0 = vec![0.2, 0.3, 0.5];
        let x1 = dp1(&x0, &classes, Dp1Options::default(), |_| {
            vec![1.0, 1.0, 1.0]
        });
        assert_eq!(x0, x1);
    }

    #[test]
    fn dp1_balanced_input_converges_immediately() {
        let classes = vec![WorkerClass::Cpu, WorkerClass::Gpu];
        let mut calls = 0;
        let x = dp1(&[0.5, 0.5], &classes, Dp1Options::default(), |x| {
            calls += 1;
            vec![x[0], x[1]] // identical rates → already balanced
        });
        assert_eq!(calls, 1, "should measure once and stop");
        assert_eq!(x, vec![0.5, 0.5]);
    }

    #[test]
    fn dp2_staggers_compute_times_by_sync_steps() {
        // 4 balanced workers at 1.0s, sync = 0.1s.
        let x = vec![0.25; 4];
        let t = vec![1.0; 4];
        let out = dp2(&x, &t, 0.1);
        // Targets: 0.85, 0.95, 1.05, 1.15 → fractions proportional.
        let total: f64 = [0.85, 0.95, 1.05, 1.15].iter().sum();
        for (i, want) in [0.85, 0.95, 1.05, 1.15].iter().enumerate() {
            assert!((out[i] - 0.25 * want / total * 4.0).abs() < 1e-9, "{out:?}");
        }
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Monotone increasing: later workers get more data.
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dp2_zero_sync_is_identity_for_balanced_input() {
        let x = vec![0.25; 4];
        let t = vec![2.0; 4];
        let out = dp2(&x, &t, 0.0);
        for v in &out {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn dp2_odd_worker_count_centers_on_median() {
        let x = vec![1.0 / 3.0; 3];
        let t = vec![1.0; 3];
        let out = dp2(&x, &t, 0.2);
        // Middle worker keeps the median share.
        assert!(out[0] < out[1] && out[1] < out[2]);
        let mid_target = 1.0;
        let total = 0.8 + 1.0 + 1.2;
        assert!((out[1] - (1.0 / 3.0) * mid_target / (total / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn dp2_huge_sync_clamps_to_nonnegative() {
        let x = vec![0.5, 0.5];
        let t = vec![1.0, 1.0];
        let out = dp2(&x, &t, 10.0);
        assert!(out.iter().all(|&v| v >= 0.0));
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_dp0_sums_to_one(times in proptest::collection::vec(0.01f64..100.0, 1..10)) {
            let x = dp0(&times);
            prop_assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(x.iter().all(|&v| v > 0.0));
        }

        #[test]
        fn prop_dp0_order_inverse_to_time(times in proptest::collection::vec(0.01f64..100.0, 2..10)) {
            let x = dp0(&times);
            for i in 0..times.len() {
                for j in 0..times.len() {
                    if times[i] < times[j] {
                        prop_assert!(x[i] >= x[j]);
                    }
                }
            }
        }

        #[test]
        fn prop_dp2_sums_to_one(
            t in proptest::collection::vec(0.1f64..10.0, 2..8),
            sync in 0.0f64..1.0,
        ) {
            let x = vec![1.0 / t.len() as f64; t.len()];
            let out = dp2(&x, &t, sync);
            prop_assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(out.iter().all(|&v| v >= 0.0));
        }
    }
}
