//! Theorem 1: the min-max partition.
//!
//! For `T(x) = max_i (a_i·x_i + b_i)` subject to `Σ x_i = 1`, `x_i ≥ 0`, the
//! minimum is attained exactly when every *active* worker's cost is equal.
//! Solving `a_i·x_i + b_i = C` for all active workers and `Σ x_i = 1` gives
//!
//! ```text
//! C = (1 + Σ b_i/a_i) / Σ (1/a_i)
//! x_i = (C − b_i) / a_i
//! ```
//!
//! A worker whose fixed cost `b_i` already exceeds `C` can't take negative
//! data; it is deactivated (`x_i = 0`) and the system re-solved over the
//! rest — the classic water-filling step (the paper doesn't hit this case
//! because its bus costs are near-equal, but a robust library must).

/// Equal-cost solution of `min max(a_i·x_i + b_i)` with `Σx = 1`, `x ≥ 0`.
///
/// Returns the partition vector. `a_i` must be positive (a worker with zero
/// per-unit cost would absorb everything).
///
/// # Panics
/// Panics if inputs are empty, lengths differ, or any `a_i ≤ 0` /
/// non-finite input appears.
pub fn equalize(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert!(!a.is_empty(), "need at least one worker");
    assert_eq!(a.len(), b.len(), "coefficient lengths differ");
    assert!(
        a.iter().all(|&v| v > 0.0 && v.is_finite()),
        "per-unit costs must be positive and finite"
    );
    assert!(
        b.iter().all(|&v| v >= 0.0 && v.is_finite()),
        "fixed costs must be non-negative"
    );

    let n = a.len();
    let mut active = vec![true; n];
    loop {
        let mut inv_sum = 0.0;
        let mut ratio_sum = 0.0;
        for i in 0..n {
            if active[i] {
                inv_sum += 1.0 / a[i];
                ratio_sum += b[i] / a[i];
            }
        }
        debug_assert!(inv_sum > 0.0, "all workers deactivated");
        let c = (1.0 + ratio_sum) / inv_sum;

        // Deactivate any worker whose fixed cost alone exceeds the common
        // cost; if none, we're done.
        let mut changed = false;
        for i in 0..n {
            if active[i] && b[i] > c {
                active[i] = false;
                changed = true;
            }
        }
        if !changed {
            return (0..n)
                .map(|i| if active[i] { (c - b[i]) / a[i] } else { 0.0 })
                .collect();
        }
    }
}

/// The common cost achieved by [`equalize`] — useful for assertions and
/// planning reports.
pub fn equalized_cost(a: &[f64], b: &[f64]) -> f64 {
    let x = equalize(a, b);
    x.iter()
        .enumerate()
        .map(|(i, &xi)| a[i] * xi + b[i])
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_workers_get_uniform_split() {
        let x = equalize(&[2.0, 2.0, 2.0], &[0.1, 0.1, 0.1]);
        for &v in &x {
            assert!((v - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn faster_worker_gets_more_data() {
        // a_i = per-unit cost; worker 1 is 4× faster.
        let x = equalize(&[4.0, 1.0], &[0.0, 0.0]);
        assert!((x[0] - 0.2).abs() < 1e-12);
        assert!((x[1] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn costs_are_equal_at_solution() {
        let a = [3.0, 1.5, 7.0];
        let b = [0.2, 0.4, 0.1];
        let x = equalize(&a, &b);
        let costs: Vec<f64> = (0..3).map(|i| a[i] * x[i] + b[i]).collect();
        for w in costs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "{costs:?}");
        }
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn huge_fixed_cost_deactivates_worker() {
        // Worker 1's fixed cost dwarfs anything worker 0 can reach.
        let x = equalize(&[1.0, 1.0], &[0.0, 100.0]);
        assert_eq!(x[1], 0.0);
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_worker_takes_all() {
        let x = equalize(&[5.0], &[1.0]);
        assert_eq!(x.len(), 1);
        assert!((x[0] - 1.0).abs() < 1e-12, "{x:?}");
    }

    #[test]
    fn equalized_cost_is_minimal_against_perturbations() {
        let a = [2.0, 3.0, 5.0];
        let b = [0.1, 0.2, 0.05];
        let best = equalized_cost(&a, &b);
        let x = equalize(&a, &b);
        // Move mass between pairs; max cost must not decrease.
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    continue;
                }
                let eps = 0.01;
                if x[i] < eps {
                    continue;
                }
                let mut y = x.clone();
                y[i] -= eps;
                y[j] += eps;
                let cost = (0..3).map(|w| a[w] * y[w] + b[w]).fold(0.0f64, f64::max);
                assert!(
                    cost >= best - 1e-12,
                    "perturbation improved: {cost} < {best}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_partition_sums_to_one_and_nonneg(
            a in proptest::collection::vec(0.01f64..100.0, 1..8),
            b in proptest::collection::vec(0.0f64..10.0, 1..8),
        ) {
            let len = a.len().min(b.len());
            let a = &a[..len];
            let b = &b[..len];
            let x = equalize(a, b);
            prop_assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(x.iter().all(|&v| v >= 0.0));
        }

        #[test]
        fn prop_active_costs_equal(
            a in proptest::collection::vec(0.01f64..100.0, 2..8),
        ) {
            let b = vec![0.0; a.len()];
            let x = equalize(&a, &b);
            let costs: Vec<f64> = (0..a.len()).map(|i| a[i]*x[i]).collect();
            let max = costs.iter().cloned().fold(0.0f64, f64::max);
            for &c in &costs {
                prop_assert!((c - max).abs() < 1e-6 * max.max(1.0));
            }
        }
    }
}
