//! Contiguous row-range sharding for the node-sharded parameter server.
//!
//! A sharded server splits the parameter matrix *by row* across N shard
//! endpoints, each owning one contiguous range — the same shape CuMF_SGD
//! uses for its scale-out parameter layout. The split reuses the planner's
//! proportional math ([`crate::dp0`]): shard ranges are sized by relative
//! throughput, exactly like worker data shares, so a heterogeneous server
//! fleet can be balanced with the same machinery that balances workers.
//!
//! The router guarantees a *partition*: every row in `[0, n_rows)` maps to
//! exactly one shard, and the ranges tile the row space with no gaps or
//! overlaps. When `n_rows >= shards` every shard owns at least one row.

use crate::dp::dp0;
use std::ops::Range;

/// Routes parameter rows to server shards by contiguous range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    /// Range boundaries: shard `s` owns rows `starts[s]..starts[s + 1]`.
    /// Invariants: `starts[0] == 0`, `starts[last] == n_rows`, and the
    /// sequence is non-decreasing.
    starts: Vec<usize>,
}

impl ShardRouter {
    /// An equal split: every shard gets `n_rows / shards` rows, the first
    /// `n_rows % shards` shards one extra.
    pub fn uniform(n_rows: usize, shards: usize) -> ShardRouter {
        assert!(shards > 0, "need at least one shard");
        ShardRouter::from_shares(n_rows, &vec![1.0 / shards as f64; shards])
    }

    /// Shares proportional to shard throughput, via the planner's DP0 math
    /// (Eq. 6): a shard advertising half the standalone time gets twice
    /// the rows. `standalone_times` must be positive and finite.
    pub fn from_throughput(n_rows: usize, standalone_times: &[f64]) -> ShardRouter {
        ShardRouter::from_shares(n_rows, &dp0(standalone_times))
    }

    /// Ranges from explicit fractional shares (which must be non-negative;
    /// they are normalized internally). Rows are assigned by cumulative
    /// rounding so the ranges always tile `[0, n_rows)` exactly, and every
    /// shard is non-empty whenever `n_rows >= shards`.
    pub fn from_shares(n_rows: usize, shares: &[f64]) -> ShardRouter {
        assert!(!shares.is_empty(), "need at least one shard");
        assert!(
            shares.iter().all(|&s| s >= 0.0 && s.is_finite()),
            "shares must be non-negative and finite"
        );
        let shards = shares.len();
        let total: f64 = shares.iter().sum();
        let mut starts = Vec::with_capacity(shards + 1);
        starts.push(0);
        let mut cum = 0.0;
        let mut prev = 0usize;
        for (i, &s) in shares.iter().enumerate().take(shards - 1) {
            cum += if total > 0.0 {
                s / total
            } else {
                1.0 / shards as f64
            };
            let mut at = (cum * n_rows as f64).round() as usize;
            // Clamp so each shard keeps >= 1 row when there are enough
            // rows to go around: strictly above the previous boundary, low
            // enough to leave one row per remaining shard. (prev + 1 never
            // exceeds the upper bound: prev is at most one below it.)
            if n_rows >= shards {
                at = at.clamp(prev + 1, n_rows - (shards - 1 - i));
            } else {
                at = at.max(prev).min(n_rows);
            }
            starts.push(at);
            prev = at;
        }
        starts.push(n_rows);
        ShardRouter { starts }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total rows routed.
    pub fn n_rows(&self) -> usize {
        *self.starts.last().unwrap_or(&0)
    }

    /// The contiguous row range shard `s` owns.
    pub fn range(&self, shard: usize) -> Range<usize> {
        self.starts[shard]..self.starts[shard + 1]
    }

    /// All shard ranges in order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shards()).map(|s| self.range(s))
    }

    /// The shard owning `row`, or `None` if `row >= n_rows`. Binary search
    /// over the boundaries: O(log shards).
    pub fn shard_of(&self, row: usize) -> Option<usize> {
        if row >= self.n_rows() {
            return None;
        }
        // partition_point finds the first boundary strictly above `row`;
        // subtracting one yields the owning shard. Zero-width ranges can
        // never win because their start equals their end.
        let idx = self.starts.partition_point(|&b| b <= row);
        Some(idx - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_split_tiles_exactly() {
        let r = ShardRouter::uniform(10, 4);
        let ranges: Vec<_> = r.ranges().collect();
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges[3].end, 10);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn single_shard_owns_everything() {
        let r = ShardRouter::uniform(7, 1);
        assert_eq!(r.range(0), 0..7);
        assert_eq!(r.shard_of(0), Some(0));
        assert_eq!(r.shard_of(6), Some(0));
        assert_eq!(r.shard_of(7), None);
    }

    #[test]
    fn throughput_shares_follow_dp0() {
        // Shard 1 is twice as fast: it gets ~2/3 of the rows.
        let r = ShardRouter::from_throughput(90, &[2.0, 1.0]);
        assert_eq!(r.range(0).len(), 30);
        assert_eq!(r.range(1).len(), 60);
    }

    #[test]
    fn every_shard_nonempty_when_rows_suffice() {
        // An extreme share vector must not starve any shard.
        let r = ShardRouter::from_shares(8, &[1000.0, 0.0, 0.0, 1.0]);
        for s in 0..4 {
            assert!(!r.range(s).is_empty(), "shard {s} starved: {:?}", r);
        }
    }

    #[test]
    fn fewer_rows_than_shards_still_tiles() {
        let r = ShardRouter::uniform(2, 4);
        let covered: usize = r.ranges().map(|g| g.len()).sum();
        assert_eq!(covered, 2);
        assert!(r.shard_of(0).is_some());
        assert!(r.shard_of(1).is_some());
        assert_eq!(r.shard_of(2), None);
    }

    #[test]
    fn zero_total_share_falls_back_to_uniform() {
        let r = ShardRouter::from_shares(9, &[0.0, 0.0, 0.0]);
        let sizes: Vec<usize> = r.ranges().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![3, 3, 3]);
    }

    /// 256-case property suite mirroring the frame codec's: random row
    /// counts and share vectors, asserting the partition invariants — every
    /// row maps to exactly one shard and the ranges cover [0, n_rows).
    #[test]
    fn prop_ranges_partition_row_space() {
        for case in 0u64..256 {
            let mut rng = splitmix(0x5AAD_0001 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let shards = 1 + (rng() % 8) as usize;
            let n_rows = (rng() % 2000) as usize;
            let shares: Vec<f64> = (0..shards).map(|_| (rng() % 1000) as f64).collect();
            let r = ShardRouter::from_shares(n_rows, &shares);
            assert_eq!(r.shards(), shards);
            assert_eq!(r.n_rows(), n_rows);

            // Coverage + disjointness via the range walk.
            let mut next = 0;
            for g in r.ranges() {
                assert_eq!(g.start, next, "gap or overlap at shard boundary");
                assert!(g.end >= g.start);
                next = g.end;
            }
            assert_eq!(next, n_rows, "ranges must cover [0, n_rows)");
            if n_rows >= shards {
                assert!(r.ranges().all(|g| !g.is_empty()), "starved shard");
            }

            // Routing agrees with the ranges for every row (sampled walk
            // for large n to keep the suite fast).
            let step = 1 + n_rows / 64;
            for row in (0..n_rows).step_by(step) {
                let s = r.shard_of(row).expect("in-range row must route");
                assert!(r.range(s).contains(&row), "row {row} routed to wrong shard");
            }
            assert_eq!(r.shard_of(n_rows), None);
        }
    }

    /// Tiny deterministic generator for the property suite (splitmix64).
    fn splitmix(seed: u64) -> impl FnMut() -> u64 {
        let mut x = seed;
        move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
