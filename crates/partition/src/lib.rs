//! Time-cost model and data-partition strategies of HCC-MF (§3.2–3.3).
//!
//! Everything here is pure arithmetic over worker/bus/server parameters —
//! no threads, no I/O — so the same code plans partitions for both the real
//! threaded engine (`hcc-mf`) and the virtual platform simulator
//! (`hcc-hetsim`). Measurement enters through callbacks: DP1's compensation
//! loop (Algorithm 1) re-measures per-worker compute times after each
//! adjustment via a caller-supplied `measure` function, which the real
//! engine implements with wall clocks and the simulator with virtual time.
//!
//! * [`model::CostModel`] — Equations 1–5 and Table 1's parameters.
//! * [`theorem::equalize`] — Theorem 1: `max(a_i x_i + b_i)` is minimized
//!   (subject to `Σx = 1`) exactly when all `a_i x_i + b_i` are equal.
//! * [`dp::dp0`] — the basic proportional split (Eq. 6).
//! * [`dp::dp1`] — "data partition with heterogeneous load balance"
//!   (Algorithm 1's compensation loop).
//! * [`dp::dp2`] — "data partition with hidden synchronization" (Eq. 7).
//! * [`planner::PartitionPlanner`] — the λ-threshold dispatch (Eq. 5)
//!   between DP1 and DP2.
//! * [`shard::ShardRouter`] — contiguous row-range sharding for the
//!   node-sharded parameter server, sized by the same DP0 shares.

//!
//! ```
//! use hcc_partition::{dp0, equalize};
//!
//! // DP0: shares proportional to speed (inverse standalone time, Eq. 6).
//! let x = dp0(&[2.0, 1.0]);           // worker 1 is twice as fast
//! assert!((x[1] - 2.0 / 3.0).abs() < 1e-12);
//!
//! // Theorem 1: equal-cost split under per-worker fixed costs.
//! let x = equalize(&[1.0, 1.0], &[0.0, 0.5]);
//! assert!(x[0] > x[1]);               // worker 1 pays fixed cost, gets less data
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod dp;
pub mod model;
pub mod planner;
pub mod shard;
pub mod sweep;
pub mod theorem;

pub use dp::{dp0, dp1, dp1_step, dp2, Dp1Options, WorkerClass};
pub use model::CostModel;
pub use planner::{replan_survivors, PartitionPlan, PartitionPlanner, StrategyChoice};
pub use shard::ShardRouter;
pub use sweep::{perturbation_cost, sweep_lambda};
pub use theorem::equalize;
