//! The time-cost model (Eqs. 1–5, Table 1).
//!
//! One training epoch costs
//!
//! ```text
//! T = max_i { T_i_pull + T_i_c + T_i_push }  +  T_sync            (Eq. 1)
//! T_i ≈ x_i·nnz·(16k+4)/B_i + 2·V_bus/B_bus_i                     (Eq. 2)
//! T_sync = Σ_t 3·V_sync/B_server                                  (Eq. 3)
//! ```
//!
//! where `(16k+4)` bytes is the memory traffic of one SGD update (read+write
//! of the two k-vectors in f32, plus the 4-byte rating), `V_bus` is the
//! per-direction transfer volume (strategy-dependent: `4k(m+n)` unoptimized,
//! `4kn` for Q-only, `2kn` for half-Q), and `V_sync` the *decompressed*
//! payload the server merges with 3 memory ops + 1 FMA per element. The
//! compute term dominates `7k/P_i` arithmetic because `P_i ≫ B_i` (the
//! paper drops that term; we do too).

use serde::{Deserialize, Serialize};

/// All Table-1 parameters needed to evaluate the model, in byte/second units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Observed ratings.
    pub nnz: u64,
    /// Rating-matrix rows.
    pub m: u64,
    /// Rating-matrix columns.
    pub n: u64,
    /// Latent dimension.
    pub k: u64,
    /// Effective memory bandwidth of each worker during SGD, bytes/s
    /// (`B_i`; "effective" because caches make it exceed DRAM bandwidth).
    pub worker_bandwidth: Vec<f64>,
    /// Bus bandwidth between each worker and the server, bytes/s (`B_bus_i`).
    pub bus_bandwidth: Vec<f64>,
    /// Server memory bandwidth, bytes/s (`B_server`).
    pub server_bandwidth: f64,
    /// Per-direction transfer volume in bytes (`V_bus`), set from the active
    /// communication strategy.
    pub transfer_bytes: u64,
    /// Per-worker sync payload in bytes (`V_sync`, always FP32).
    pub sync_bytes: u64,
}

impl CostModel {
    /// The paper's λ threshold: synchronization is negligible when
    /// `max{T_i} / T_sync ≥ λ`.
    pub const LAMBDA: f64 = 10.0;

    /// Memory traffic of one SGD update in bytes: `16k + 4`.
    pub fn bytes_per_update(&self) -> f64 {
        16.0 * self.k as f64 + 4.0
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.worker_bandwidth.len()
    }

    /// Compute time of worker `i` given its data fraction `x_i` (Eq. 2,
    /// first term).
    pub fn compute_time(&self, i: usize, x_i: f64) -> f64 {
        x_i * self.nnz as f64 * self.bytes_per_update() / self.worker_bandwidth[i]
    }

    /// Pull (or push — symmetric) time of worker `i` (Eq. 2, second term /2).
    pub fn transfer_time(&self, i: usize) -> f64 {
        self.transfer_bytes as f64 / self.bus_bandwidth[i]
    }

    /// Full per-worker epoch cost `T_i` (Eq. 2).
    pub fn worker_time(&self, i: usize, x_i: f64) -> f64 {
        self.compute_time(i, x_i) + 2.0 * self.transfer_time(i)
    }

    /// Time the server needs to merge one worker's push (one term of Eq. 3):
    /// 3 memory operations per parameter (read local, read global, write
    /// global) at `B_server` — the `k(m+n)/P_server` FMA term is dropped as
    /// in the paper.
    pub fn sync_time_per_worker(&self) -> f64 {
        3.0 * self.sync_bytes as f64 / self.server_bandwidth
    }

    /// Epoch cost (Eq. 4) given partition `x` and the number of
    /// synchronizations `t` that land *after* the slowest worker finishes.
    pub fn epoch_time(&self, x: &[f64], trailing_syncs: usize) -> f64 {
        assert_eq!(x.len(), self.workers(), "partition length mismatch");
        let max_worker = (0..self.workers())
            .map(|i| self.worker_time(i, x[i]))
            .fold(0.0f64, f64::max);
        max_worker + trailing_syncs as f64 * self.sync_time_per_worker()
    }

    /// `max{T_i} / T_sync`, the ratio Eq. 5 compares against λ. `T_sync`
    /// here is the total trailing synchronization burden in the worst case
    /// (all `p` workers' merges trailing). Returns `f64::INFINITY` when sync
    /// is free.
    pub fn sync_ratio(&self, x: &[f64]) -> f64 {
        let max_worker = (0..self.workers())
            .map(|i| self.worker_time(i, x[i]))
            .fold(0.0f64, f64::max);
        let total_sync = self.workers() as f64 * self.sync_time_per_worker();
        if total_sync <= 0.0 {
            f64::INFINITY
        } else {
            max_worker / total_sync
        }
    }

    /// Whether Eq. 5 says synchronization can be ignored (→ DP1).
    pub fn sync_negligible(&self, x: &[f64]) -> bool {
        self.sync_ratio(x) >= Self::LAMBDA
    }

    /// Per-unit-fraction compute cost `a_i = nnz·(16k+4)/B_i` and fixed cost
    /// `b_i = 2·V_bus/B_bus_i`, the coefficients Theorem 1 equalizes.
    pub fn linear_coefficients(&self) -> (Vec<f64>, Vec<f64>) {
        let a = (0..self.workers())
            .map(|i| self.nnz as f64 * self.bytes_per_update() / self.worker_bandwidth[i])
            .collect();
        let b = (0..self.workers())
            .map(|i| 2.0 * self.transfer_time(i))
            .collect();
        (a, b)
    }

    /// The paper's §3.4 rule of thumb: communication and computation are the
    /// same order of magnitude when `nnz/(m+n) < 10³`.
    pub fn comm_bound_indicator(&self) -> f64 {
        self.nnz as f64 / (self.m + self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel {
            nnz: 1_000_000,
            m: 10_000,
            n: 1_000,
            k: 32,
            worker_bandwidth: vec![50e9, 100e9],
            bus_bandwidth: vec![16e9, 16e9],
            server_bandwidth: 60e9,
            transfer_bytes: 4 * 32 * 1_000, // Q-only FP32
            sync_bytes: 4 * 32 * 1_000,
        }
    }

    #[test]
    fn bytes_per_update_formula() {
        assert_eq!(model().bytes_per_update(), 16.0 * 32.0 + 4.0);
    }

    #[test]
    fn compute_time_scales_with_fraction_and_bandwidth() {
        let m = model();
        let t_half = m.compute_time(0, 0.5);
        let t_full = m.compute_time(0, 1.0);
        assert!((t_full / t_half - 2.0).abs() < 1e-12);
        // Worker 1 is 2× faster.
        assert!((m.compute_time(0, 0.5) / m.compute_time(1, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn worker_time_adds_two_transfers() {
        let m = model();
        let t = m.worker_time(0, 0.0);
        assert!((t - 2.0 * m.transfer_time(0)).abs() < 1e-15);
    }

    #[test]
    fn epoch_time_takes_max_plus_syncs() {
        let m = model();
        let x = [0.9, 0.1];
        let t0 = m.worker_time(0, 0.9);
        let t1 = m.worker_time(1, 0.1);
        assert!(t0 > t1);
        let epoch = m.epoch_time(&x, 2);
        assert!((epoch - (t0 + 2.0 * m.sync_time_per_worker())).abs() < 1e-12);
    }

    #[test]
    fn sync_ratio_drives_negligibility() {
        let mut m = model();
        // Tiny sync payload → negligible.
        m.sync_bytes = 4;
        assert!(m.sync_negligible(&[0.5, 0.5]));
        // Enormous sync payload → not negligible.
        m.sync_bytes = 1 << 34;
        assert!(!m.sync_negligible(&[0.5, 0.5]));
    }

    #[test]
    fn zero_sync_gives_infinite_ratio() {
        let mut m = model();
        m.sync_bytes = 0;
        assert_eq!(m.sync_ratio(&[0.5, 0.5]), f64::INFINITY);
    }

    #[test]
    fn linear_coefficients_match_times() {
        let m = model();
        let (a, b) = m.linear_coefficients();
        for i in 0..2 {
            let x = 0.3;
            assert!((a[i] * x + b[i] - m.worker_time(i, x)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_partition_length_panics() {
        model().epoch_time(&[1.0], 0);
    }
}
