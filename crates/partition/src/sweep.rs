//! Sensitivity analysis for the planner's design choices.
//!
//! DESIGN.md calls out two knobs worth ablating: the λ threshold of Eq. 5
//! (the paper sets 10 with one sentence of justification) and the
//! robustness of the equal-cost partition to measurement noise (DP1 works
//! from timing measurements that jitter in practice).

use crate::dp::WorkerClass;
use crate::model::CostModel;
use crate::planner::{PartitionPlanner, StrategyChoice};

/// Plans once per λ value, reporting the chosen strategy and the
/// model-predicted epoch time. Used by the `ablation_lambda` bench to show
/// where the DP1/DP2 switchover sits for a given platform/workload.
pub fn sweep_lambda(
    model: &CostModel,
    standalone_times: &[f64],
    classes: &[WorkerClass],
    mut measure: impl FnMut(&[f64]) -> Vec<f64>,
    lambdas: &[f64],
) -> Vec<(f64, StrategyChoice, f64)> {
    lambdas
        .iter()
        .map(|&lambda| {
            let planner = PartitionPlanner {
                lambda,
                ..Default::default()
            };
            let plan = planner.plan(model, standalone_times, classes, &mut measure);
            (lambda, plan.strategy, plan.predicted_epoch)
        })
        .collect()
}

/// Worst-case relative increase of `max(a_i·x_i + b_i)` when the partition
/// is perturbed by ±`eps` (mass moved pairwise). Quantifies how much a
/// timing error of `eps` in the balanced partition can cost — small values
/// mean DP1's 10 % tolerance is safe.
pub fn perturbation_cost(a: &[f64], b: &[f64], x: &[f64], eps: f64) -> f64 {
    assert_eq!(a.len(), x.len());
    assert_eq!(b.len(), x.len());
    let base = worst(a, b, x);
    let mut worst_case = base;
    for i in 0..x.len() {
        for j in 0..x.len() {
            if i == j || x[i] < eps {
                continue;
            }
            let mut y = x.to_vec();
            y[i] -= eps;
            y[j] += eps;
            worst_case = worst_case.max(worst(a, b, &y));
        }
    }
    (worst_case - base) / base.max(f64::MIN_POSITIVE)
}

fn worst(a: &[f64], b: &[f64], x: &[f64]) -> f64 {
    x.iter()
        .enumerate()
        .map(|(i, &xi)| a[i] * xi + b[i])
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem::equalize;

    fn toy_model(sync_bytes: u64) -> CostModel {
        CostModel {
            nnz: 10_000_000,
            m: 100_000,
            n: 10_000,
            k: 32,
            worker_bandwidth: vec![50e9, 200e9],
            bus_bandwidth: vec![16e9, 16e9],
            server_bandwidth: 60e9,
            transfer_bytes: 4 * 32 * 10_000,
            sync_bytes,
        }
    }

    fn measure_for(model: CostModel) -> impl FnMut(&[f64]) -> Vec<f64> {
        move |x: &[f64]| {
            (0..model.workers())
                .map(|i| model.compute_time(i, x[i]))
                .collect()
        }
    }

    #[test]
    fn lambda_sweep_crosses_from_dp1_to_dp2() {
        // Make sync comparable to compute so the choice flips with λ.
        let model = toy_model(40 * 1024 * 1024);
        let standalone: Vec<f64> = (0..2).map(|i| model.compute_time(i, 1.0)).collect();
        let classes = [WorkerClass::Cpu, WorkerClass::Gpu];
        let results = sweep_lambda(
            &model,
            &standalone,
            &classes,
            measure_for(model.clone()),
            &[0.1, 1.0, 10.0, 100.0, 1000.0],
        );
        assert_eq!(results.len(), 5);
        // Low λ: sync "negligible" → DP1; high λ: → DP2. Monotone flip.
        assert_eq!(results[0].1, StrategyChoice::Dp1);
        assert_eq!(results.last().unwrap().1, StrategyChoice::Dp2);
        let mut seen_dp2 = false;
        for (_, choice, _) in &results {
            if *choice == StrategyChoice::Dp2 {
                seen_dp2 = true;
            } else {
                assert!(!seen_dp2, "choice flipped back to DP1 after DP2");
            }
        }
    }

    #[test]
    fn perturbation_cost_is_zero_at_zero_eps() {
        let a = [2.0, 3.0];
        let b = [0.1, 0.1];
        let x = equalize(&a, &b);
        assert_eq!(perturbation_cost(&a, &b, &x, 0.0), 0.0);
    }

    #[test]
    fn perturbation_cost_grows_with_eps() {
        let a = [2.0, 3.0, 5.0];
        let b = [0.0, 0.0, 0.0];
        let x = equalize(&a, &b);
        let small = perturbation_cost(&a, &b, &x, 0.01);
        let large = perturbation_cost(&a, &b, &x, 0.1);
        assert!(small >= 0.0);
        assert!(large > small, "{large} !> {small}");
        // Moving 1% of the data costs only a few percent — the DP1 tolerance
        // is safe.
        assert!(small < 0.1, "1% perturbation cost {small}");
    }
}
