//! The λ-threshold planner (Eq. 5).
//!
//! Eq. 5 makes the epoch model piecewise: when `max{T_i}/T_sync ≥ λ` the
//! synchronization tail is negligible and HCC-MF balances loads with DP1;
//! otherwise it staggers them with DP2 to hide the syncs. The planner wires
//! the pieces together: DP0 seed → DP1 refinement → (if sync matters) DP2
//! staggering, reporting which path was taken.

use crate::dp::{dp0, dp1, dp2, Dp1Options, WorkerClass};
use crate::model::CostModel;
use serde::{Deserialize, Serialize};

/// Which partition strategy the planner settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyChoice {
    /// Basic proportional split only (planner forced, or no refinement).
    Dp0,
    /// Heterogeneous load balance (sync negligible).
    Dp1,
    /// Hidden synchronization (sync significant).
    Dp2,
}

/// The planner's output.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// The chosen strategy.
    pub strategy: StrategyChoice,
    /// The data partition (sums to 1).
    pub fractions: Vec<f64>,
    /// The model's `max{T_i}/T_sync` ratio used for the λ decision.
    pub sync_ratio: f64,
    /// Measured (or simulated) per-worker compute times under `fractions`.
    pub compute_times: Vec<f64>,
    /// Model-predicted epoch time under `fractions`.
    pub predicted_epoch: f64,
}

/// Plans partitions for a worker set described by a [`CostModel`].
#[derive(Debug, Clone)]
pub struct PartitionPlanner {
    /// λ in Eq. 5; the paper uses 10.
    pub lambda: f64,
    /// DP1 loop options.
    pub dp1_options: Dp1Options,
}

impl Default for PartitionPlanner {
    fn default() -> Self {
        PartitionPlanner {
            lambda: CostModel::LAMBDA,
            dp1_options: Dp1Options::default(),
        }
    }
}

impl PartitionPlanner {
    /// Full planning pipeline.
    ///
    /// `standalone_times` are each worker's independent full-data execution
    /// times (`T_i_e`, the DP0 input); `classes` mark CPU/GPU group
    /// membership for Algorithm 1; `measure` runs one (real or simulated)
    /// epoch for a candidate partition and returns per-worker compute times.
    pub fn plan(
        &self,
        model: &CostModel,
        standalone_times: &[f64],
        classes: &[WorkerClass],
        mut measure: impl FnMut(&[f64]) -> Vec<f64>,
    ) -> PartitionPlan {
        assert_eq!(
            standalone_times.len(),
            model.workers(),
            "worker count mismatch"
        );
        assert_eq!(classes.len(), model.workers(), "class count mismatch");

        let x0 = dp0(standalone_times);
        let x1 = dp1(&x0, classes, self.dp1_options, &mut measure);
        let mut t1 = measure(&x1);

        // Theorem-1 refinement: Algorithm 1 balances the CPU and GPU *group
        // means*, which leaves intra-group imbalance untouched (e.g. a
        // time-sharing server worker whose standalone profile overstates
        // it). Theorem 1 requires every worker's cost equal, so finish with
        // a short per-worker fixed-point: rescale each share toward the
        // median measured time (dp2 with zero stagger) and re-measure.
        let mut x1 = x1;
        for _ in 0..3 {
            let next = dp2(&x1, &t1, 0.0);
            let t_next = measure(&next);
            let spread = |t: &[f64]| {
                let max = t.iter().cloned().fold(0.0f64, f64::max);
                let min = t.iter().cloned().fold(f64::INFINITY, f64::min);
                (max - min) / max.max(f64::MIN_POSITIVE)
            };
            if spread(&t_next) >= spread(&t1) {
                break; // no further improvement (e.g. fixed comm dominates)
            }
            x1 = next;
            t1 = t_next;
        }

        let sync_ratio = {
            let max_t = compute_epoch_worker_max(model, &x1);
            let total_sync = model.workers() as f64 * model.sync_time_per_worker();
            if total_sync <= 0.0 {
                f64::INFINITY
            } else {
                max_t / total_sync
            }
        };

        if sync_ratio >= self.lambda {
            let predicted = model.epoch_time(&x1, 1);
            PartitionPlan {
                strategy: StrategyChoice::Dp1,
                fractions: x1,
                sync_ratio,
                compute_times: t1,
                predicted_epoch: predicted,
            }
        } else {
            let x2 = dp2(&x1, &t1, model.sync_time_per_worker());
            let t2 = measure(&x2);
            // With hidden sync only the last worker's merge trails the max.
            let predicted = model.epoch_time(&x2, 1);
            PartitionPlan {
                strategy: StrategyChoice::Dp2,
                fractions: x2,
                sync_ratio,
                compute_times: t2,
                predicted_epoch: predicted,
            }
        }
    }
}

/// Re-plans a partition over the survivors of a worker failure.
///
/// `x` is the current partition (sums to 1 over *all* workers), `t` the last
/// measured per-worker compute times, and `alive[i]` whether worker `i`
/// survives. Dead workers' shares are redistributed over the survivors in
/// proportion to their observed throughput `x_i / t_i` — the same
/// speed-proportional principle as DP0, but seeded from live measurements
/// instead of standalone profiles. Returns the survivors' fractions indexed
/// by the *compacted* survivor order (dead entries removed), summing to 1.
/// Falls back to a uniform split when no throughput signal is usable.
/// Returns an empty vector when no worker survives.
pub fn replan_survivors(x: &[f64], t: &[f64], alive: &[bool]) -> Vec<f64> {
    assert_eq!(x.len(), t.len(), "fraction/time length mismatch");
    assert_eq!(x.len(), alive.len(), "fraction/alive length mismatch");
    let survivors: Vec<usize> = (0..x.len()).filter(|&i| alive[i]).collect();
    if survivors.is_empty() {
        return Vec::new();
    }
    let rates: Vec<f64> = survivors
        .iter()
        .map(|&i| {
            if t[i] > 0.0 && x[i] > 0.0 && t[i].is_finite() {
                x[i] / t[i]
            } else {
                0.0
            }
        })
        .collect();
    let total: f64 = rates.iter().sum();
    if total > 0.0 && total.is_finite() {
        rates.iter().map(|r| r / total).collect()
    } else {
        vec![1.0 / survivors.len() as f64; survivors.len()]
    }
}

fn compute_epoch_worker_max(model: &CostModel, x: &[f64]) -> f64 {
    (0..model.workers())
        .map(|i| model.worker_time(i, x[i]))
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(sync_bytes: u64) -> CostModel {
        CostModel {
            nnz: 100_000_000,
            m: 480_190,
            n: 17_771,
            k: 128,
            worker_bandwidth: vec![70e9, 40e9, 390e9, 410e9],
            bus_bandwidth: vec![20e9, 20e9, 16e9, 16e9],
            server_bandwidth: 67e9,
            transfer_bytes: 4 * 128 * 17_771,
            sync_bytes,
        }
    }

    fn model_measure(m: CostModel) -> impl FnMut(&[f64]) -> Vec<f64> {
        move |x: &[f64]| (0..m.workers()).map(|i| m.compute_time(i, x[i])).collect()
    }

    #[test]
    fn small_sync_chooses_dp1() {
        let m = model(4 * 128 * 17_771); // Q-only payload: tiny vs compute
        let standalone: Vec<f64> = (0..4).map(|i| m.compute_time(i, 1.0)).collect();
        let classes = [
            WorkerClass::Cpu,
            WorkerClass::Cpu,
            WorkerClass::Gpu,
            WorkerClass::Gpu,
        ];
        let plan =
            PartitionPlanner::default().plan(&m, &standalone, &classes, model_measure(m.clone()));
        assert_eq!(plan.strategy, StrategyChoice::Dp1);
        assert!(plan.sync_ratio >= 10.0, "ratio {}", plan.sync_ratio);
        assert!((plan.fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn huge_sync_chooses_dp2() {
        // R1-like: payload ~ k·(n≈1.1M) floats → sync dominates.
        let m = CostModel {
            nnz: 115_000_000,
            m: 1_948_883,
            n: 1_101_750,
            k: 128,
            worker_bandwidth: vec![70e9, 390e9, 410e9],
            bus_bandwidth: vec![20e9, 16e9, 16e9],
            server_bandwidth: 67e9,
            transfer_bytes: 4 * 128 * 1_101_750,
            sync_bytes: 4 * 128 * 1_101_750,
        };
        let standalone: Vec<f64> = (0..3).map(|i| m.compute_time(i, 1.0)).collect();
        let classes = [WorkerClass::Cpu, WorkerClass::Gpu, WorkerClass::Gpu];
        let plan =
            PartitionPlanner::default().plan(&m, &standalone, &classes, model_measure(m.clone()));
        assert_eq!(plan.strategy, StrategyChoice::Dp2);
        assert!(plan.sync_ratio < 10.0, "ratio {}", plan.sync_ratio);
        // DP2 staggers: fractions strictly increasing in worker order when
        // rates are comparable per group — at minimum, not all equal.
        let all_equal = plan
            .fractions
            .windows(2)
            .all(|w| (w[0] - w[1]).abs() < 1e-12);
        assert!(!all_equal, "{:?}", plan.fractions);
    }

    #[test]
    fn replan_redistributes_by_throughput() {
        // Worker 1 dies; workers 0 and 2 had equal throughput (x/t), so the
        // survivor split is 50/50.
        let x = [0.25, 0.5, 0.25];
        let t = [1.0, 2.0, 1.0];
        let alive = [true, false, true];
        let replanned = replan_survivors(&x, &t, &alive);
        assert_eq!(replanned.len(), 2);
        assert!((replanned[0] - 0.5).abs() < 1e-12);
        assert!((replanned[1] - 0.5).abs() < 1e-12);

        // Faster survivor gets proportionally more.
        let x = [0.4, 0.4, 0.2];
        let t = [1.0, 2.0, 1.0];
        let alive = [true, true, false];
        let replanned = replan_survivors(&x, &t, &alive);
        assert!((replanned.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(replanned[0] > replanned[1]);
    }

    #[test]
    fn replan_falls_back_to_uniform_and_handles_extinction() {
        // No usable timing signal → uniform over survivors.
        let replanned = replan_survivors(&[0.5, 0.5], &[0.0, 0.0], &[true, true]);
        assert_eq!(replanned, vec![0.5, 0.5]);
        // Everyone dead → empty.
        assert!(replan_survivors(&[1.0], &[1.0], &[false]).is_empty());
    }

    #[test]
    fn plan_reports_compute_times_for_final_partition() {
        let m = model(4 * 128 * 17_771);
        let standalone: Vec<f64> = (0..4).map(|i| m.compute_time(i, 1.0)).collect();
        let classes = [
            WorkerClass::Cpu,
            WorkerClass::Cpu,
            WorkerClass::Gpu,
            WorkerClass::Gpu,
        ];
        let plan =
            PartitionPlanner::default().plan(&m, &standalone, &classes, model_measure(m.clone()));
        assert_eq!(plan.compute_times.len(), 4);
        for (i, &t) in plan.compute_times.iter().enumerate() {
            let expect = m.compute_time(i, plan.fractions[i]);
            assert!((t - expect).abs() < 1e-12, "worker {i}");
        }
        assert!(plan.predicted_epoch > 0.0);
    }
}
