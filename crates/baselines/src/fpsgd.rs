//! FPSGD (Chin et al., TIST 2015) — the fast parallel SGD-MF solver for
//! shared-memory multi-core CPUs, used by the paper as the CPU-side baseline
//! and as HCC-MF's CPU worker kernel.
//!
//! Core idea: cut the rating matrix into a block grid with more blocks per
//! side than threads. A scheduler only hands a thread a *free* block — one
//! sharing no block-row and no block-column with any in-flight block — so
//! concurrently processed blocks touch disjoint rows of `P` and disjoint
//! rows of `Q`: lock-free SGD inside blocks without Hogwild races. The
//! scheduler prefers less-processed blocks and breaks ties randomly, which is
//! FPSGD's defense against update-frequency skew.

use crate::report::{TrainConfig, TrainReport};
use hcc_sgd::kernel::sgd_step_shared;
use hcc_sgd::{rmse, FactorMatrix, SharedFactors};
use hcc_sparse::{BlockGrid, CooMatrix};
use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// FPSGD solver.
#[derive(Debug, Clone)]
pub struct Fpsgd {
    /// Blocks per grid side = `grid_factor × threads` (FPSGD recommends at
    /// least threads + 1 per side; 2× is the common setting).
    pub grid_factor: usize,
}

impl Default for Fpsgd {
    fn default() -> Self {
        Fpsgd { grid_factor: 2 }
    }
}

impl Fpsgd {
    /// Trains on `matrix` with the block-scheduled parallel sweep.
    pub fn train(&self, matrix: &CooMatrix, config: &TrainConfig) -> TrainReport {
        let threads = config.effective_threads();
        let side = (self.grid_factor.max(1) * threads).max(2);
        let grid = BlockGrid::build(matrix, side, side);
        let p = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.rows() as usize,
            config.k,
            config.seed,
        ));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.cols() as usize,
            config.k,
            config.seed ^ 0x9e37,
        ));

        let mut rmse_history = Vec::new();
        let mut epoch_times = Vec::new();

        for epoch in 0..config.epochs {
            let lr = config.learning_rate.at(epoch);
            let scheduler = Scheduler::new(side);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let p = p.clone();
                    let q = q.clone();
                    let grid = &grid;
                    let scheduler = &scheduler;
                    let seed = config
                        .seed
                        .wrapping_add(epoch as u64 * 0x1000)
                        .wrapping_add(t as u64);
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        while let Some((br, bc)) = scheduler.acquire(&mut rng) {
                            for e in grid.block(br, bc) {
                                sgd_step_shared(
                                    &p,
                                    &q,
                                    e.u as usize,
                                    e.i as usize,
                                    e.r,
                                    lr,
                                    config.lambda_p,
                                    config.lambda_q,
                                );
                            }
                            scheduler.release(br, bc);
                        }
                    });
                }
            });
            epoch_times.push(start.elapsed());
            if config.track_rmse {
                rmse_history.push(rmse(matrix.entries(), &p.snapshot(), &q.snapshot()));
            }
        }

        TrainReport {
            p: p.snapshot(),
            q: q.snapshot(),
            rmse_history,
            epoch_times,
            total_updates: matrix.nnz() as u64 * config.epochs as u64,
        }
    }
}

/// The free-block scheduler. One instance per epoch: every block is
/// processed exactly once per epoch.
struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    side: usize,
}

struct SchedState {
    row_busy: Vec<bool>,
    col_busy: Vec<bool>,
    done: Vec<bool>,
    remaining: usize,
}

impl Scheduler {
    fn new(side: usize) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                row_busy: vec![false; side],
                col_busy: vec![false; side],
                done: vec![false; side * side],
                remaining: side * side,
            }),
            cv: Condvar::new(),
            side,
        }
    }

    /// Blocks until a free, unprocessed block is available (returning its
    /// coordinates and marking it busy+done) or the epoch is exhausted
    /// (returning `None`).
    fn acquire(&self, rng: &mut impl Rng) -> Option<(usize, usize)> {
        let mut state = self.state.lock();
        loop {
            if state.remaining == 0 {
                return None;
            }
            // Reservoir-sample one candidate among free, unprocessed blocks.
            let mut picked = None;
            let mut seen = 0u32;
            for br in 0..self.side {
                if state.row_busy[br] {
                    continue;
                }
                for bc in 0..self.side {
                    if state.col_busy[bc] || state.done[br * self.side + bc] {
                        continue;
                    }
                    seen += 1;
                    if rng.random_range(0..seen) == 0 {
                        picked = Some((br, bc));
                    }
                }
            }
            if let Some((br, bc)) = picked {
                state.row_busy[br] = true;
                state.col_busy[bc] = true;
                state.done[br * self.side + bc] = true;
                state.remaining -= 1;
                return Some((br, bc));
            }
            // Unprocessed blocks exist but all are blocked by in-flight
            // rows/columns: wait for a release.
            self.cv.wait(&mut state);
        }
    }

    fn release(&self, br: usize, bc: usize) {
        let mut state = self.state.lock();
        state.row_busy[br] = false;
        state.col_busy[bc] = false;
        drop(state);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::LearningRate;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 120,
            nnz: 6_000,
            noise: 0.0,
            ..GenConfig::default()
        })
    }

    #[test]
    fn fpsgd_converges_multithreaded() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 8,
            epochs: 25,
            threads: 4,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = Fpsgd::default().train(&ds.matrix, &cfg);
        let hist = &report.rmse_history;
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.35),
            "no convergence: {:?} -> {:?}",
            hist.first(),
            hist.last()
        );
    }

    #[test]
    fn fpsgd_single_thread_works() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 4,
            epochs: 5,
            threads: 1,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = Fpsgd::default().train(&ds.matrix, &cfg);
        assert!(report.rmse_history[4] < report.rmse_history[0]);
    }

    #[test]
    fn scheduler_processes_every_block_once() {
        let side = 6;
        let scheduler = Scheduler::new(side);
        let counts = Mutex::new(vec![0u32; side * side]);
        std::thread::scope(|scope| {
            for t in 0..3 {
                let scheduler = &scheduler;
                let counts = &counts;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(t);
                    while let Some((br, bc)) = scheduler.acquire(&mut rng) {
                        counts.lock()[br * side + bc] += 1;
                        scheduler.release(br, bc);
                    }
                });
            }
        });
        assert!(counts.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn scheduler_never_hands_out_conflicting_blocks() {
        let side = 4;
        let scheduler = Scheduler::new(side);
        let active = Mutex::new(Vec::<(usize, usize)>::new());
        let violation = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let scheduler = &scheduler;
                let active = &active;
                let violation = &violation;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(100 + t);
                    while let Some((br, bc)) = scheduler.acquire(&mut rng) {
                        {
                            let mut act = active.lock();
                            if act.iter().any(|&(r, c)| r == br || c == bc) {
                                violation.store(true, std::sync::atomic::Ordering::SeqCst);
                            }
                            act.push((br, bc));
                        }
                        std::thread::yield_now();
                        active.lock().retain(|&(r, c)| (r, c) != (br, bc));
                        scheduler.release(br, bc);
                    }
                });
            }
        });
        assert!(!violation.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn more_threads_than_blocks_terminates() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 10,
            cols: 10,
            nnz: 50,
            ..GenConfig::default()
        });
        let cfg = TrainConfig {
            k: 4,
            epochs: 2,
            threads: 8,
            ..Default::default()
        };
        // side = 16, 256 blocks — fine; also exercise tiny grid_factor.
        let report = Fpsgd { grid_factor: 1 }.train(&ds.matrix, &cfg);
        assert_eq!(report.epoch_times.len(), 2);
    }
}
