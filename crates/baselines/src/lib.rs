//! Baseline SGD-MF solvers the paper compares against.
//!
//! The paper's Figure 7 and Table 4 benchmark HCC-MF against the
//! state-of-the-art single-processor solvers, using *modified* versions of
//! their open-source code as HCC-MF's own worker kernels. This crate
//! re-implements those comparators:
//!
//! * [`fpsgd`] — FPSGD (Chin et al., TIST 2015): the multi-core CPU solver.
//!   The rating matrix is cut into a block grid; a lock-protected scheduler
//!   hands each thread a *free* block (no other thread active in its block
//!   row or column), so threads never touch the same factor rows.
//! * [`cumf_sim`] — CuMF_SGD (Xie et al., HPDC 2017), structurally simulated:
//!   a massively-parallel batched Hogwild sweep mimicking the GPU kernel's
//!   warp-batch work queue, including the paper's "block sorting by row"
//!   cache optimization (footnote 1, modification iii).
//! * [`dsgd`] — DSGD (Gemulla et al., KDD 2011): the stratified distributed
//!   solver from the paper's related work, whose per-stratum barriers and
//!   equal splits are exactly what HCC-MF improves on.
//! * [`nomad`] — NOMAD (Yun et al., VLDB 2014): decentralized asynchronous
//!   column-ownership passing, the lock-free design §5 critiques for its
//!   communication volume.
//! * [`serial`] — plain serial SGD, the ground-truth reference.
//!
//! All solvers share [`TrainConfig`]/[`TrainReport`] so benches can sweep
//! them uniformly.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cumf_sim;
pub mod dsgd;
pub mod fpsgd;
pub mod nomad;
pub mod report;
pub mod serial;

pub use cumf_sim::CumfSgdSim;
pub use dsgd::Dsgd;
pub use fpsgd::Fpsgd;
pub use nomad::Nomad;
pub use report::{TrainConfig, TrainReport};
pub use serial::SerialSgd;
