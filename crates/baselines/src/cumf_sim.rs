//! CuMF_SGD (Xie et al., HPDC 2017), structurally simulated on the CPU.
//!
//! The real CuMF_SGD launches tens of thousands of GPU threads; each *warp*
//! repeatedly grabs a batch of ratings from a global work queue and applies
//! vectorized SGD updates, relying on Hogwild-style tolerance for the rare
//! conflicting rows. We cannot run CUDA kernels from stable Rust on this
//! machine (see DESIGN.md), so this module mimics the kernel's *structure*:
//!
//! * entries are pre-sorted in row blocks (the paper's footnote-1
//!   modification iii, which it adds to CuMF_SGD's `grid_problem` for cache
//!   hit rate) — controlled by [`CumfSgdSim::sort_by_row`];
//! * a global atomic cursor hands out fixed-size batches (the warp work
//!   queue);
//! * worker threads play the role of SMs, applying the k-wide update loop
//!   that the GPU does with warp shuffles.
//!
//! At *paper scale* the throughput of the real GPU is taken from the
//! `hcc-hetsim` processor profiles; this module is what runs when real
//! convergence numbers are needed.

use crate::report::{TrainConfig, TrainReport};
use hcc_sgd::kernel::sgd_step_shared;
use hcc_sgd::{rmse, FactorMatrix, SharedFactors};
use hcc_sparse::CooMatrix;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// CuMF_SGD structural simulator.
#[derive(Debug, Clone)]
pub struct CumfSgdSim {
    /// Ratings per work-queue batch (a warp's grab). CuMF_SGD uses small
    /// per-warp batches; 128 amortizes the atomic fetch without hurting
    /// the Hogwild mixing.
    pub batch_size: usize,
    /// Apply the block-sort-by-row preprocessing (the paper's cache
    /// optimization; benchmarked by the ablation bench).
    pub sort_by_row: bool,
}

impl Default for CumfSgdSim {
    fn default() -> Self {
        CumfSgdSim {
            batch_size: 128,
            sort_by_row: true,
        }
    }
}

impl CumfSgdSim {
    /// Trains on `matrix` with the batched work-queue sweep.
    ///
    /// Like the original CuMF_SGD, ratings are normalized before training
    /// (here to a ≤ 5-point scale) and the learned `Q` is rescaled on the
    /// way out. The row-sorted sweep makes same-row updates consecutive;
    /// without normalization a 100-point scale compounds those correlated
    /// steps into divergence (empirically reproducible on Yahoo-R1-shaped
    /// data at the paper's γ = 0.005).
    pub fn train(&self, matrix: &CooMatrix, config: &TrainConfig) -> TrainReport {
        assert!(self.batch_size > 0, "batch size must be non-zero");
        let threads = config.effective_threads();

        let scale = matrix
            .rating_range()
            .map(|(lo, hi)| (hi.abs().max(lo.abs()) / 5.0).max(1.0))
            .unwrap_or(1.0);
        let mut entries: Vec<_> = if self.sort_by_row {
            let mut m = matrix.clone();
            m.sort_by_row();
            m.into_entries()
        } else {
            matrix.entries().to_vec()
        };
        if scale != 1.0 {
            for e in &mut entries {
                e.r /= scale;
            }
        }
        // Substituting r = s·r', p = √s·p', q = √s·q' into the loss shows
        // the equivalent normalized-problem regularizer is λ/s; the learning
        // rate is boosted by √s to keep per-epoch progress comparable while
        // retaining a √s stability margin over the raw-scale dynamics.
        let lambda_p = config.lambda_p / scale;
        let lambda_q = config.lambda_q / scale;
        let lr_boost = scale.sqrt();

        let p = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.rows() as usize,
            config.k,
            config.seed,
        ));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.cols() as usize,
            config.k,
            config.seed ^ 0x9e37,
        ));

        let mut rmse_history = Vec::new();
        let mut epoch_times = Vec::new();
        let batches = entries.len().div_ceil(self.batch_size);

        for epoch in 0..config.epochs {
            let lr = config.learning_rate.at(epoch) * lr_boost;
            let cursor = AtomicUsize::new(0);
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let p = p.clone();
                    let q = q.clone();
                    let cursor = &cursor;
                    let entries = &entries;
                    scope.spawn(move || loop {
                        // ordering: Relaxed — batch-claim cursor; the RMW's
                        // atomicity alone assigns each batch uniquely, and
                        // batch data is immutable during the epoch.
                        let b = cursor.fetch_add(1, Ordering::Relaxed);
                        if b >= batches {
                            break;
                        }
                        let lo = b * self.batch_size;
                        let hi = (lo + self.batch_size).min(entries.len());
                        for e in &entries[lo..hi] {
                            sgd_step_shared(
                                &p,
                                &q,
                                e.u as usize,
                                e.i as usize,
                                e.r,
                                lr,
                                lambda_p,
                                lambda_q,
                            );
                        }
                    });
                }
            });
            epoch_times.push(start.elapsed());
            if config.track_rmse {
                rmse_history.push(rmse(
                    matrix.entries(),
                    &p.snapshot(),
                    &rescaled(&q.snapshot(), scale),
                ));
            }
        }

        TrainReport {
            p: p.snapshot(),
            q: rescaled(&q.snapshot(), scale),
            rmse_history,
            epoch_times,
            total_updates: matrix.nnz() as u64 * config.epochs as u64,
        }
    }
}

/// Multiplies a factor matrix by `scale` (undoing the rating normalization
/// on the `Q` side so `P·Q` predicts original-scale ratings).
fn rescaled(m: &FactorMatrix, scale: f32) -> FactorMatrix {
    if scale == 1.0 {
        return m.clone();
    }
    let mut out = m.clone();
    for v in out.as_mut_slice() {
        *v *= scale;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::LearningRate;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 120,
            nnz: 6_000,
            noise: 0.0,
            ..GenConfig::default()
        })
    }

    #[test]
    fn cumf_sim_converges() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 8,
            epochs: 25,
            threads: 4,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = CumfSgdSim::default().train(&ds.matrix, &cfg);
        let hist = &report.rmse_history;
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.35),
            "no convergence: {:?} -> {:?}",
            hist.first(),
            hist.last()
        );
    }

    #[test]
    fn unsorted_variant_converges_too() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 8,
            epochs: 15,
            threads: 2,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let solver = CumfSgdSim {
            sort_by_row: false,
            ..Default::default()
        };
        let report = solver.train(&ds.matrix, &cfg);
        assert!(report.rmse_history.last().unwrap() < &report.rmse_history[0]);
    }

    #[test]
    fn batch_size_one_and_huge_both_work() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 30,
            cols: 30,
            nnz: 300,
            ..GenConfig::default()
        });
        let cfg = TrainConfig {
            k: 4,
            epochs: 2,
            threads: 2,
            ..Default::default()
        };
        for batch_size in [1usize, 1_000_000] {
            let solver = CumfSgdSim {
                batch_size,
                sort_by_row: true,
            };
            let report = solver.train(&ds.matrix, &cfg);
            assert_eq!(report.total_updates, 300 * 2);
        }
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_panics() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 5,
            cols: 5,
            nnz: 10,
            ..GenConfig::default()
        });
        let solver = CumfSgdSim {
            batch_size: 0,
            sort_by_row: false,
        };
        solver.train(&ds.matrix, &TrainConfig::default());
    }
}
