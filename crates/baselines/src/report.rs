//! Shared training configuration and result report.

use hcc_sgd::{FactorMatrix, LearningRate};
use std::time::Duration;

/// Hyper-parameters shared by every solver.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Latent dimension `k`.
    pub k: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning-rate schedule (paper: constant 0.005).
    pub learning_rate: LearningRate,
    /// L2 regularization λ1 on `P`.
    pub lambda_p: f32,
    /// L2 regularization λ2 on `Q`.
    pub lambda_q: f32,
    /// Worker threads (meaning is solver-specific; 0 = all cores).
    pub threads: usize,
    /// Seed for factor initialization and scheduling randomness.
    pub seed: u64,
    /// If true, compute RMSE over the training set after each epoch and
    /// record it in the report (costs one extra pass per epoch).
    pub track_rmse: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            k: 32,
            epochs: 20,
            learning_rate: LearningRate::paper_default(),
            lambda_p: 0.01,
            lambda_q: 0.01,
            threads: 0,
            seed: 0x5eed,
            track_rmse: false,
        }
    }
}

impl TrainConfig {
    /// Resolves `threads == 0` to the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Final user factors.
    pub p: FactorMatrix,
    /// Final item factors.
    pub q: FactorMatrix,
    /// Per-epoch training RMSE (empty unless `track_rmse`).
    pub rmse_history: Vec<f64>,
    /// Per-epoch wall-clock time.
    pub epoch_times: Vec<Duration>,
    /// Total SGD updates performed (= nnz × epochs for full sweeps).
    pub total_updates: u64,
}

impl TrainReport {
    /// Total wall-clock training time.
    pub fn total_time(&self) -> Duration {
        self.epoch_times.iter().sum()
    }

    /// The paper's "computing power" metric (Eq. 8): updates per second.
    pub fn computing_power(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs > 0.0 {
            self.total_updates as f64 / secs
        } else {
            0.0
        }
    }

    /// Final training RMSE, if tracked.
    pub fn final_rmse(&self) -> Option<f64> {
        self.rmse_history.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let cfg = TrainConfig::default();
        assert_eq!(cfg.learning_rate, LearningRate::Constant(0.005));
        assert_eq!(cfg.lambda_p, 0.01);
        assert!(cfg.effective_threads() >= 1);
    }

    #[test]
    fn explicit_threads_respected() {
        let cfg = TrainConfig {
            threads: 3,
            ..Default::default()
        };
        assert_eq!(cfg.effective_threads(), 3);
    }

    #[test]
    fn computing_power_formula() {
        let report = TrainReport {
            p: FactorMatrix::zeros(1, 1),
            q: FactorMatrix::zeros(1, 1),
            rmse_history: vec![],
            epoch_times: vec![Duration::from_secs(2)],
            total_updates: 10,
        };
        assert_eq!(report.computing_power(), 5.0);
        assert_eq!(report.final_rmse(), None);
    }
}
