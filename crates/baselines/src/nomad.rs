//! NOMAD (Yun et al., VLDB 2014) — the non-locking, asynchronous,
//! decentralized MF solver from the paper's related work (§5).
//!
//! Ownership-passing instead of a parameter server: workers own disjoint
//! *row* blocks of `P` permanently, while the columns of `Q` circulate —
//! whichever worker currently holds item `i`'s column has exclusive rights
//! to it, processes all of its local ratings for that item, then passes the
//! column to another worker's queue. No locks, no global sync; but, as the
//! paper notes, the entire training state of `Q` travels continuously
//! (large communication volume), and a skewed rating distribution lets hot
//! columns starve — both reasons HCC-MF centralizes `Q` instead.
//!
//! Column ownership makes `Q` access exclusive by construction; `P` rows
//! are worker-exclusive by the row partition, so the factor updates are
//! genuinely race-free (the shared-atomic storage is used only as plumbing).

use crate::report::{TrainConfig, TrainReport};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hcc_sgd::kernel::sgd_step_shared;
use hcc_sgd::{rmse, FactorMatrix, SharedFactors};
use hcc_sparse::{CooMatrix, GridPartition};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// NOMAD solver.
#[derive(Debug, Clone, Default)]
pub struct Nomad;

/// A circulating token: ownership of one `Q` column.
struct ColumnToken {
    item: u32,
    /// How many workers have processed this column in the current epoch.
    hops: usize,
}

impl Nomad {
    /// Trains on `matrix`. `config.threads` is the worker count (each an OS
    /// thread owning a row block).
    pub fn train(&self, matrix: &CooMatrix, config: &TrainConfig) -> TrainReport {
        let workers = config.effective_threads().max(1);
        let p = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.rows() as usize,
            config.k,
            config.seed,
        ));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.cols() as usize,
            config.k,
            config.seed ^ 0x9e37,
        ));

        // Row partition of P ownership; per worker, entries indexed by item
        // so a column token can be served in O(column entries).
        let grid = GridPartition::build_uniform(matrix, hcc_sparse::Axis::Row, workers);
        let per_worker_by_item: Vec<Vec<Vec<hcc_sparse::Rating>>> = (0..workers)
            .map(|w| {
                let mut by_item: Vec<Vec<hcc_sparse::Rating>> =
                    vec![Vec::new(); matrix.cols() as usize];
                for &e in grid.shard(w) {
                    by_item[e.i as usize].push(e);
                }
                by_item
            })
            .collect();

        let mut rmse_history = Vec::new();
        let mut epoch_times = Vec::new();

        for epoch in 0..config.epochs {
            let lr = config.learning_rate.at(epoch);
            let start = Instant::now();

            // Fresh queues per epoch; columns start at their diagonal-ish
            // home worker (the paper's NOMAD critique notes this diagonal
            // start is no protection when the distribution is skewed).
            let channels: Vec<(Sender<ColumnToken>, Receiver<ColumnToken>)> =
                (0..workers).map(|_| unbounded()).collect();
            let senders: Vec<Sender<ColumnToken>> =
                channels.iter().map(|(tx, _)| tx.clone()).collect();
            for i in 0..matrix.cols() {
                let home = (i as usize) % workers;
                senders[home]
                    .send(ColumnToken { item: i, hops: 0 })
                    .expect("queue open");
            }
            // Each column must visit every worker exactly once per epoch.
            let remaining = AtomicUsize::new(matrix.cols() as usize);

            std::thread::scope(|scope| {
                for (w, (_, rx)) in channels.iter().enumerate() {
                    let p = p.clone();
                    let q = q.clone();
                    let by_item = &per_worker_by_item[w];
                    let senders = senders.clone();
                    let remaining = &remaining;
                    let rx: Receiver<ColumnToken> = rx.clone();
                    scope.spawn(move || {
                        // ordering: Acquire — pairs with the AcqRel
                        // fetch_sub below so a worker that observes the
                        // epoch finished also observes every column's
                        // final hop (termination, not data, is the point:
                        // factor cells are independently Relaxed-atomic).
                        while remaining.load(Ordering::Acquire) > 0 {
                            let Ok(mut token) =
                                rx.recv_timeout(std::time::Duration::from_millis(5))
                            else {
                                continue;
                            };
                            for e in &by_item[token.item as usize] {
                                sgd_step_shared(
                                    &p,
                                    &q,
                                    e.u as usize,
                                    e.i as usize,
                                    e.r,
                                    lr,
                                    config.lambda_p,
                                    config.lambda_q,
                                );
                            }
                            token.hops += 1;
                            if token.hops >= workers {
                                // ordering: AcqRel — release pairs with the
                                // Acquire loop check above; acquire orders
                                // this decrement after the column's last
                                // SGD pass on this thread.
                                remaining.fetch_sub(1, Ordering::AcqRel);
                            } else {
                                // Pass to the next worker in the ring.
                                let next = (w + 1) % workers;
                                let _ = senders[next].send(token);
                            }
                        }
                    });
                }
            });

            epoch_times.push(start.elapsed());
            if config.track_rmse {
                rmse_history.push(rmse(matrix.entries(), &p.snapshot(), &q.snapshot()));
            }
        }

        TrainReport {
            p: p.snapshot(),
            q: q.snapshot(),
            rmse_history,
            epoch_times,
            total_updates: matrix.nnz() as u64 * config.epochs as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::LearningRate;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 120,
            nnz: 6_000,
            noise: 0.0,
            ..GenConfig::default()
        })
    }

    #[test]
    fn nomad_converges() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 8,
            epochs: 25,
            threads: 3,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = Nomad.train(&ds.matrix, &cfg);
        let hist = &report.rmse_history;
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.35),
            "no convergence: {:?} -> {:?}",
            hist.first(),
            hist.last()
        );
    }

    #[test]
    fn single_worker_degenerates_to_serial_sweep() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 4,
            epochs: 5,
            threads: 1,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = Nomad.train(&ds.matrix, &cfg);
        assert!(report.rmse_history[4] < report.rmse_history[0]);
    }

    #[test]
    fn every_rating_is_visited_each_epoch() {
        // Each column visits every worker once; each entry lives with
        // exactly one worker; so updates per epoch == nnz. Verify via the
        // returned loss bookkeeping indirectly: factors move for every
        // row/column that has data.
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 30,
            cols: 20,
            nnz: 200,
            noise: 0.0,
            ..GenConfig::default()
        });
        let cfg = TrainConfig {
            k: 4,
            epochs: 1,
            threads: 4,
            learning_rate: LearningRate::Constant(0.05),
            ..Default::default()
        };
        let before_q = FactorMatrix::random(20, 4, cfg.seed ^ 0x9e37);
        let report = Nomad.train(&ds.matrix, &cfg);
        let col_counts = ds.matrix.col_counts();
        for (i, &count) in col_counts.iter().enumerate() {
            if count > 0 {
                assert_ne!(
                    report.q.row(i),
                    before_q.row(i),
                    "rated column {i} untouched"
                );
            } else {
                assert_eq!(report.q.row(i), before_q.row(i), "unrated column {i} moved");
            }
        }
    }
}
