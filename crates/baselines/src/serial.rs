//! Plain serial SGD-MF — the correctness reference every parallel solver is
//! tested against.

use crate::report::{TrainConfig, TrainReport};
use hcc_sgd::kernel::sgd_step;
use hcc_sgd::{rmse, FactorMatrix};
use hcc_sparse::CooMatrix;
use std::time::Instant;

/// Serial SGD solver. One thread, entries in stored order.
#[derive(Debug, Clone, Default)]
pub struct SerialSgd;

impl SerialSgd {
    /// Trains on `matrix`, returning factors and per-epoch stats.
    pub fn train(&self, matrix: &CooMatrix, config: &TrainConfig) -> TrainReport {
        let mut p = FactorMatrix::random(matrix.rows() as usize, config.k, config.seed);
        let mut q = FactorMatrix::random(matrix.cols() as usize, config.k, config.seed ^ 0x9e37);
        let mut rmse_history = Vec::new();
        let mut epoch_times = Vec::new();

        for epoch in 0..config.epochs {
            let lr = config.learning_rate.at(epoch);
            let start = Instant::now();
            for e in matrix.entries() {
                sgd_step(
                    p.row_mut(e.u as usize),
                    q.row_mut(e.i as usize),
                    e.r,
                    lr,
                    config.lambda_p,
                    config.lambda_q,
                );
            }
            epoch_times.push(start.elapsed());
            if config.track_rmse {
                rmse_history.push(rmse(matrix.entries(), &p, &q));
            }
        }

        TrainReport {
            p,
            q,
            rmse_history,
            epoch_times,
            total_updates: matrix.nnz() as u64 * config.epochs as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sparse::{GenConfig, SyntheticDataset};

    #[test]
    fn serial_converges_on_planted_data() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 150,
            cols: 80,
            nnz: 4_000,
            noise: 0.0,
            ..GenConfig::default()
        });
        let cfg = TrainConfig {
            k: 8,
            epochs: 30,
            learning_rate: hcc_sgd::LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = SerialSgd.train(&ds.matrix, &cfg);
        let history = &report.rmse_history;
        assert_eq!(history.len(), 30);
        assert!(
            history.last().unwrap() < &(history[0] * 0.35),
            "no convergence: {:?} -> {:?}",
            history.first(),
            history.last()
        );
        assert_eq!(report.total_updates, 4_000 * 30);
        assert_eq!(report.epoch_times.len(), 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 40,
            cols: 30,
            nnz: 500,
            ..GenConfig::default()
        });
        let cfg = TrainConfig {
            k: 4,
            epochs: 3,
            ..Default::default()
        };
        let a = SerialSgd.train(&ds.matrix, &cfg);
        let b = SerialSgd.train(&ds.matrix, &cfg);
        assert_eq!(a.p, b.p);
        assert_eq!(a.q, b.q);
    }

    #[test]
    fn rmse_not_tracked_by_default() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 20,
            cols: 20,
            nnz: 100,
            ..GenConfig::default()
        });
        let report = SerialSgd.train(
            &ds.matrix,
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        assert!(report.rmse_history.is_empty());
        assert!(report.final_rmse().is_none());
    }
}
