//! DSGD (Gemulla et al., KDD 2011) — distributed stratified SGD, the
//! MapReduce-era ancestor the paper's related work (§5) positions HCC-MF
//! against.
//!
//! The rating matrix is cut into a `d × d` block grid. A *stratum* is a set
//! of `d` blocks no two of which share a block-row or block-column (a
//! permutation of the diagonal), so the blocks of one stratum touch
//! disjoint `P` and `Q` rows and can be trained fully in parallel with no
//! synchronization. One epoch sweeps `d` strata (every block exactly once),
//! with a barrier between strata — that barrier is precisely the
//! synchronization overhead HCC-MF's asynchronous workers avoid, and the
//! equal-size strata are the "equal division" load-balance weakness §5
//! calls out on heterogeneous hardware.

use crate::report::{TrainConfig, TrainReport};
use hcc_sgd::kernel::sgd_step_shared;
use hcc_sgd::{rmse, FactorMatrix, SharedFactors};
use hcc_sparse::{BlockGrid, CooMatrix};
use std::time::Instant;

/// DSGD solver.
#[derive(Debug, Clone, Default)]
pub struct Dsgd {
    /// Grid side `d`; 0 means "use the worker (thread) count".
    pub grid_side: usize,
}

impl Dsgd {
    /// Trains on `matrix` with stratified parallel sub-epochs.
    pub fn train(&self, matrix: &CooMatrix, config: &TrainConfig) -> TrainReport {
        let threads = config.effective_threads();
        let d = if self.grid_side > 0 {
            self.grid_side
        } else {
            threads.max(2)
        };
        let grid = BlockGrid::build(matrix, d, d);

        let p = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.rows() as usize,
            config.k,
            config.seed,
        ));
        let q = SharedFactors::from_matrix(&FactorMatrix::random(
            matrix.cols() as usize,
            config.k,
            config.seed ^ 0x9e37,
        ));

        let mut rmse_history = Vec::new();
        let mut epoch_times = Vec::new();

        for epoch in 0..config.epochs {
            let lr = config.learning_rate.at(epoch);
            let start = Instant::now();
            // Stratum s contains blocks (r, (r + s) mod d) for r in 0..d —
            // the canonical diagonal rotation.
            for s in 0..d {
                std::thread::scope(|scope| {
                    for r in 0..d {
                        let c = (r + s) % d;
                        let block = grid.block(r, c);
                        if block.is_empty() {
                            continue;
                        }
                        let p = p.clone();
                        let q = q.clone();
                        scope.spawn(move || {
                            for e in block {
                                sgd_step_shared(
                                    &p,
                                    &q,
                                    e.u as usize,
                                    e.i as usize,
                                    e.r,
                                    lr,
                                    config.lambda_p,
                                    config.lambda_q,
                                );
                            }
                        });
                    }
                }); // <- the inter-stratum barrier DSGD pays d times per epoch
            }
            epoch_times.push(start.elapsed());
            if config.track_rmse {
                rmse_history.push(rmse(matrix.entries(), &p.snapshot(), &q.snapshot()));
            }
        }

        TrainReport {
            p: p.snapshot(),
            q: q.snapshot(),
            rmse_history,
            epoch_times,
            total_updates: matrix.nnz() as u64 * config.epochs as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_sgd::LearningRate;
    use hcc_sparse::{GenConfig, Rating, SyntheticDataset};

    fn dataset() -> SyntheticDataset {
        SyntheticDataset::generate(GenConfig {
            rows: 200,
            cols: 120,
            nnz: 6_000,
            noise: 0.0,
            ..GenConfig::default()
        })
    }

    #[test]
    fn dsgd_converges() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 8,
            epochs: 25,
            threads: 4,
            learning_rate: LearningRate::Constant(0.02),
            track_rmse: true,
            ..Default::default()
        };
        let report = Dsgd::default().train(&ds.matrix, &cfg);
        let hist = &report.rmse_history;
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.35),
            "no convergence: {:?} -> {:?}",
            hist.first(),
            hist.last()
        );
    }

    #[test]
    fn explicit_grid_side_works() {
        let ds = dataset();
        let cfg = TrainConfig {
            k: 4,
            epochs: 3,
            threads: 2,
            ..Default::default()
        };
        for side in [2usize, 3, 7] {
            let report = Dsgd { grid_side: side }.train(&ds.matrix, &cfg);
            assert_eq!(report.epoch_times.len(), 3);
            assert!(report.p.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn strata_cover_every_block_once() {
        // Structural check of the rotation schedule: over s in 0..d, each
        // (r, c) pair appears exactly once.
        let d = 5;
        let mut seen = vec![false; d * d];
        for s in 0..d {
            for r in 0..d {
                let c = (r + s) % d;
                assert!(!seen[r * d + c], "block ({r},{c}) scheduled twice");
                seen[r * d + c] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn single_entry_matrix() {
        let m = CooMatrix::new(4, 4, vec![Rating::new(1, 2, 3.0)]).unwrap();
        let cfg = TrainConfig {
            k: 2,
            epochs: 2,
            threads: 2,
            ..Default::default()
        };
        let report = Dsgd::default().train(&m, &cfg);
        assert_eq!(report.total_updates, 2);
    }
}
