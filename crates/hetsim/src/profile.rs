//! Processor profiles calibrated from the paper's measurements.
//!
//! Calibration sources:
//!
//! * **Table 4** — per-processor "computing power" (rating updates/s at
//!   k = 128) on each dataset. These are the paper's *measured* standalone
//!   rates, which bake in every cache/bandwidth effect.
//! * **Table 2** — runtime memory bandwidth (GB/s): "IW" (worker processes
//!   the full dataset) vs. "DP0" (worker processes its DP0 shard). GPU
//!   bandwidth *rises slightly* as the shard shrinks; CPU bandwidth is
//!   flat. We model `bw(x) = bw_iw + gain·(1 − x)` with `gain` fitted to
//!   the Table 2 pair, and scale the compute rate by `bw(x)/bw(1)` — this
//!   is precisely the second-order effect DP1's compensation corrects.
//! * **Fig. 3(b)** — hardware price catalog (approximate street prices).
//! * The Xeon 6242 at non-measured thread counts is scaled by the Table 2
//!   bandwidth ratio (the kernel is memory-bound, §3.2).

use serde::{Deserialize, Serialize};

/// CPU or GPU, with its paper-relevant configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcKind {
    /// A CPU worker with this many SGD threads.
    Cpu { threads: u32 },
    /// A GPU worker with this many resident hardware threads (the paper
    /// configures 41,216 on the 2080 and 43,008 on the 2080S).
    Gpu { hw_threads: u32 },
}

impl ProcKind {
    /// True for GPU profiles.
    pub fn is_gpu(&self) -> bool {
        matches!(self, ProcKind::Gpu { .. })
    }
}

/// Interconnect between a worker and the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BusKind {
    /// PCI-E 3.0 x16: ~16 GB/s per direction.
    PciE3x16,
    /// Intel UPI: ~20.8 GB/s per direction.
    Upi,
    /// Same socket as the server (the time-sharing worker): transfers run
    /// at server memory-copy speed.
    ServerLocal,
    /// Custom bandwidth in bytes/s per direction.
    Custom(f64),
}

impl BusKind {
    /// Per-direction bandwidth in bytes/s.
    pub fn bandwidth(&self) -> f64 {
        match *self {
            BusKind::PciE3x16 => 16.0e9,
            BusKind::Upi => 20.8e9,
            BusKind::ServerLocal => 67.0e9,
            BusKind::Custom(b) => b,
        }
    }
}

/// Network interface between a worker and the server, for platforms whose
/// pull/push traffic crosses a real (lossy) link rather than a PCI-E or
/// UPI bus. Mirrors the socket transport's failure model: a loss rate
/// eats goodput through retransmits, and each retransmit round costs a
/// fixed latency on top of the serialization time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicProfile {
    /// Per-direction bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Fraction of frames lost in transit, in `[0, 1)`.
    pub loss_rate: f64,
    /// Latency of one retransmit round trip in seconds (detection timeout
    /// plus the re-send's queueing delay).
    pub retrans_latency: f64,
}

impl NicProfile {
    /// A loss-free NIC at `bandwidth` bytes/s.
    pub fn lossless(bandwidth: f64) -> NicProfile {
        NicProfile {
            bandwidth,
            loss_rate: 0.0,
            retrans_latency: 0.0,
        }
    }

    /// 10 GbE with a loss rate and a 500 µs retransmit round trip (the
    /// socket transport's default RPC timeout scale).
    pub fn ten_gbe(loss_rate: f64) -> NicProfile {
        NicProfile {
            bandwidth: 1.25e9,
            loss_rate,
            retrans_latency: 500e-6,
        }
    }

    /// Expected goodput in bytes/s: every lost frame is re-sent, so a loss
    /// rate `p` stretches each delivered byte by `1/(1−p)` wire bytes.
    pub fn effective_bandwidth(&self) -> f64 {
        self.bandwidth * (1.0 - self.loss_rate.clamp(0.0, 0.999_999))
    }

    /// Expected time to deliver `bytes` across this NIC: serialization at
    /// the loss-adjusted goodput plus the expected `p/(1−p)` retransmit
    /// rounds' latency.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        let p = self.loss_rate.clamp(0.0, 0.999_999);
        bytes / self.effective_bandwidth() + self.retrans_latency * p / (1.0 - p)
    }

    /// The NIC expressed as a [`BusKind`] for the DES engine's bus model
    /// (loss folded into the effective bandwidth; retransmit latency is
    /// carried separately by the fault layer).
    pub fn as_bus(&self) -> BusKind {
        BusKind::Custom(self.effective_bandwidth())
    }
}

/// Per-dataset standalone update rates (updates/s at k = 128).
///
/// Rates for the four Table 4 datasets are stored explicitly; unknown
/// workloads fall back to a nearest-shape match (see [`RateTable::rate`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateTable {
    /// Netflix-class: tall matrix, moderate nnz (99 M).
    pub netflix: f64,
    /// Yahoo R1-class: huge dimensions (3 M total), 116 M nnz.
    pub r1: f64,
    /// Yahoo R2-class: very dense (384 M nnz).
    pub r2: f64,
    /// MovieLens-class: near-square, small (20 M nnz).
    pub movielens: f64,
}

impl RateTable {
    /// Uniform table (used for custom processors in tests/examples).
    pub fn uniform(rate: f64) -> RateTable {
        RateTable {
            netflix: rate,
            r1: rate,
            r2: rate,
            movielens: rate,
        }
    }

    /// Scales every rate by `factor`.
    pub fn scaled(&self, factor: f64) -> RateTable {
        RateTable {
            netflix: self.netflix * factor,
            r1: self.r1 * factor,
            r2: self.r2 * factor,
            movielens: self.movielens * factor,
        }
    }

    /// Rate for a workload, by dataset name when known, otherwise by shape:
    /// the nearest class in `(log nnz, aspect m/n, dim-sum m+n)` space.
    pub fn rate(&self, name: &str, m: u64, n: u64, nnz: u64) -> f64 {
        match name {
            "Netflix" => self.netflix,
            "Yahoo! Music R1" | "R1*" | "R1_NEW" => self.r1,
            "Yahoo! Music R2" => self.r2,
            "MovieLens-20m" => self.movielens,
            _ => {
                // Shape heuristic: huge dimension sum → R1 class (cache
                // misses dominate); near-square small → MovieLens class;
                // very dense → R2 class; else Netflix class.
                let dim_sum = (m + n) as f64;
                let density = nnz as f64 / (m as f64 * n as f64);
                if dim_sum > 2.0e6 {
                    self.r1
                } else if density > 2.0e-3 && nnz > 200_000_000 {
                    self.r2
                } else if (m as f64 / n as f64) < 4.0 && nnz < 50_000_000 {
                    self.movielens
                } else {
                    self.netflix
                }
            }
        }
    }
}

/// One processor: identity, rates, bandwidth behaviour, price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorProfile {
    /// Display name ("RTX 2080S", "6242-16T", …).
    pub name: String,
    /// CPU/GPU and thread configuration.
    pub kind: ProcKind,
    /// Standalone update rates per dataset class.
    pub rates: RateTable,
    /// Memory bandwidth in bytes/s when processing the full dataset
    /// (Table 2 "IW" row).
    pub bandwidth_iw: f64,
    /// Bandwidth gain at vanishing shard size: `bw(x) = iw + gain·(1−x)`
    /// (fit to Table 2's DP0 row; ~0 for CPUs).
    pub bandwidth_gain: f64,
    /// Street price in USD (Fig. 3(b)).
    pub price_usd: f64,
    /// Independent DMA/copy streams available for Strategy 3 (GPUs have
    /// dedicated copy engines; a plain CPU has none — pipelining needs an
    /// iGPU BLT engine per §3.4).
    pub max_streams: usize,
}

impl ProcessorProfile {
    /// Runtime memory bandwidth when the worker holds fraction `x` of the
    /// data (Table 2 model).
    pub fn bandwidth_at(&self, x: f64) -> f64 {
        self.bandwidth_iw + self.bandwidth_gain * (1.0 - x.clamp(0.0, 1.0))
    }

    /// Standalone update rate on a workload when holding fraction `x`:
    /// the Table 4 rate scaled by the bandwidth shift.
    pub fn rate_at(&self, name: &str, m: u64, n: u64, nnz: u64, x: f64) -> f64 {
        let base = self.rates.rate(name, m, n, nnz);
        base * self.bandwidth_at(x) / self.bandwidth_at(1.0)
    }

    // --- Catalog ----------------------------------------------------------

    /// Intel Xeon Gold 6242 at 24 threads (both sockets' worth of workers in
    /// the overall-performance runs). Table 4 row 1.
    pub fn xeon_6242_24t() -> ProcessorProfile {
        ProcessorProfile {
            name: "6242-24T".into(),
            kind: ProcKind::Cpu { threads: 24 },
            rates: RateTable {
                netflix: 348_790_567.0,
                r1: 190_891_071.0,
                r2: 266_293_289.0,
                movielens: 261_609_815.0,
            },
            bandwidth_iw: 67.30e9,
            bandwidth_gain: 0.45e9, // Table 2: 67.30 → 67.75 GB/s
            price_usd: 2_000.0,
            max_streams: 1,
        }
    }

    /// Xeon Gold 6242 at 16 threads (CPU_0's max-performance config).
    pub fn xeon_6242_16t() -> ProcessorProfile {
        ProcessorProfile {
            name: "6242-16T".into(),
            kind: ProcKind::Cpu { threads: 16 },
            rates: RateTable {
                netflix: 272_502_189.0,
                r1: 191_469_061.0,
                r2: 212_851_540.0,
                movielens: 250_860_330.0,
            },
            ..Self::xeon_6242_24t()
        }
    }

    /// Xeon Gold 6242 limited to 10 threads ("6242l" in Table 2, "6242L" in
    /// Fig. 9) — the configuration the paper uses to increase heterogeneity.
    /// Rates are the 24T rates scaled by the Table 2 bandwidth ratio
    /// (39.32 / 67.30 — the kernel is memory-bound).
    pub fn xeon_6242_10t() -> ProcessorProfile {
        let ratio = 39.319_05 / 67.300_1;
        ProcessorProfile {
            name: "6242L-10T".into(),
            kind: ProcKind::Cpu { threads: 10 },
            rates: Self::xeon_6242_24t().rates.scaled(ratio),
            bandwidth_iw: 39.319_05e9,
            bandwidth_gain: 0.28e9, // Table 2: 39.32 → 39.60 GB/s
            price_usd: 2_000.0,
            max_streams: 1,
        }
    }

    /// NVIDIA RTX 2080 (41,216 resident threads in the paper's config).
    pub fn rtx_2080() -> ProcessorProfile {
        ProcessorProfile {
            name: "RTX 2080".into(),
            kind: ProcKind::Gpu { hw_threads: 41_216 },
            rates: RateTable {
                netflix: 918_333_483.0,
                r1: 801_190_194.0,
                r2: 339_096_219.0,
                movielens: 835_890_149.0,
            },
            bandwidth_iw: 378.616e9,
            bandwidth_gain: 15.8e9, // Table 2: 378.6 → 388.8 at the DP0 share
            price_usd: 700.0,
            max_streams: 4,
        }
    }

    /// NVIDIA RTX 2080 Super (43,008 resident threads).
    pub fn rtx_2080_super() -> ProcessorProfile {
        ProcessorProfile {
            name: "RTX 2080S".into(),
            kind: ProcKind::Gpu { hw_threads: 43_008 },
            rates: RateTable {
                netflix: 1_052_866_849.0,
                r1: 939_313_586.0,
                r2: 354_261_903.0,
                movielens: 905_200_490.0,
            },
            bandwidth_iw: 407.095e9,
            bandwidth_gain: 8.3e9, // Table 2: 407.1 → 412.0
            price_usd: 730.0,
            max_streams: 4,
        }
    }

    /// NVIDIA Tesla V100 — only appears in Fig. 3 as the expensive
    /// single-GPU alternative. Rates extrapolated at 1.11× the RTX 2080
    /// (matching Fig. 3(a)'s bar, where the V100 lands near the 6242+2080
    /// collaboration).
    pub fn tesla_v100() -> ProcessorProfile {
        ProcessorProfile {
            name: "Tesla V100".into(),
            kind: ProcKind::Gpu { hw_threads: 81_920 },
            rates: RateTable {
                netflix: 1_020_000_000.0,
                r1: 890_000_000.0,
                r2: 377_000_000.0,
                movielens: 929_000_000.0,
            },
            bandwidth_iw: 900.0e9,
            bandwidth_gain: 10.0e9,
            price_usd: 8_500.0,
            max_streams: 6,
        }
    }

    /// A custom uniform-rate processor (for tests and examples).
    pub fn custom_cpu(name: &str, threads: u32, rate: f64, bandwidth: f64) -> ProcessorProfile {
        ProcessorProfile {
            name: name.into(),
            kind: ProcKind::Cpu { threads },
            rates: RateTable::uniform(rate),
            bandwidth_iw: bandwidth,
            bandwidth_gain: 0.0,
            price_usd: 0.0,
            max_streams: 1,
        }
    }

    /// A custom uniform-rate GPU.
    pub fn custom_gpu(name: &str, rate: f64, bandwidth: f64, gain: f64) -> ProcessorProfile {
        ProcessorProfile {
            name: name.into(),
            kind: ProcKind::Gpu { hw_threads: 40_000 },
            rates: RateTable::uniform(rate),
            bandwidth_iw: bandwidth,
            bandwidth_gain: gain,
            price_usd: 0.0,
            max_streams: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rates_encoded() {
        assert_eq!(
            ProcessorProfile::xeon_6242_24t().rates.netflix,
            348_790_567.0
        );
        assert_eq!(ProcessorProfile::rtx_2080_super().rates.r2, 354_261_903.0);
        assert_eq!(ProcessorProfile::rtx_2080().rates.movielens, 835_890_149.0);
    }

    #[test]
    fn bandwidth_rises_for_small_gpu_shards() {
        let gpu = ProcessorProfile::rtx_2080();
        assert!(gpu.bandwidth_at(0.3) > gpu.bandwidth_at(1.0));
        // Table 2 check: at the Netflix DP0 share (~0.354) the modeled
        // bandwidth lands near 388.8 GB/s.
        let dp0 = gpu.bandwidth_at(0.354);
        assert!((dp0 / 1e9 - 388.8).abs() < 2.0, "dp0 bw {}", dp0 / 1e9);
    }

    #[test]
    fn cpu_bandwidth_nearly_flat() {
        let cpu = ProcessorProfile::xeon_6242_24t();
        let rel = (cpu.bandwidth_at(0.2) - cpu.bandwidth_at(1.0)) / cpu.bandwidth_at(1.0);
        assert!(rel < 0.01, "rel {rel}");
    }

    #[test]
    fn rate_at_tracks_bandwidth() {
        let gpu = ProcessorProfile::rtx_2080();
        let full = gpu.rate_at("Netflix", 480_190, 17_771, 99_072_112, 1.0);
        let part = gpu.rate_at("Netflix", 480_190, 17_771, 99_072_112, 0.3);
        assert_eq!(full, gpu.rates.netflix);
        assert!(part > full);
        assert!(part / full < 1.05);
    }

    #[test]
    fn rate_lookup_by_name_and_shape() {
        let t = ProcessorProfile::rtx_2080().rates;
        assert_eq!(t.rate("Yahoo! Music R2", 0, 0, 0), t.r2);
        assert_eq!(t.rate("R1*", 0, 0, 0), t.r1);
        // Unknown huge-dimension dataset → R1 class.
        assert_eq!(t.rate("custom", 3_000_000, 500_000, 50_000_000), t.r1);
        // Unknown near-square small dataset → MovieLens class.
        assert_eq!(t.rate("custom", 140_000, 130_000, 20_000_000), t.movielens);
        // Unknown tall dataset → Netflix class.
        assert_eq!(t.rate("custom", 500_000, 20_000, 100_000_000), t.netflix);
    }

    #[test]
    fn nic_profile_models_loss_and_retransmits() {
        let clean = NicProfile::lossless(1.25e9);
        assert_eq!(clean.effective_bandwidth(), 1.25e9);
        assert_eq!(clean.transfer_time(1.25e9), 1.0);

        let lossy = NicProfile::ten_gbe(0.2);
        // 20% loss: goodput drops to 80%, so the same payload takes
        // 1/0.8 = 1.25× the serialization time plus retransmit latency.
        assert!((lossy.effective_bandwidth() - 1.0e9).abs() < 1.0);
        assert!(lossy.transfer_time(1.25e9) > clean.transfer_time(1.25e9));
        let serialization = 1.25e9 / lossy.effective_bandwidth();
        let expected = serialization + 500e-6 * 0.2 / 0.8;
        assert!((lossy.transfer_time(1.25e9) - expected).abs() < 1e-9);

        // As a bus, the DES engine sees the loss-adjusted bandwidth.
        assert_eq!(lossy.as_bus().bandwidth(), lossy.effective_bandwidth());
    }

    #[test]
    fn bus_bandwidths() {
        assert_eq!(BusKind::PciE3x16.bandwidth(), 16.0e9);
        assert_eq!(BusKind::Upi.bandwidth(), 20.8e9);
        assert_eq!(BusKind::Custom(5.0).bandwidth(), 5.0);
        assert!(BusKind::ServerLocal.bandwidth() > BusKind::Upi.bandwidth());
    }

    #[test]
    fn the_2080s_collab_is_cheaper_than_v100() {
        // Fig. 3(b)'s point: 6242 + 2080S costs < 1/3 of a V100.
        let combo = ProcessorProfile::xeon_6242_16t().price_usd
            + ProcessorProfile::rtx_2080_super().price_usd;
        assert!(combo < ProcessorProfile::tesla_v100().price_usd / 3.0);
    }

    #[test]
    fn gpu_kind_flags() {
        assert!(ProcessorProfile::rtx_2080().kind.is_gpu());
        assert!(!ProcessorProfile::xeon_6242_16t().kind.is_gpu());
    }
}
