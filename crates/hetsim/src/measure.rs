//! Virtual profiling: the measurement hooks the partition planner needs,
//! implemented against the simulator.
//!
//! The real engine measures with wall clocks; here the same quantities come
//! from the calibrated profiles, so DP0/DP1/DP2 planning runs identically on
//! hardware we don't have.

use crate::engine::{SimConfig, Workload};
use crate::platform::Platform;
use hcc_partition::{CostModel, WorkerClass};

/// Per-worker standalone full-data execution time (`T_i_e`, the DP0 input):
/// each worker processes the *entire* dataset independently with no
/// communication and no server activity. The time-sharing penalty of the
/// server's worker deliberately does NOT appear here — during independent
/// profiling the server has nothing to synchronize — which is exactly why
/// DP0 misjudges that worker during real training and Algorithm 1 (DP1)
/// exists to compensate (the paper's Fig. 8 narrative).
pub fn standalone_times(platform: &Platform, workload: &Workload) -> Vec<f64> {
    platform
        .workers
        .iter()
        .map(|slot| {
            let rate =
                slot.profile
                    .rate_at(&workload.name, workload.m, workload.n, workload.nnz, 1.0);
            workload.nnz as f64 / rate
        })
        .collect()
}

/// The `measure` callback for DP1's Algorithm-1 loop: per-worker *compute*
/// times for a candidate partition, in virtual time — the simulator's
/// analog of line 12's `sgd_update` run.
pub fn virtual_measure<'a>(
    platform: &'a Platform,
    workload: &'a Workload,
) -> impl FnMut(&[f64]) -> Vec<f64> + 'a {
    move |x: &[f64]| {
        assert_eq!(x.len(), platform.workers.len(), "partition length mismatch");
        platform
            .workers
            .iter()
            .zip(x)
            .map(|(slot, &xi)| {
                let rate =
                    slot.profile
                        .rate_at(&workload.name, workload.m, workload.n, workload.nnz, xi)
                        * if slot.timeshare_server {
                            platform.timeshare_efficiency
                        } else {
                            1.0
                        };
                if xi > 0.0 {
                    xi * workload.nnz as f64 / rate
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Like [`virtual_measure`], but returns each worker's compute time **plus
/// its exposed communication time** (pull + push divided by the worker's
/// effective stream count). With one stream and near-equal buses this
/// reduces to compute balancing — the paper's equal-`b` assumption in
/// Theorem 1 — but under Strategy 3 the GPUs hide most of their transfers
/// while plain CPUs cannot, and partition planning must see that asymmetry
/// or the CPU becomes the straggler.
pub fn virtual_measure_total<'a>(
    platform: &'a Platform,
    workload: &'a Workload,
    config: &'a SimConfig,
) -> impl FnMut(&[f64]) -> Vec<f64> + 'a {
    let mut compute = virtual_measure(platform, workload);
    move |x: &[f64]| {
        let times = compute(x);
        platform
            .workers
            .iter()
            .zip(x)
            .zip(times)
            .enumerate()
            .map(|(w, ((slot, &xi), t))| {
                let streams = config.streams.min(slot.profile.max_streams).max(1) as f64;
                let bus = platform.effective_bus_bandwidth(w) * config.transport_efficiency;
                let m_assigned = (xi * workload.m as f64).round() as u64;
                let pull =
                    config.strategy.pull_bytes(workload.m, workload.n, config.k) as f64 / bus;
                let push =
                    config.strategy.push_bytes(m_assigned, workload.n, config.k) as f64 / bus;
                // With S streams, roughly one chunk's transfer each side
                // stays exposed at the pipeline's ends.
                t + (pull + push) / streams
            })
            .collect()
    }
}

/// CPU/GPU class of each worker (Algorithm 1 balances the two groups).
pub fn worker_classes(platform: &Platform) -> Vec<WorkerClass> {
    platform
        .workers
        .iter()
        .map(|slot| {
            if slot.profile.kind.is_gpu() {
                WorkerClass::Gpu
            } else {
                WorkerClass::Cpu
            }
        })
        .collect()
}

/// Builds the closed-form [`CostModel`] (Eqs. 1–5) for a platform/workload/
/// config triple. Worker "bandwidth" is the *effective* `B_i` implied by
/// the calibrated rate — `rate × (16k+4)` bytes/s — which is how the model
/// and the calibration stay consistent.
pub fn cost_model_for(platform: &Platform, workload: &Workload, config: &SimConfig) -> CostModel {
    let bytes_per_update = 16.0 * config.k as f64 + 4.0;
    let worker_bandwidth = platform
        .workers
        .iter()
        .map(|slot| {
            let rate =
                slot.profile
                    .rate_at(&workload.name, workload.m, workload.n, workload.nnz, 1.0)
                    * if slot.timeshare_server {
                        platform.timeshare_efficiency
                    } else {
                        1.0
                    };
            rate * bytes_per_update
        })
        .collect();
    let bus_bandwidth = (0..platform.workers.len())
        .map(|w| platform.effective_bus_bandwidth(w) * config.transport_efficiency)
        .collect();
    // Sync merges the decompressed payload of an average worker's push.
    // Under Strategy 3 pushes arrive in `streams` chunks, so the unit of
    // synchronization (and the tail Eq. 5 cares about) shrinks accordingly.
    let m_avg = workload.m / platform.workers.len().max(1) as u64;
    let effective_streams = platform
        .workers
        .iter()
        .map(|slot| config.streams.min(slot.profile.max_streams).max(1))
        .max()
        .unwrap_or(1) as u64;
    // A sharded server merges each push's slices on N concurrent shard
    // queues, so the serialized unit the model (and DP2's stagger) sees is
    // the per-shard slice.
    let sync_bytes = config.strategy.push_elements(m_avg, workload.n, config.k) * 4
        / effective_streams
        / config.server_shards.max(1) as u64;

    CostModel {
        nnz: workload.nnz,
        m: workload.m,
        n: workload.n,
        k: config.k,
        worker_bandwidth,
        bus_bandwidth,
        server_bandwidth: platform.server_bandwidth,
        transfer_bytes: config.strategy.pull_bytes(workload.m, workload.n, config.k),
        sync_bytes,
    }
}

/// Table 2 reproduction: per-worker runtime memory bandwidth when running
/// independently ("IW", full data) vs. under a DP0 partition. Returns
/// `(name, iw_gbps, dp0_gbps)` rows.
pub fn bandwidth_table(platform: &Platform, dp0_fractions: &[f64]) -> Vec<(String, f64, f64)> {
    assert_eq!(
        dp0_fractions.len(),
        platform.workers.len(),
        "partition length mismatch"
    );
    platform
        .workers
        .iter()
        .zip(dp0_fractions)
        .map(|(slot, &x)| {
            (
                slot.profile.name.clone(),
                slot.profile.bandwidth_at(1.0) / 1e9,
                slot.profile.bandwidth_at(x) / 1e9,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcc_partition::{dp0, dp1, Dp1Options, PartitionPlanner, StrategyChoice};
    use hcc_sparse::DatasetProfile;

    fn netflix() -> Workload {
        Workload::from_profile(&DatasetProfile::netflix())
    }

    fn r1() -> Workload {
        Workload::from_profile(&DatasetProfile::yahoo_r1())
    }

    #[test]
    fn standalone_times_invert_rates() {
        let p = Platform::paper_testbed_3workers();
        let times = standalone_times(&p, &netflix());
        // 2080S is the fastest on Netflix → smallest time.
        assert!(times[2] < times[1] && times[1] < times[0], "{times:?}");
        let expect = netflix().nnz as f64 / 1_052_866_849.0;
        assert!((times[2] - expect).abs() < 1e-9);
    }

    #[test]
    fn dp0_from_virtual_standalone_matches_rate_shares() {
        let p = Platform::paper_testbed_3workers();
        let wl = netflix();
        let x = dp0(&standalone_times(&p, &wl));
        let rates = [348_790_567.0, 918_333_483.0, 1_052_866_849.0];
        let total: f64 = rates.iter().sum();
        for i in 0..3 {
            assert!((x[i] - rates[i] / total).abs() < 1e-9, "{x:?}");
        }
    }

    #[test]
    fn dp1_on_simulator_balances_cpu_gpu_groups() {
        let p = Platform::paper_testbed_4workers();
        let wl = netflix();
        let x0 = dp0(&standalone_times(&p, &wl));
        let classes = worker_classes(&p);
        let x1 = dp1(
            &x0,
            &classes,
            Dp1Options::default(),
            virtual_measure(&p, &wl),
        );
        let mut measure = virtual_measure(&p, &wl);
        let t1 = measure(&x1);
        let cpu_mean = (t1[0] + t1[1]) / 2.0;
        let gpu_mean = (t1[2] + t1[3]) / 2.0;
        let gap = (cpu_mean - gpu_mean).abs() / cpu_mean.min(gpu_mean);
        assert!(gap <= 0.1 + 1e-9, "gap {gap}");
        assert!((x1.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn planner_picks_dp1_for_netflix_and_dp2_for_r1() {
        // This is the paper's §4.3 observation reproduced end-to-end on the
        // virtual platform.
        let p = Platform::paper_testbed_4workers();
        let cfg = SimConfig::default();

        let wl = netflix();
        let model = cost_model_for(&p, &wl, &cfg);
        let plan = PartitionPlanner::default().plan(
            &model,
            &standalone_times(&p, &wl),
            &worker_classes(&p),
            virtual_measure(&p, &wl),
        );
        assert_eq!(
            plan.strategy,
            StrategyChoice::Dp1,
            "netflix ratio {}",
            plan.sync_ratio
        );

        let wl = r1();
        let model = cost_model_for(&p, &wl, &cfg);
        let plan = PartitionPlanner::default().plan(
            &model,
            &standalone_times(&p, &wl),
            &worker_classes(&p),
            virtual_measure(&p, &wl),
        );
        assert_eq!(
            plan.strategy,
            StrategyChoice::Dp2,
            "r1 ratio {}",
            plan.sync_ratio
        );
    }

    #[test]
    fn classes_match_profiles() {
        let p = Platform::paper_testbed_4workers();
        assert_eq!(
            worker_classes(&p),
            vec![
                WorkerClass::Cpu,
                WorkerClass::Cpu,
                WorkerClass::Gpu,
                WorkerClass::Gpu
            ]
        );
    }

    #[test]
    fn bandwidth_table_matches_table2_shape() {
        let p = Platform::paper_testbed_4workers();
        let wl = netflix();
        let x = dp0(&standalone_times(&p, &wl));
        let rows = bandwidth_table(&p, &x);
        assert_eq!(rows.len(), 4);
        for (name, iw, dp0_bw) in &rows {
            assert!(dp0_bw >= iw, "{name}: DP0 bandwidth should not drop");
        }
        // GPUs gain visibly, CPUs barely.
        let gpu_gain = rows[3].2 - rows[3].1;
        let cpu_gain = rows[1].2 - rows[1].1;
        assert!(gpu_gain > cpu_gain);
    }

    #[test]
    fn cost_model_consistent_with_simulator_compute() {
        let p = Platform::paper_testbed_3workers();
        let wl = netflix();
        let cfg = SimConfig::default();
        let model = cost_model_for(&p, &wl, &cfg);
        // At x = 1 the model compute time equals nnz/rate (by construction).
        let t_model = model.compute_time(1, 1.0);
        let t_direct = wl.nnz as f64 / 918_333_483.0;
        assert!((t_model - t_direct).abs() / t_direct < 1e-12);
    }
}
