//! Event-calendar cross-validation of the epoch engine.
//!
//! [`engine::simulate_epoch`](crate::engine::simulate_epoch) schedules each
//! worker's chunks greedily per worker and models shared buses as static
//! fair-share. This module re-simulates the same epoch with a strict
//! discrete-event calendar — resources (per-direction bus channels, the
//! server) are acquired in global time order from a priority queue — and is
//! used by tests to bound the approximation error of the fast engine.
//!
//! For dedicated buses and FIFO sync the two schedulers should agree almost
//! exactly; under contention the event calendar is the reference.

use crate::engine::{EpochTrace, Phase, PhaseSpan, SimConfig, WorkerTotals, Workload};
use crate::fault::{SimFault, SimFaultKind};
use crate::platform::Platform;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A pending chunk in the event calendar.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Task {
    worker: usize,
    chunk: usize,
    phase: Phase,
    /// Earliest time this task may start (its predecessor's completion).
    ready: f64,
    duration: f64,
    sync_bytes: f64,
}

/// Float-keyed min-heap entry (ready time, then insertion order for
/// determinism).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64, usize);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap()
            .then(self.1.cmp(&other.1))
    }
}

/// Simulates one epoch with a strict event calendar. Produces the same
/// [`EpochTrace`] shape as the fast engine.
///
/// Resource model: per worker one compute unit; per *bus group* (or
/// dedicated link) one channel per direction at the **full** link bandwidth
/// — contention emerges from queueing rather than the fast engine's static
/// fair-share split. The server merges pushes FIFO.
///
/// # Panics
/// Same contract as the fast engine.
pub fn simulate_epoch_des(
    platform: &Platform,
    workload: &Workload,
    config: &SimConfig,
    x: &[f64],
) -> EpochTrace {
    simulate_epoch_des_impl(platform, workload, config, x, &[])
}

/// Fault-aware variant of [`simulate_epoch_des`]: same event calendar, but
/// each [`SimFault`] perturbs its worker's pipeline — `Crash` kills the
/// worker after its first pull completes (no compute, no push, no sync
/// arrival), `Stall` delays the worker's first compute by a fixed virtual
/// time, and `DropPush` lets pushes occupy the bus but never reach the
/// server merge queue. With an empty fault list the trace is bit-identical
/// to the fault-free scheduler.
pub(crate) fn simulate_epoch_des_impl(
    platform: &Platform,
    workload: &Workload,
    config: &SimConfig,
    x: &[f64],
    faults: &[SimFault],
) -> EpochTrace {
    assert!(!platform.workers.is_empty(), "platform has no workers");
    assert_eq!(x.len(), platform.workers.len(), "partition length mismatch");
    assert!(config.streams >= 1, "stream count must be >= 1");

    let workers = platform.workers.len();
    // Resource availability clocks.
    let mut compute_free = vec![0.0f64; workers];
    // Bus channels keyed by group (dedicated links get unique negative keys).
    let group_key = |w: usize| -> i64 {
        match platform.workers[w].bus_group {
            Some(g) => g as i64,
            None => -(w as i64) - 1,
        }
    };
    let mut pull_free: std::collections::HashMap<i64, f64> = Default::default();
    let mut push_free: std::collections::HashMap<i64, f64> = Default::default();

    // Precompute per-worker chunk durations (full link bandwidth).
    let mut calendar: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    let mut tasks: Vec<Task> = Vec::new();
    let mut totals = vec![WorkerTotals::default(); workers];
    for (w, slot) in platform.workers.iter().enumerate() {
        let rate_raw =
            slot.profile
                .rate_at(&workload.name, workload.m, workload.n, workload.nnz, x[w]);
        let rate = if slot.timeshare_server {
            rate_raw * platform.timeshare_efficiency
        } else {
            rate_raw
        };
        let compute_total = if x[w] > 0.0 {
            x[w] * workload.nnz as f64 / rate
        } else {
            0.0
        };
        let m_assigned = (x[w] * workload.m as f64).round() as u64;
        let bus = slot.bus.bandwidth() * config.transport_efficiency;
        let pull_total = config.strategy.pull_bytes(workload.m, workload.n, config.k) as f64 / bus;
        let push_total = config.strategy.push_bytes(m_assigned, workload.n, config.k) as f64 / bus;
        let sync_bytes = (config
            .strategy
            .push_elements(m_assigned, workload.n, config.k)
            * 4) as f64;
        let streams = config.streams.min(slot.profile.max_streams).max(1);
        let s64 = streams as f64;
        totals[w] = WorkerTotals {
            pull: pull_total,
            compute: compute_total,
            push: push_total,
        };
        for chunk in 0..streams {
            let id = tasks.len();
            tasks.push(Task {
                worker: w,
                chunk,
                phase: Phase::Pull,
                ready: 0.0,
                duration: pull_total / s64,
                sync_bytes: sync_bytes / s64,
            });
            if chunk == 0 {
                calendar.push(Reverse((Key(0.0, id), id)));
            }
        }
    }

    let mut spans: Vec<PhaseSpan> = Vec::new();
    let mut arrivals: Vec<(f64, usize, f64)> = Vec::new();
    // Track each worker's previous chunk completion per phase to release the
    // next chunk's pull.
    let streams_of = |w: usize| {
        config
            .streams
            .min(platform.workers[w].profile.max_streams)
            .max(1)
    };

    while let Some(Reverse((Key(ready, _), id))) = calendar.pop() {
        let task = tasks[id];
        let w = task.worker;
        let (start, clock_after) = match task.phase {
            Phase::Pull => {
                let free = pull_free.entry(group_key(w)).or_insert(0.0);
                let start = ready.max(*free);
                *free = start + task.duration;
                (start, *free)
            }
            Phase::Compute => {
                let start = ready.max(compute_free[w]);
                compute_free[w] = start + task.duration;
                (start, compute_free[w])
            }
            Phase::Push => {
                let free = push_free.entry(group_key(w)).or_insert(0.0);
                let start = ready.max(*free);
                *free = start + task.duration;
                (start, *free)
            }
            Phase::Sync => unreachable!("sync handled after the loop"),
        };
        let end = clock_after;
        spans.push(PhaseSpan {
            worker: w,
            phase: task.phase,
            start,
            end,
        });

        let fault = faults.iter().find(|f| f.worker == w).map(|f| f.kind);

        // Schedule the successor.
        match task.phase {
            Phase::Pull => {
                if matches!(fault, Some(SimFaultKind::Crash)) {
                    // The worker dies right after its first pull: no compute
                    // is scheduled, and the chained releases stop here so
                    // later chunks never enter the calendar.
                    continue;
                }
                let slot = &platform.workers[w];
                let rate_raw = slot.profile.rate_at(
                    &workload.name,
                    workload.m,
                    workload.n,
                    workload.nnz,
                    x[w],
                );
                let rate = if slot.timeshare_server {
                    rate_raw * platform.timeshare_efficiency
                } else {
                    rate_raw
                };
                let compute_total = if x[w] > 0.0 {
                    x[w] * workload.nnz as f64 / rate
                } else {
                    0.0
                };
                let stall = match fault {
                    Some(SimFaultKind::Stall(d)) if task.chunk == 0 => d,
                    _ => 0.0,
                };
                let id2 = tasks.len();
                tasks.push(Task {
                    phase: Phase::Compute,
                    ready: end + stall,
                    duration: compute_total / streams_of(w) as f64,
                    ..task
                });
                calendar.push(Reverse((Key(end + stall, id2), id2)));
                // Release the next chunk's pull, if any.
                if task.chunk + 1 < streams_of(w) {
                    // The pull task was pre-created at construction; find it
                    // by convention: pulls were pushed consecutively.
                    let next_pull = tasks
                        .iter()
                        .position(|t| {
                            t.worker == w && t.chunk == task.chunk + 1 && t.phase == Phase::Pull
                        })
                        .expect("pre-created pull");
                    calendar.push(Reverse((Key(end, next_pull), next_pull)));
                }
            }
            Phase::Compute => {
                let push_dur = totals[w].push / streams_of(w) as f64;
                let id2 = tasks.len();
                tasks.push(Task {
                    phase: Phase::Push,
                    ready: end,
                    duration: push_dur,
                    ..task
                });
                calendar.push(Reverse((Key(end, id2), id2)));
            }
            Phase::Push => {
                if !matches!(fault, Some(SimFaultKind::DropPush)) {
                    arrivals.push((end, w, task.sync_bytes));
                }
            }
            Phase::Sync => unreachable!(),
        }
    }

    // Same shard-parallel merge model as the strict engine: with one shard
    // this is the single serialized FIFO, with N shards each push drains
    // through N concurrent queues in equal slices.
    arrivals.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
    let shards = config.server_shards.max(1);
    let mut shard_free = vec![0.0f64; shards];
    let mut sync_total = 0.0;
    for (arrival, w, bytes) in arrivals {
        let dur = 3.0 * (bytes / shards as f64) / platform.server_bandwidth;
        let mut start_min = f64::INFINITY;
        let mut end_max = 0.0f64;
        for free in shard_free.iter_mut() {
            let start = arrival.max(*free);
            *free = start + dur;
            sync_total += dur;
            start_min = start_min.min(start);
            end_max = end_max.max(*free);
        }
        spans.push(PhaseSpan {
            worker: w,
            phase: Phase::Sync,
            start: start_min,
            end: end_max,
        });
    }

    let epoch_time = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    EpochTrace {
        spans,
        totals,
        sync_total,
        epoch_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_epoch;
    use crate::platform::Platform;
    use crate::profile::{BusKind, ProcessorProfile};
    use hcc_sparse::DatasetProfile;

    fn netflix() -> Workload {
        Workload::from_profile(&DatasetProfile::netflix())
    }

    #[test]
    fn agrees_with_fast_engine_on_dedicated_buses() {
        for streams in [1usize, 4] {
            let platform = Platform::paper_testbed_4workers();
            let cfg = SimConfig {
                streams,
                ..Default::default()
            };
            let x = [0.1, 0.2, 0.3, 0.4];
            let fast = simulate_epoch(&platform, &netflix(), &cfg, &x);
            let des = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
            let rel = (fast.epoch_time - des.epoch_time).abs() / des.epoch_time;
            assert!(
                rel < 0.02,
                "streams {streams}: fast {} vs des {} ({:.1}%)",
                fast.epoch_time,
                des.epoch_time,
                rel * 100.0
            );
            // Totals are identical by construction.
            for w in 0..4 {
                assert!((fast.totals[w].compute - des.totals[w].compute).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn fair_share_approximation_bounded_under_contention() {
        // Two GPUs behind one switch: fair-share halves bandwidth statically;
        // the event calendar interleaves at full bandwidth. Fair-share must
        // be pessimistic-or-equal, within 2x on communication-heavy R1.
        let shared = Platform::new("switch")
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080(), BusKind::PciE3x16, 0)
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16, 0);
        let wl = Workload::from_profile(&DatasetProfile::yahoo_r1());
        let cfg = SimConfig::default();
        let x = [0.45, 0.55];
        let fast = simulate_epoch(&shared, &wl, &cfg, &x).epoch_time;
        let des = simulate_epoch_des(&shared, &wl, &cfg, &x).epoch_time;
        assert!(fast >= des * 0.99, "fair-share optimistic: {fast} < {des}");
        assert!(
            fast <= des * 2.0,
            "fair-share too pessimistic: {fast} vs {des}"
        );
    }

    #[test]
    fn des_is_deterministic() {
        let platform = Platform::paper_testbed_3workers();
        let cfg = SimConfig {
            streams: 4,
            ..Default::default()
        };
        let x = [0.2, 0.4, 0.4];
        let a = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        let b = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn des_phases_respect_dependencies() {
        let platform = Platform::paper_testbed_3workers();
        let cfg = SimConfig {
            streams: 4,
            ..Default::default()
        };
        let trace = simulate_epoch_des(&platform, &netflix(), &cfg, &[0.3, 0.3, 0.4]);
        // Within a worker, chunk pipelines never compute before pulling.
        for w in 0..3 {
            let spans = trace.worker_spans(w);
            let first_compute = spans
                .iter()
                .filter(|s| s.phase == Phase::Compute)
                .map(|s| s.start)
                .fold(f64::INFINITY, f64::min);
            let first_pull_end = spans
                .iter()
                .filter(|s| s.phase == Phase::Pull)
                .map(|s| s.end)
                .fold(f64::INFINITY, f64::min);
            assert!(first_compute >= first_pull_end - 1e-12);
        }
    }
}
