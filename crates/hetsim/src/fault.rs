//! Fault events for the discrete-event simulator.
//!
//! The threaded engine's fault-injection harness
//! (`hcc_mf::FaultPlan`) exercises real threads, real transports, and real
//! factor matrices. This module is its virtual-time twin: the same fault
//! vocabulary expressed as perturbations of the DES calendar, so partition
//! planning and supervisor policies can be studied against crashes and
//! stragglers on platforms the host machine cannot physically run.
//!
//! Faults are deterministic by construction — they name a worker and a
//! fixed perturbation; no randomness, no wall clock. The same
//! `(platform, workload, config, x, faults)` tuple always yields a
//! bit-identical [`crate::engine::EpochTrace`].

use crate::des::simulate_epoch_des_impl;
use crate::engine::{EpochTrace, SimConfig, Workload};
use crate::platform::Platform;

/// What goes wrong with a worker during the simulated epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFaultKind {
    /// The worker dies right after its first pull completes: it consumes
    /// pull bandwidth but contributes no compute, push, or sync work.
    Crash,
    /// The worker's first compute chunk is delayed by this many virtual
    /// seconds (an OS hiccup, page faults, a thermal throttle).
    Stall(f64),
    /// Pushes occupy the bus as usual but never reach the server's merge
    /// queue (a lossy transport).
    DropPush,
}

/// One fault bound to one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFault {
    /// Index into `platform.workers`.
    pub worker: usize,
    pub kind: SimFaultKind,
}

impl SimFault {
    pub fn crash(worker: usize) -> Self {
        SimFault {
            worker,
            kind: SimFaultKind::Crash,
        }
    }

    pub fn stall(worker: usize, secs: f64) -> Self {
        SimFault {
            worker,
            kind: SimFaultKind::Stall(secs),
        }
    }

    pub fn drop_push(worker: usize) -> Self {
        SimFault {
            worker,
            kind: SimFaultKind::DropPush,
        }
    }
}

/// Simulates one epoch under the given faults with the strict event
/// calendar. An empty fault list reproduces
/// [`simulate_epoch_des`](crate::des::simulate_epoch_des) bit-for-bit.
///
/// # Panics
/// Same contract as the fault-free scheduler, plus any `fault.worker` must
/// index into the platform.
pub fn simulate_epoch_des_faulty(
    platform: &Platform,
    workload: &Workload,
    config: &SimConfig,
    x: &[f64],
    faults: &[SimFault],
) -> EpochTrace {
    for f in faults {
        assert!(
            f.worker < platform.workers.len(),
            "fault names worker {} but platform has {}",
            f.worker,
            platform.workers.len()
        );
    }
    simulate_epoch_des_impl(platform, workload, config, x, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_epoch_des;
    use crate::engine::Phase;
    use hcc_sparse::DatasetProfile;

    fn netflix() -> Workload {
        Workload::from_profile(&DatasetProfile::netflix())
    }

    fn testbed() -> (Platform, SimConfig, Vec<f64>) {
        (
            Platform::paper_testbed_4workers(),
            SimConfig::default(),
            vec![0.25; 4],
        )
    }

    #[test]
    fn empty_faults_match_fault_free_trace() {
        let (platform, cfg, x) = testbed();
        let plain = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        let faulty = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[]);
        assert_eq!(plain, faulty);
    }

    #[test]
    fn crash_removes_compute_push_and_sync_for_that_worker() {
        let (platform, cfg, x) = testbed();
        let trace =
            simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[SimFault::crash(2)]);
        let spans = trace.worker_spans(2);
        assert!(spans.iter().any(|s| s.phase == Phase::Pull));
        assert!(spans
            .iter()
            .all(|s| !matches!(s.phase, Phase::Compute | Phase::Push | Phase::Sync)));
        // The survivors' sync work shrinks accordingly.
        let plain = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        assert!(trace.sync_total < plain.sync_total);
    }

    #[test]
    fn stall_delays_the_epoch() {
        let (platform, cfg, x) = testbed();
        let plain = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        let stalled = simulate_epoch_des_faulty(
            &platform,
            &netflix(),
            &cfg,
            &x,
            &[SimFault::stall(0, plain.epoch_time)],
        );
        // A stall as long as the whole fault-free epoch must push the
        // critical path out by roughly that much.
        assert!(stalled.epoch_time > plain.epoch_time * 1.5);
    }

    #[test]
    fn dropped_push_never_reaches_the_server() {
        let (platform, cfg, x) = testbed();
        let trace =
            simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[SimFault::drop_push(1)]);
        let spans = trace.worker_spans(1);
        assert!(spans.iter().any(|s| s.phase == Phase::Push)); // bus used
        assert!(spans.iter().all(|s| s.phase != Phase::Sync)); // merge skipped
    }

    #[test]
    fn faulty_trace_is_deterministic() {
        let (platform, cfg, x) = testbed();
        let faults = [SimFault::crash(3), SimFault::stall(1, 0.5)];
        let a = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &faults);
        let b = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &faults);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fault names worker")]
    fn out_of_range_worker_panics() {
        let (platform, cfg, x) = testbed();
        simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[SimFault::crash(9)]);
    }
}
