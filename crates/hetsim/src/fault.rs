//! Fault events for the discrete-event simulator.
//!
//! The threaded engine's fault-injection harness
//! (`hcc_mf::FaultPlan`) exercises real threads, real transports, and real
//! factor matrices. This module is its virtual-time twin: the same fault
//! vocabulary expressed as perturbations of the DES calendar, so partition
//! planning and supervisor policies can be studied against crashes and
//! stragglers on platforms the host machine cannot physically run.
//!
//! Faults are deterministic by construction — they name a worker and a
//! fixed perturbation; no randomness, no wall clock. The same
//! `(platform, workload, config, x, faults)` tuple always yields a
//! bit-identical [`crate::engine::EpochTrace`].

use crate::des::simulate_epoch_des_impl;
use crate::engine::{EpochTrace, SimConfig, Workload};
use crate::platform::Platform;
use hcc_comm::chaos::{chaos_roll, OP_CORRUPT, OP_DELAY, OP_DROP};
use hcc_comm::NetChaosPlan;

/// What goes wrong with a worker during the simulated epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimFaultKind {
    /// The worker dies right after its first pull completes: it consumes
    /// pull bandwidth but contributes no compute, push, or sync work.
    Crash,
    /// The worker's first compute chunk is delayed by this many virtual
    /// seconds (an OS hiccup, page faults, a thermal throttle).
    Stall(f64),
    /// Pushes occupy the bus as usual but never reach the server's merge
    /// queue (a lossy transport).
    DropPush,
}

/// One fault bound to one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimFault {
    /// Index into `platform.workers`.
    pub worker: usize,
    pub kind: SimFaultKind,
}

impl SimFault {
    pub fn crash(worker: usize) -> Self {
        SimFault {
            worker,
            kind: SimFaultKind::Crash,
        }
    }

    pub fn stall(worker: usize, secs: f64) -> Self {
        SimFault {
            worker,
            kind: SimFaultKind::Stall(secs),
        }
    }

    pub fn drop_push(worker: usize) -> Self {
        SimFault {
            worker,
            kind: SimFaultKind::DropPush,
        }
    }
}

/// Derives this epoch's simulator faults from a network chaos plan, using
/// the *same* `(seed, worker, epoch, op)` rolls as the live
/// [`hcc_comm::ChaosTransport`]. A dropped or corrupt push becomes
/// [`SimFaultKind::DropPush`] (the server's merge never sees it either
/// way), a delayed push becomes a [`SimFaultKind::Stall`] of the plan's
/// delay, and a partitioned worker drops its push from `from_epoch` on.
/// Duplicates are invisible here — the real transport dedups them, so
/// their only cost is wire bytes, which the DES bus model doesn't charge
/// for retransmits.
pub fn derive_net_faults(plan: &NetChaosPlan, workers: usize, epoch: u64) -> Vec<SimFault> {
    let mut faults = Vec::new();
    for w in 0..workers {
        if let Some(part) = plan.partition {
            if part.worker == w && epoch >= part.from_epoch {
                faults.push(SimFault::drop_push(w));
                continue;
            }
        }
        if chaos_roll(plan.seed, w, epoch, OP_DROP) < plan.drop_rate
            || chaos_roll(plan.seed, w, epoch, OP_CORRUPT) < plan.corrupt_rate
        {
            faults.push(SimFault::drop_push(w));
            continue;
        }
        if chaos_roll(plan.seed, w, epoch, OP_DELAY) < plan.delay_rate {
            faults.push(SimFault::stall(w, plan.delay.as_secs_f64()));
        }
    }
    faults
}

/// One fault on a single worker→shard link of a sharded parameter server.
///
/// With `N` server shards a worker holds `N` independent links; chaos
/// rolls per link, so one lossy shard degrades only its own row range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardLinkFault {
    /// Index into `platform.workers`.
    pub worker: usize,
    /// Server shard on the far end of the link.
    pub shard: usize,
    pub kind: SimFaultKind,
}

/// [`derive_net_faults`] generalized to a sharded server: rolls the chaos
/// dice once per `(worker, shard)` link, mixing the shard into the roll's
/// worker coordinate (`worker * shards + shard`) so each link draws an
/// independent deterministic stream. A plan partition severs *all* of the
/// worker's links (the node, not one link, is unreachable). With
/// `shards == 1` the rolls coincide with [`derive_net_faults`] exactly.
pub fn derive_shard_net_faults(
    plan: &NetChaosPlan,
    workers: usize,
    shards: usize,
    epoch: u64,
) -> Vec<ShardLinkFault> {
    let mut faults = Vec::new();
    for w in 0..workers {
        for s in 0..shards {
            if let Some(part) = plan.partition {
                if part.worker == w && epoch >= part.from_epoch {
                    faults.push(ShardLinkFault {
                        worker: w,
                        shard: s,
                        kind: SimFaultKind::DropPush,
                    });
                    continue;
                }
            }
            let link = w * shards + s;
            if chaos_roll(plan.seed, link, epoch, OP_DROP) < plan.drop_rate
                || chaos_roll(plan.seed, link, epoch, OP_CORRUPT) < plan.corrupt_rate
            {
                faults.push(ShardLinkFault {
                    worker: w,
                    shard: s,
                    kind: SimFaultKind::DropPush,
                });
                continue;
            }
            if chaos_roll(plan.seed, link, epoch, OP_DELAY) < plan.delay_rate {
                faults.push(ShardLinkFault {
                    worker: w,
                    shard: s,
                    kind: SimFaultKind::Stall(plan.delay.as_secs_f64()),
                });
            }
        }
    }
    faults
}

/// Collapses per-link faults to the DES calendar's worker-level
/// vocabulary: a worker with any dropped link loses its merge (the server
/// cannot assemble a partial row update), otherwise its stalls add up
/// (shard RPCs are sequential on the worker's connection).
pub fn collapse_shard_faults(link_faults: &[ShardLinkFault]) -> Vec<SimFault> {
    let workers: usize = link_faults.iter().map(|f| f.worker + 1).max().unwrap_or(0);
    let mut out = Vec::new();
    for w in 0..workers {
        let mine = link_faults.iter().filter(|f| f.worker == w);
        let mut stall = 0.0f64;
        let mut dropped = false;
        for f in mine {
            match f.kind {
                SimFaultKind::DropPush | SimFaultKind::Crash => dropped = true,
                SimFaultKind::Stall(s) => stall += s,
            }
        }
        if dropped {
            out.push(SimFault::drop_push(w));
        } else if stall > 0.0 {
            out.push(SimFault::stall(w, stall));
        }
    }
    out
}

/// Simulates one epoch under the given faults with the strict event
/// calendar. An empty fault list reproduces
/// [`simulate_epoch_des`](crate::des::simulate_epoch_des) bit-for-bit.
///
/// # Panics
/// Same contract as the fault-free scheduler, plus any `fault.worker` must
/// index into the platform.
pub fn simulate_epoch_des_faulty(
    platform: &Platform,
    workload: &Workload,
    config: &SimConfig,
    x: &[f64],
    faults: &[SimFault],
) -> EpochTrace {
    for f in faults {
        assert!(
            f.worker < platform.workers.len(),
            "fault names worker {} but platform has {}",
            f.worker,
            platform.workers.len()
        );
    }
    simulate_epoch_des_impl(platform, workload, config, x, faults)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_epoch_des;
    use crate::engine::Phase;
    use hcc_sparse::DatasetProfile;

    fn netflix() -> Workload {
        Workload::from_profile(&DatasetProfile::netflix())
    }

    fn testbed() -> (Platform, SimConfig, Vec<f64>) {
        (
            Platform::paper_testbed_4workers(),
            SimConfig::default(),
            vec![0.25; 4],
        )
    }

    #[test]
    fn empty_faults_match_fault_free_trace() {
        let (platform, cfg, x) = testbed();
        let plain = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        let faulty = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[]);
        assert_eq!(plain, faulty);
    }

    #[test]
    fn crash_removes_compute_push_and_sync_for_that_worker() {
        let (platform, cfg, x) = testbed();
        let trace =
            simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[SimFault::crash(2)]);
        let spans = trace.worker_spans(2);
        assert!(spans.iter().any(|s| s.phase == Phase::Pull));
        assert!(spans
            .iter()
            .all(|s| !matches!(s.phase, Phase::Compute | Phase::Push | Phase::Sync)));
        // The survivors' sync work shrinks accordingly.
        let plain = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        assert!(trace.sync_total < plain.sync_total);
    }

    #[test]
    fn stall_delays_the_epoch() {
        let (platform, cfg, x) = testbed();
        let plain = simulate_epoch_des(&platform, &netflix(), &cfg, &x);
        let stalled = simulate_epoch_des_faulty(
            &platform,
            &netflix(),
            &cfg,
            &x,
            &[SimFault::stall(0, plain.epoch_time)],
        );
        // A stall as long as the whole fault-free epoch must push the
        // critical path out by roughly that much.
        assert!(stalled.epoch_time > plain.epoch_time * 1.5);
    }

    #[test]
    fn dropped_push_never_reaches_the_server() {
        let (platform, cfg, x) = testbed();
        let trace =
            simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[SimFault::drop_push(1)]);
        let spans = trace.worker_spans(1);
        assert!(spans.iter().any(|s| s.phase == Phase::Push)); // bus used
        assert!(spans.iter().all(|s| s.phase != Phase::Sync)); // merge skipped
    }

    #[test]
    fn faulty_trace_is_deterministic() {
        let (platform, cfg, x) = testbed();
        let faults = [SimFault::crash(3), SimFault::stall(1, 0.5)];
        let a = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &faults);
        let b = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &faults);
        assert_eq!(a, b);
    }

    #[test]
    fn net_faults_derive_deterministically_from_a_chaos_plan() {
        let plan = NetChaosPlan::from_seed(42);
        let a = derive_net_faults(&plan, 4, 3);
        let b = derive_net_faults(&plan, 4, 3);
        assert_eq!(a, b, "same plan+epoch must derive identical faults");
        // A quiet plan derives nothing.
        assert!(derive_net_faults(&NetChaosPlan::quiet(42), 4, 3).is_empty());
        // Over many epochs, a 10%-drop/5%-corrupt plan must produce some
        // dropped pushes and some stalls, but nowhere near every epoch.
        let mut drops = 0usize;
        let mut stalls = 0usize;
        for epoch in 0..200 {
            for f in derive_net_faults(&plan, 4, epoch) {
                match f.kind {
                    SimFaultKind::DropPush => drops += 1,
                    SimFaultKind::Stall(s) => {
                        assert!((s - 0.005).abs() < 1e-12);
                        stalls += 1;
                    }
                    SimFaultKind::Crash => panic!("chaos never derives a crash"),
                }
            }
        }
        // 800 rolls at ~14.5% combined drop|corrupt and ~10% delay.
        assert!((60..=180).contains(&drops), "drops {drops}");
        assert!((40..=140).contains(&stalls), "stalls {stalls}");
    }

    #[test]
    fn partitioned_worker_drops_pushes_from_its_epoch() {
        let plan = NetChaosPlan::quiet(7).with_partition(2, 5);
        assert!(derive_net_faults(&plan, 4, 4).is_empty());
        for epoch in 5..8 {
            let faults = derive_net_faults(&plan, 4, epoch);
            assert_eq!(faults, vec![SimFault::drop_push(2)], "epoch {epoch}");
        }
    }

    #[test]
    fn derived_faults_feed_the_des_calendar() {
        let (platform, cfg, x) = testbed();
        let plan = NetChaosPlan::quiet(1).with_partition(1, 0);
        let faults = derive_net_faults(&plan, platform.workers.len(), 0);
        let trace = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &faults);
        // The partitioned worker pushes into the void: no sync span.
        assert!(trace.worker_spans(1).iter().all(|s| s.phase != Phase::Sync));
    }

    #[test]
    #[should_panic(expected = "fault names worker")]
    fn out_of_range_worker_panics() {
        let (platform, cfg, x) = testbed();
        simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &[SimFault::crash(9)]);
    }

    #[test]
    fn one_shard_reduces_to_the_unsharded_derivation() {
        let plan = NetChaosPlan::from_seed(42);
        for epoch in 0..50 {
            let flat = derive_net_faults(&plan, 4, epoch);
            let linked = derive_shard_net_faults(&plan, 4, 1, epoch);
            let collapsed: Vec<SimFault> = linked
                .iter()
                .map(|f| SimFault {
                    worker: f.worker,
                    kind: f.kind,
                })
                .collect();
            assert_eq!(flat, collapsed, "epoch {epoch}");
            assert!(linked.iter().all(|f| f.shard == 0));
        }
    }

    #[test]
    fn partition_severs_every_shard_link_of_its_worker() {
        let plan = NetChaosPlan::quiet(7).with_partition(2, 5);
        assert!(derive_shard_net_faults(&plan, 4, 4, 4).is_empty());
        let faults = derive_shard_net_faults(&plan, 4, 4, 6);
        assert_eq!(faults.len(), 4);
        for (s, f) in faults.iter().enumerate() {
            assert_eq!(f.worker, 2);
            assert_eq!(f.shard, s);
            assert_eq!(f.kind, SimFaultKind::DropPush);
        }
    }

    #[test]
    fn shard_links_roll_independent_chaos_streams() {
        let plan = NetChaosPlan::from_seed(42);
        // Over many epochs, sibling links of the same worker must disagree
        // sometimes: one drops while the other stays clean.
        let mut disagreements = 0usize;
        for epoch in 0..200 {
            let faults = derive_shard_net_faults(&plan, 2, 2, epoch);
            for w in 0..2 {
                let hit: Vec<bool> = (0..2)
                    .map(|s| faults.iter().any(|f| f.worker == w && f.shard == s))
                    .collect();
                if hit[0] != hit[1] {
                    disagreements += 1;
                }
            }
        }
        assert!(disagreements > 20, "only {disagreements} disagreements");
    }

    #[test]
    fn collapse_drops_dominate_and_stalls_add_up() {
        let links = [
            ShardLinkFault {
                worker: 0,
                shard: 0,
                kind: SimFaultKind::Stall(0.25),
            },
            ShardLinkFault {
                worker: 0,
                shard: 2,
                kind: SimFaultKind::Stall(0.5),
            },
            ShardLinkFault {
                worker: 1,
                shard: 1,
                kind: SimFaultKind::Stall(1.0),
            },
            ShardLinkFault {
                worker: 1,
                shard: 3,
                kind: SimFaultKind::DropPush,
            },
        ];
        let collapsed = collapse_shard_faults(&links);
        assert_eq!(
            collapsed,
            vec![SimFault::stall(0, 0.75), SimFault::drop_push(1)]
        );
        assert!(collapse_shard_faults(&[]).is_empty());
    }

    #[test]
    fn collapsed_shard_faults_feed_the_des_calendar() {
        let (platform, cfg, x) = testbed();
        let plan = NetChaosPlan::quiet(1).with_partition(1, 0);
        let links = derive_shard_net_faults(&plan, platform.workers.len(), 4, 0);
        let faults = collapse_shard_faults(&links);
        assert_eq!(faults, vec![SimFault::drop_push(1)]);
        let trace = simulate_epoch_des_faulty(&platform, &netflix(), &cfg, &x, &faults);
        assert!(trace.worker_spans(1).iter().all(|s| s.phase != Phase::Sync));
    }
}
