//! Trace export: turn [`EpochTrace`]s into CSV for external plotting.
//!
//! The Fig. 5 / Fig. 8 artifacts are timelines and stacked bars; this
//! module emits the raw spans and totals in a spreadsheet-friendly form so
//! the figures can be redrawn with any plotting tool.

use crate::engine::{EpochTrace, Phase};
use crate::platform::Platform;
use std::fmt::Write as _;

/// Phase label as written to CSV.
fn phase_label(phase: Phase) -> &'static str {
    match phase {
        Phase::Pull => "pull",
        Phase::Compute => "compute",
        Phase::Push => "push",
        Phase::Sync => "sync",
    }
}

/// Renders the span timeline as CSV:
/// `worker,worker_name,phase,start_s,end_s,duration_s`.
pub fn spans_to_csv(platform: &Platform, trace: &EpochTrace) -> String {
    let names = platform.worker_names();
    let mut out = String::from("worker,worker_name,phase,start_s,end_s,duration_s\n");
    for span in &trace.spans {
        let name = names.get(span.worker).copied().unwrap_or("?");
        let _ = writeln!(
            out,
            "{},{},{},{:.9},{:.9},{:.9}",
            span.worker,
            name,
            phase_label(span.phase),
            span.start,
            span.end,
            span.duration()
        );
    }
    out
}

/// Renders per-worker totals as CSV:
/// `worker,worker_name,pull_s,compute_s,push_s,total_s`.
pub fn totals_to_csv(platform: &Platform, trace: &EpochTrace) -> String {
    let names = platform.worker_names();
    let mut out = String::from("worker,worker_name,pull_s,compute_s,push_s,total_s\n");
    for (w, t) in trace.totals.iter().enumerate() {
        let name = names.get(w).copied().unwrap_or("?");
        let _ = writeln!(
            out,
            "{},{},{:.9},{:.9},{:.9},{:.9}",
            w,
            name,
            t.pull,
            t.compute,
            t.push,
            t.sum()
        );
    }
    out
}

/// Writes both CSVs next to each other: `<prefix>_spans.csv` and
/// `<prefix>_totals.csv`.
pub fn write_csvs(
    prefix: &str,
    platform: &Platform,
    trace: &EpochTrace,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let spans_path = std::path::PathBuf::from(format!("{prefix}_spans.csv"));
    let totals_path = std::path::PathBuf::from(format!("{prefix}_totals.csv"));
    std::fs::write(&spans_path, spans_to_csv(platform, trace))?;
    std::fs::write(&totals_path, totals_to_csv(platform, trace))?;
    Ok((spans_path, totals_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_epoch, SimConfig, Workload};
    use hcc_sparse::DatasetProfile;

    fn trace_and_platform() -> (Platform, EpochTrace) {
        let platform = Platform::paper_testbed_3workers();
        let wl = Workload::from_profile(&DatasetProfile::netflix());
        let trace = simulate_epoch(&platform, &wl, &SimConfig::default(), &[0.2, 0.4, 0.4]);
        (platform, trace)
    }

    #[test]
    fn spans_csv_has_header_and_all_rows() {
        let (platform, trace) = trace_and_platform();
        let csv = spans_to_csv(&platform, &trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "worker,worker_name,phase,start_s,end_s,duration_s"
        );
        assert_eq!(lines.len(), trace.spans.len() + 1);
        // 3 workers × (pull+compute+push) + 3 syncs = 12 spans.
        assert_eq!(trace.spans.len(), 12);
        assert!(csv.contains("RTX 2080S"));
        assert!(csv.contains(",sync,"));
    }

    #[test]
    fn totals_csv_is_parseable() {
        let (platform, trace) = trace_and_platform();
        let csv = totals_to_csv(&platform, &trace);
        for line in csv.lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            assert_eq!(cells.len(), 6);
            let pull: f64 = cells[2].parse().unwrap();
            let compute: f64 = cells[3].parse().unwrap();
            let push: f64 = cells[4].parse().unwrap();
            let total: f64 = cells[5].parse().unwrap();
            assert!((pull + compute + push - total).abs() < 1e-9);
        }
    }

    #[test]
    fn files_written_to_disk() {
        let (platform, trace) = trace_and_platform();
        let dir = std::env::temp_dir().join("hcc_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("trace").to_string_lossy().into_owned();
        let (spans, totals) = write_csvs(&prefix, &platform, &trace).unwrap();
        assert!(spans.exists());
        assert!(totals.exists());
        std::fs::remove_file(spans).ok();
        std::fs::remove_file(totals).ok();
    }
}
