//! The virtual-time epoch pipeline.
//!
//! One simulated epoch reproduces the paper's
//! `pull → compute → push → sync` sequence (Fig. 4 steps ⑤–⑦ + ④):
//!
//! * every worker pulls over its own bus (independent channels, Fig. 2),
//! * computes its shard at its calibrated rate,
//! * pushes back, and
//! * the server merges pushes FIFO at `3·bytes/B_server` (Eq. 3).
//!
//! Strategy 3 (asynchronous computing–transmission) is modeled by chunking
//! an epoch into `streams` pieces pipelined through separate pull/push DMA
//! channels — pulls of chunk `c+1` overlap computation of chunk `c`, and
//! the server syncs chunks as they arrive (Fig. 6).
//!
//! The output [`EpochTrace`] carries exact phase spans, from which the
//! Fig. 5 timelines, Fig. 8 stacked bars, Table 4/Fig. 9 computing power
//! and Table 5/6 communication costs are all derived.

use crate::platform::Platform;
use hcc_comm::TransferStrategy;
use hcc_sparse::DatasetProfile;
use serde::{Deserialize, Serialize};

/// The data shape a simulation runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Dataset name (drives the per-class rate lookup).
    pub name: String,
    /// Rows.
    pub m: u64,
    /// Columns.
    pub n: u64,
    /// Observed entries.
    pub nnz: u64,
}

impl Workload {
    /// Builds from a named dataset profile.
    pub fn from_profile(profile: &DatasetProfile) -> Workload {
        Workload {
            name: profile.name.to_string(),
            m: profile.m,
            n: profile.n,
            nnz: profile.nnz,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Latent dimension (paper: 128).
    pub k: u64,
    /// Communication strategy.
    pub strategy: TransferStrategy,
    /// Pipeline streams per worker (1 = synchronous; capped per worker by
    /// its profile's `max_streams`).
    pub streams: usize,
    /// Fraction of nominal bus bandwidth the transport achieves
    /// (COMM ≈ 1.0 by design §3.5; COMM-P ≈ 0.14, Table 5).
    pub transport_efficiency: f64,
    /// Parameter-server shards merging in parallel (1 = the paper's single
    /// centralized server). With N shards each push's merge splits into N
    /// equal slices handled by N concurrent FIFO queues — the node-sharded
    /// server, where every shard owns `1/N` of the synchronized rows.
    #[serde(default)]
    pub server_shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            k: 128,
            strategy: TransferStrategy::QOnly,
            streams: 1,
            transport_efficiency: 1.0,
            server_shards: 1,
        }
    }
}

/// Phase of a span in the epoch timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Server → worker transfer.
    Pull,
    /// Worker SGD computation.
    Compute,
    /// Worker → server transfer.
    Push,
    /// Server-side merge of one worker's push.
    Sync,
}

/// One contiguous activity in the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpan {
    /// Worker index (sync spans carry the worker whose push is merged).
    pub worker: usize,
    /// Phase kind.
    pub phase: Phase,
    /// Start time, seconds from epoch begin.
    pub start: f64,
    /// End time.
    pub end: f64,
}

impl PhaseSpan {
    /// Span duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-worker accumulated phase durations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerTotals {
    /// Total pull time.
    pub pull: f64,
    /// Total compute time.
    pub compute: f64,
    /// Total push time.
    pub push: f64,
}

impl WorkerTotals {
    /// Pull + compute + push.
    pub fn sum(&self) -> f64 {
        self.pull + self.compute + self.push
    }
}

/// The result of simulating one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochTrace {
    /// Every phase span, workers first (in chunk order), then syncs in
    /// service order.
    pub spans: Vec<PhaseSpan>,
    /// Per-worker totals.
    pub totals: Vec<WorkerTotals>,
    /// Total server sync busy time.
    pub sync_total: f64,
    /// Epoch makespan: all pushes transferred *and* merged.
    pub epoch_time: f64,
}

impl EpochTrace {
    /// Makespan excluding the trailing sync (the "max{T_i}" of Eq. 1).
    pub fn max_worker_time(&self) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.phase != Phase::Sync)
            .map(|s| s.end)
            .fold(0.0f64, f64::max)
    }

    /// Spans of one worker.
    pub fn worker_spans(&self, worker: usize) -> Vec<PhaseSpan> {
        self.spans
            .iter()
            .copied()
            .filter(|s| s.worker == worker)
            .collect()
    }
}

/// Simulates one epoch of HCC-MF on `platform` with data partition `x`.
///
/// # Panics
/// Panics if `x.len()` differs from the worker count, any fraction is
/// negative/non-finite, or the platform has no workers.
pub fn simulate_epoch(
    platform: &Platform,
    workload: &Workload,
    config: &SimConfig,
    x: &[f64],
) -> EpochTrace {
    assert!(!platform.workers.is_empty(), "platform has no workers");
    assert_eq!(x.len(), platform.workers.len(), "partition length mismatch");
    assert!(
        x.iter().all(|&v| v >= 0.0 && v.is_finite()),
        "fractions must be non-negative and finite"
    );
    assert!(config.streams >= 1, "stream count must be >= 1");
    assert!(
        config.transport_efficiency > 0.0 && config.transport_efficiency <= 1.0,
        "transport efficiency must lie in (0, 1]"
    );

    let mut spans = Vec::new();
    let mut totals = vec![WorkerTotals::default(); platform.workers.len()];
    // (arrival time, worker, sync payload bytes)
    let mut arrivals: Vec<(f64, usize, f64)> = Vec::new();

    for (w, slot) in platform.workers.iter().enumerate() {
        let rate_raw =
            slot.profile
                .rate_at(&workload.name, workload.m, workload.n, workload.nnz, x[w]);
        let rate = if slot.timeshare_server {
            rate_raw * platform.timeshare_efficiency
        } else {
            rate_raw
        };
        let compute_total = if x[w] > 0.0 {
            x[w] * workload.nnz as f64 / rate
        } else {
            0.0
        };

        let m_assigned = (x[w] * workload.m as f64).round() as u64;
        let pull_bytes = config.strategy.pull_bytes(workload.m, workload.n, config.k) as f64;
        let push_bytes = config.strategy.push_bytes(m_assigned, workload.n, config.k) as f64;
        // The server merges the *decompressed* payload (always FP32).
        let sync_bytes = (config
            .strategy
            .push_elements(m_assigned, workload.n, config.k)
            * 4) as f64;

        let bus = platform.effective_bus_bandwidth(w) * config.transport_efficiency;
        let pull_total = pull_bytes / bus;
        let push_total = push_bytes / bus;

        let streams = config.streams.min(slot.profile.max_streams).max(1);
        let s64 = streams as f64;

        // Independent DMA channels per direction (GPU copy engines).
        let mut pull_free = 0.0f64;
        let mut compute_free = 0.0f64;
        let mut push_free = 0.0f64;
        for _ in 0..streams {
            let pull_start = pull_free;
            let pull_end = pull_start + pull_total / s64;
            pull_free = pull_end;
            spans.push(PhaseSpan {
                worker: w,
                phase: Phase::Pull,
                start: pull_start,
                end: pull_end,
            });

            let comp_start = pull_end.max(compute_free);
            let comp_end = comp_start + compute_total / s64;
            compute_free = comp_end;
            spans.push(PhaseSpan {
                worker: w,
                phase: Phase::Compute,
                start: comp_start,
                end: comp_end,
            });

            let push_start = comp_end.max(push_free);
            let push_end = push_start + push_total / s64;
            push_free = push_end;
            spans.push(PhaseSpan {
                worker: w,
                phase: Phase::Push,
                start: push_start,
                end: push_end,
            });

            arrivals.push((push_end, w, sync_bytes / s64));
        }

        totals[w] = WorkerTotals {
            pull: pull_total,
            compute: compute_total,
            push: push_total,
        };
    }

    // Server merges pushes in arrival order (FIFO). With one shard this is
    // the paper's single serialized queue; with N shards each push's merge
    // splits into N equal slices draining through N concurrent queues.
    arrivals.sort_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
    let shards = config.server_shards.max(1);
    let mut server_free = vec![0.0f64; shards];
    let mut sync_total = 0.0f64;
    for (arrival, w, bytes) in arrivals {
        let dur = 3.0 * (bytes / shards as f64) / platform.server_bandwidth;
        let mut start_min = f64::INFINITY;
        let mut end_max = 0.0f64;
        for free in server_free.iter_mut() {
            let start = arrival.max(*free);
            *free = start + dur;
            sync_total += dur;
            start_min = start_min.min(start);
            end_max = end_max.max(*free);
        }
        spans.push(PhaseSpan {
            worker: w,
            phase: Phase::Sync,
            start: start_min,
            end: end_max,
        });
    }

    let epoch_time = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    EpochTrace {
        spans,
        totals,
        sync_total,
        epoch_time,
    }
}

/// Multi-epoch summary (epochs are barrier-separated: the next pull needs
/// the merged global matrix, so total time = epochs × epoch makespan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSim {
    /// The repeated epoch.
    pub epoch: EpochTrace,
    /// Epochs simulated.
    pub epochs: usize,
    /// Total virtual time.
    pub total_time: f64,
    /// The paper's Eq. 8: `nnz·epochs / total_time`.
    pub computing_power: f64,
}

/// Simulates `epochs` epochs and summarizes.
pub fn simulate_training(
    platform: &Platform,
    workload: &Workload,
    config: &SimConfig,
    x: &[f64],
    epochs: usize,
) -> TrainingSim {
    let epoch = simulate_epoch(platform, workload, config, x);
    let total_time = epoch.epoch_time * epochs as f64;
    let computing_power = if total_time > 0.0 {
        workload.nnz as f64 * epochs as f64 / total_time
    } else {
        0.0
    };
    TrainingSim {
        epoch,
        epochs,
        total_time,
        computing_power,
    }
}

/// The platform's ideal computing power on a workload: the sum of every
/// worker's standalone (full-data, no-communication) rate — Table 4's
/// "Ideal" column.
pub fn ideal_computing_power(platform: &Platform, workload: &Workload) -> f64 {
    platform
        .workers
        .iter()
        .map(|slot| {
            slot.profile
                .rate_at(&workload.name, workload.m, workload.n, workload.nnz, 1.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BusKind, ProcessorProfile};

    fn uniform_platform(n: usize, rate: f64) -> Platform {
        let mut p = Platform::new("test");
        for i in 0..n {
            p = p.with_worker(
                ProcessorProfile::custom_cpu(&format!("cpu{i}"), 8, rate, 50e9),
                BusKind::Custom(10e9),
            );
        }
        p
    }

    fn workload() -> Workload {
        Workload {
            name: "custom".into(),
            m: 100_000,
            n: 10_000,
            nnz: 10_000_000,
        }
    }

    #[test]
    fn single_worker_epoch_decomposes() {
        let p = uniform_platform(1, 1e8);
        let cfg = SimConfig {
            k: 64,
            ..Default::default()
        };
        let trace = simulate_epoch(&p, &workload(), &cfg, &[1.0]);
        let t = &trace.totals[0];
        // compute = nnz / rate
        assert!((t.compute - 0.1).abs() < 1e-12, "compute {}", t.compute);
        // pull = 4·k·n / bus
        let expect_pull = (4 * 64 * 10_000) as f64 / 10e9;
        assert!((t.pull - expect_pull).abs() < 1e-15);
        assert!((t.push - expect_pull).abs() < 1e-15);
        // Serial pipeline: epoch ≥ pull+compute+push, plus one sync.
        assert!(trace.epoch_time >= t.sum());
        assert!(trace.sync_total > 0.0);
        assert!((trace.epoch_time - (t.sum() + trace.sync_total)).abs() < 1e-12);
    }

    #[test]
    fn phases_are_ordered_within_worker() {
        let p = uniform_platform(2, 1e8);
        let trace = simulate_epoch(&p, &workload(), &SimConfig::default(), &[0.5, 0.5]);
        for w in 0..2 {
            let spans = trace.worker_spans(w);
            let pull = spans.iter().find(|s| s.phase == Phase::Pull).unwrap();
            let comp = spans.iter().find(|s| s.phase == Phase::Compute).unwrap();
            let push = spans.iter().find(|s| s.phase == Phase::Push).unwrap();
            assert!(pull.end <= comp.start + 1e-15);
            assert!(comp.end <= push.start + 1e-15);
        }
    }

    #[test]
    fn sync_spans_never_overlap() {
        let p = uniform_platform(4, 1e8);
        let trace = simulate_epoch(
            &p,
            &workload(),
            &SimConfig::default(),
            &[0.25, 0.25, 0.25, 0.25],
        );
        let mut syncs: Vec<_> = trace
            .spans
            .iter()
            .filter(|s| s.phase == Phase::Sync)
            .collect();
        syncs.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        assert_eq!(syncs.len(), 4);
        for pair in syncs.windows(2) {
            assert!(pair[0].end <= pair[1].start + 1e-15, "syncs overlap");
        }
    }

    #[test]
    fn balanced_partition_beats_unbalanced() {
        let p = uniform_platform(2, 1e8);
        let cfg = SimConfig::default();
        let balanced = simulate_epoch(&p, &workload(), &cfg, &[0.5, 0.5]);
        let skewed = simulate_epoch(&p, &workload(), &cfg, &[0.9, 0.1]);
        assert!(balanced.epoch_time < skewed.epoch_time);
    }

    #[test]
    fn faster_worker_lowers_epoch_time_when_loaded_accordingly() {
        let mut p = uniform_platform(1, 1e8);
        p = p.with_worker(
            ProcessorProfile::custom_gpu("gpu", 1e9, 400e9, 0.0),
            BusKind::PciE3x16,
        );
        let cfg = SimConfig::default();
        // Load proportional to rates: 1/11 vs 10/11.
        let good = simulate_epoch(&p, &workload(), &cfg, &[1.0 / 11.0, 10.0 / 11.0]);
        let uniform = simulate_epoch(&p, &workload(), &cfg, &[0.5, 0.5]);
        assert!(good.epoch_time < uniform.epoch_time);
    }

    #[test]
    fn streams_hide_transfer_time() {
        // Make comm comparable to compute so pipelining matters.
        let p = Platform::new("t").with_worker(
            ProcessorProfile::custom_gpu("gpu", 1e9, 400e9, 0.0),
            BusKind::Custom(1e9),
        );
        let wl = Workload {
            name: "custom".into(),
            m: 50_000,
            n: 50_000,
            nnz: 20_000_000,
        };
        let sync_cfg = SimConfig {
            k: 128,
            streams: 1,
            ..Default::default()
        };
        let async_cfg = SimConfig {
            k: 128,
            streams: 4,
            ..Default::default()
        };
        let sync_trace = simulate_epoch(&p, &wl, &sync_cfg, &[1.0]);
        let async_trace = simulate_epoch(&p, &wl, &async_cfg, &[1.0]);
        assert!(
            async_trace.epoch_time < sync_trace.epoch_time,
            "async {} !< sync {}",
            async_trace.epoch_time,
            sync_trace.epoch_time
        );
        // Compute totals are unchanged (Fig. 6: async does not reduce
        // computational time).
        assert!((async_trace.totals[0].compute - sync_trace.totals[0].compute).abs() < 1e-12);
    }

    #[test]
    fn streams_capped_by_profile() {
        // A CPU with max_streams = 1 can't pipeline: asking for 4 streams
        // changes nothing.
        let p = uniform_platform(1, 1e8);
        let s1 = simulate_epoch(
            &p,
            &workload(),
            &SimConfig {
                streams: 1,
                ..Default::default()
            },
            &[1.0],
        );
        let s4 = simulate_epoch(
            &p,
            &workload(),
            &SimConfig {
                streams: 4,
                ..Default::default()
            },
            &[1.0],
        );
        assert!((s1.epoch_time - s4.epoch_time).abs() < 1e-12);
    }

    #[test]
    fn timeshare_worker_is_slower() {
        let prof = ProcessorProfile::custom_cpu("srv", 8, 1e8, 50e9);
        let normal = Platform::new("a").with_worker(prof.clone(), BusKind::ServerLocal);
        let shared = Platform::new("b").with_server_worker(prof);
        let cfg = SimConfig::default();
        let tn = simulate_epoch(&normal, &workload(), &cfg, &[1.0]);
        let ts = simulate_epoch(&shared, &workload(), &cfg, &[1.0]);
        let ratio = tn.totals[0].compute / ts.totals[0].compute;
        assert!(
            (ratio - shared.timeshare_efficiency).abs() < 1e-9,
            "ratio {ratio}"
        );
    }

    #[test]
    fn zero_fraction_worker_contributes_nothing_but_still_transfers() {
        let p = uniform_platform(2, 1e8);
        let trace = simulate_epoch(&p, &workload(), &SimConfig::default(), &[1.0, 0.0]);
        assert_eq!(trace.totals[1].compute, 0.0);
        assert!(trace.totals[1].pull > 0.0);
    }

    #[test]
    fn training_sim_scales_linearly() {
        let p = uniform_platform(2, 1e8);
        let sim = simulate_training(&p, &workload(), &SimConfig::default(), &[0.5, 0.5], 20);
        assert!((sim.total_time - 20.0 * sim.epoch.epoch_time).abs() < 1e-9);
        let power = 10_000_000.0 * 20.0 / sim.total_time;
        assert!((sim.computing_power - power).abs() < 1.0);
    }

    #[test]
    fn ideal_power_sums_standalone_rates() {
        let p = uniform_platform(3, 1e8);
        assert!((ideal_computing_power(&p, &workload()) - 3e8).abs() < 1.0);
    }

    #[test]
    fn determinism() {
        let p = Platform::paper_testbed_4workers();
        let wl = Workload::from_profile(&hcc_sparse::DatasetProfile::netflix());
        let cfg = SimConfig::default();
        let x = [0.1, 0.2, 0.3, 0.4];
        let a = simulate_epoch(&p, &wl, &cfg, &x);
        let b = simulate_epoch(&p, &wl, &cfg, &x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "partition length")]
    fn wrong_partition_length_panics() {
        let p = uniform_platform(2, 1e8);
        simulate_epoch(&p, &workload(), &SimConfig::default(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fraction_panics() {
        let p = uniform_platform(1, 1e8);
        simulate_epoch(&p, &workload(), &SimConfig::default(), &[-0.5]);
    }
}
