//! Multi-node cluster topologies — the full Fig. 2 machine.
//!
//! The paper evaluates on a single node (2 CPUs + 2 GPUs) but motivates the
//! design with the four-node QPI-ring workstation of Fig. 2 and the
//! Summit/Sierra class of multi-CPU/GPU nodes. This module builds such
//! platforms for the simulator: several nodes, each with CPUs and GPUs;
//! workers on the server's node ride UPI/PCI-E, remote workers pay a
//! cross-node QPI hop (lower effective bandwidth). It powers the
//! beyond-the-paper scaling study (`cluster_scaling` bench).

use crate::platform::Platform;
use crate::profile::{BusKind, NicProfile, ProcessorProfile};

/// Effective per-direction bandwidth of a cross-node QPI hop (two QPI
/// segments in the Fig. 2 ring, conservatively derated).
pub const CROSS_NODE_BANDWIDTH: f64 = 12.8e9;

/// Builder for multi-node platforms.
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    nodes: usize,
    cpus_per_node: usize,
    gpus_per_node: usize,
    cpu_profile: ProcessorProfile,
    gpu_profile: ProcessorProfile,
    server_timeshares: bool,
    node_nic: Option<NicProfile>,
}

impl ClusterBuilder {
    /// Starts a cluster of `nodes` nodes with the paper's processor mix.
    pub fn new(nodes: usize) -> ClusterBuilder {
        ClusterBuilder {
            nodes,
            cpus_per_node: 2,
            gpus_per_node: 2,
            cpu_profile: ProcessorProfile::xeon_6242_24t(),
            gpu_profile: ProcessorProfile::rtx_2080_super(),
            server_timeshares: true,
            node_nic: None,
        }
    }

    /// CPUs per node (the server consumes one CPU of node 0).
    pub fn cpus_per_node(mut self, count: usize) -> ClusterBuilder {
        self.cpus_per_node = count;
        self
    }

    /// GPUs per node.
    pub fn gpus_per_node(mut self, count: usize) -> ClusterBuilder {
        self.gpus_per_node = count;
        self
    }

    /// CPU worker profile.
    pub fn cpu_profile(mut self, profile: ProcessorProfile) -> ClusterBuilder {
        self.cpu_profile = profile;
        self
    }

    /// GPU worker profile.
    pub fn gpu_profile(mut self, profile: ProcessorProfile) -> ClusterBuilder {
        self.gpu_profile = profile;
        self
    }

    /// Whether the server CPU also works (time-shared).
    pub fn server_timeshares(mut self, yes: bool) -> ClusterBuilder {
        self.server_timeshares = yes;
        self
    }

    /// Gives every remote node this NIC instead of the default QPI-ring
    /// hop: cross-node workers then ride the NIC's loss-adjusted goodput
    /// ([`NicProfile::as_bus`]), modeling a sharded parameter server's
    /// per-node network links.
    pub fn node_nic(mut self, nic: NicProfile) -> ClusterBuilder {
        self.node_nic = Some(nic);
        self
    }

    /// Builds the platform. Node 0 hosts the parameter server on its first
    /// CPU; that CPU becomes a time-sharing worker if configured. All other
    /// processors are ordinary workers: node-0 CPUs on UPI, node-0 GPUs on
    /// PCI-E, and remote-node processors behind the cross-node QPI hop.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or node 0 has no CPU (the server needs one).
    pub fn build(&self) -> Platform {
        assert!(self.nodes > 0, "cluster needs at least one node");
        assert!(self.cpus_per_node >= 1, "node 0 needs a CPU for the server");
        let mut platform = Platform::new(&format!(
            "{}-node cluster ({}C+{}G per node)",
            self.nodes, self.cpus_per_node, self.gpus_per_node
        ));

        let remote_bus = match &self.node_nic {
            Some(nic) => nic.as_bus(),
            None => BusKind::Custom(CROSS_NODE_BANDWIDTH),
        };
        for node in 0..self.nodes {
            let remote = node > 0;
            let cpu_bus = if remote { remote_bus } else { BusKind::Upi };
            let gpu_bus = if remote {
                remote_bus
            } else {
                BusKind::PciE3x16
            };
            for c in 0..self.cpus_per_node {
                let mut profile = self.cpu_profile.clone();
                profile.name = format!("n{node}-cpu{c}");
                if node == 0 && c == 0 {
                    // The server's CPU.
                    if self.server_timeshares {
                        platform = platform.with_server_worker(profile);
                    }
                    continue;
                }
                platform = platform.with_worker(profile, cpu_bus);
            }
            for g in 0..self.gpus_per_node {
                let mut profile = self.gpu_profile.clone();
                profile.name = format!("n{node}-gpu{g}");
                platform = platform.with_worker(profile, gpu_bus);
            }
        }
        platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate_epoch, SimConfig, Workload};
    use crate::measure::{standalone_times, virtual_measure};
    use hcc_partition::dp0;
    use hcc_sparse::DatasetProfile;

    #[test]
    fn single_node_matches_paper_testbed_shape() {
        let p = ClusterBuilder::new(1).build();
        // 2 CPUs (one time-shared) + 2 GPUs.
        assert_eq!(p.worker_count(), 4);
        assert!(p.workers[0].timeshare_server);
        assert_eq!(p.workers[1].bus, BusKind::Upi);
        assert_eq!(p.workers[2].bus, BusKind::PciE3x16);
    }

    #[test]
    fn remote_nodes_ride_the_slow_bus() {
        let p = ClusterBuilder::new(2).build();
        assert_eq!(p.worker_count(), 8);
        let remote: Vec<_> = p
            .workers
            .iter()
            .filter(|w| w.profile.name.starts_with("n1"))
            .collect();
        assert_eq!(remote.len(), 4);
        for w in remote {
            assert_eq!(w.bus, BusKind::Custom(CROSS_NODE_BANDWIDTH));
        }
    }

    #[test]
    fn node_nic_overrides_the_remote_bus() {
        let nic = NicProfile::ten_gbe(0.02);
        let p = ClusterBuilder::new(2).node_nic(nic).build();
        for w in &p.workers {
            let expected = if w.profile.name.starts_with("n0") {
                // Local node keeps its native buses.
                assert_ne!(w.bus, nic.as_bus());
                continue;
            } else {
                nic.as_bus()
            };
            assert_eq!(w.bus, expected, "{}", w.profile.name);
        }
        // The lossy NIC is strictly slower than the lossless QPI hop.
        match nic.as_bus() {
            BusKind::Custom(bw) => assert!(bw < nic.bandwidth),
            other => panic!("nic bus should be custom, got {other:?}"),
        }
    }

    #[test]
    fn no_timeshare_drops_the_server_cpu() {
        let p = ClusterBuilder::new(1).server_timeshares(false).build();
        assert_eq!(p.worker_count(), 3); // 1 CPU + 2 GPUs
        assert!(p.workers.iter().all(|w| !w.timeshare_server));
    }

    #[test]
    fn cluster_simulates_and_scales_compute() {
        let wl = Workload::from_profile(&DatasetProfile::yahoo_r2());
        let cfg = SimConfig::default();
        let mut prev_compute = f64::INFINITY;
        for nodes in 1..=3 {
            let p = ClusterBuilder::new(nodes).build();
            let x = dp0(&standalone_times(&p, &wl));
            let trace = simulate_epoch(&p, &wl, &cfg, &x);
            let max_compute = trace
                .totals
                .iter()
                .map(|t| t.compute)
                .fold(0.0f64, f64::max);
            assert!(
                max_compute < prev_compute,
                "{nodes} nodes: compute did not shrink ({max_compute} vs {prev_compute})"
            );
            prev_compute = max_compute;
        }
    }

    #[test]
    fn measurement_hooks_work_on_clusters() {
        let p = ClusterBuilder::new(2).gpus_per_node(1).build();
        let wl = Workload::from_profile(&DatasetProfile::netflix());
        let mut measure = virtual_measure(&p, &wl);
        let x = dp0(&standalone_times(&p, &wl));
        let t = measure(&x);
        assert_eq!(t.len(), p.worker_count());
        assert!(t.iter().all(|&v| v > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        ClusterBuilder::new(0).build();
    }
}
