//! Platform topologies.
//!
//! A [`Platform`] is the paper's Fig.-2 machine: a parameter server living
//! on one CPU, plus worker slots, each a processor on a bus. The builders
//! reproduce the evaluation testbed: CPU_1 connects over UPI, both GPUs
//! over their own PCI-E 3.0 x16 links, and CPU_0 — the server — can
//! time-share as a worker when the asynchronous strategy is off (§3.5).

use crate::profile::{BusKind, ProcessorProfile};
use serde::{Deserialize, Serialize};

/// One worker: a processor attached to the server by a bus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSlot {
    /// The processor profile.
    pub profile: ProcessorProfile,
    /// Its link to the server.
    pub bus: BusKind,
    /// True for the special worker that time-shares the server's CPU
    /// (compute rate degraded by [`Platform::timeshare_efficiency`]).
    pub timeshare_server: bool,
    /// Workers sharing a `bus_group` contend for one physical link; the
    /// engine models contention as static fair-share (bandwidth divided by
    /// group size). `None` = dedicated link, the paper's Fig.-2 assumption.
    #[serde(default)]
    pub bus_group: Option<u32>,
}

/// A multi-CPU/GPU machine: server + workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable name ("6242-2080S", …).
    pub name: String,
    /// Server memory bandwidth, bytes/s (`B_server`; a Xeon 6242 socket
    /// measures 67.3 GB/s in Table 2).
    pub server_bandwidth: f64,
    /// Compute-rate multiplier of a time-sharing server worker. Calibrated
    /// so the special worker's *marginal* contribution lands at §4.5's
    /// "more than 70 %" of its standalone power (the sync work it hosts
    /// eats the rest of the gap).
    pub timeshare_efficiency: f64,
    /// The worker slots.
    pub workers: Vec<WorkerSlot>,
}

impl Platform {
    /// Starts an empty platform with the paper's server characteristics.
    pub fn new(name: &str) -> Platform {
        Platform {
            name: name.into(),
            server_bandwidth: 67.3e9,
            timeshare_efficiency: 0.80,
            workers: Vec::new(),
        }
    }

    /// Adds an ordinary worker on a dedicated link.
    pub fn with_worker(mut self, profile: ProcessorProfile, bus: BusKind) -> Platform {
        self.workers.push(WorkerSlot {
            profile,
            bus,
            timeshare_server: false,
            bus_group: None,
        });
        self
    }

    /// Adds a worker sharing a physical link with every other worker that
    /// carries the same `group` id (e.g. two GPUs behind one PCI-E switch).
    pub fn with_worker_on_shared_bus(
        mut self,
        profile: ProcessorProfile,
        bus: BusKind,
        group: u32,
    ) -> Platform {
        self.workers.push(WorkerSlot {
            profile,
            bus,
            timeshare_server: false,
            bus_group: Some(group),
        });
        self
    }

    /// Adds the time-sharing server worker.
    pub fn with_server_worker(mut self, profile: ProcessorProfile) -> Platform {
        self.workers.push(WorkerSlot {
            profile,
            bus: BusKind::ServerLocal,
            timeshare_server: true,
            bus_group: None,
        });
        self
    }

    /// Effective per-direction bus bandwidth of worker `w`, after dividing
    /// shared links fairly among their group members.
    pub fn effective_bus_bandwidth(&self, w: usize) -> f64 {
        let slot = &self.workers[w];
        let raw = slot.bus.bandwidth();
        match slot.bus_group {
            None => raw,
            Some(group) => {
                let sharers = self
                    .workers
                    .iter()
                    .filter(|s| s.bus_group == Some(group))
                    .count()
                    .max(1);
                raw / sharers as f64
            }
        }
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Worker display names, in slot order.
    pub fn worker_names(&self) -> Vec<&str> {
        self.workers
            .iter()
            .map(|w| w.profile.name.as_str())
            .collect()
    }

    /// Total hardware price (server CPU counted once via its worker slot).
    pub fn total_price(&self) -> f64 {
        self.workers.iter().map(|w| w.profile.price_usd).sum()
    }

    // --- The paper's testbed configurations --------------------------------

    /// The full 4-worker evaluation platform: server on CPU_0, which also
    /// time-shares as a worker ("6242L"/CPU_0 at reduced threads), CPU_1
    /// over UPI, both GPUs over PCI-E. Matches §4.1 with CPU_0 at 10
    /// threads (the heterogeneity configuration used by Figs. 8–9).
    pub fn paper_testbed_4workers() -> Platform {
        Platform::new("2×6242 + 2080 + 2080S")
            .with_server_worker(ProcessorProfile::xeon_6242_10t())
            .with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi)
            .with_worker(ProcessorProfile::rtx_2080(), BusKind::PciE3x16)
            .with_worker(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16)
    }

    /// The 3-worker configuration (no time-sharing server worker): CPU_1 +
    /// both GPUs, used by the "3 workers" halves of Fig. 8 and by R1 runs
    /// where the asynchronous strategy occupies the server.
    pub fn paper_testbed_3workers() -> Platform {
        Platform::new("6242 + 2080 + 2080S")
            .with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi)
            .with_worker(ProcessorProfile::rtx_2080(), BusKind::PciE3x16)
            .with_worker(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16)
    }

    /// The overall-performance platform (§4.2): CPU_0 at 16 threads
    /// time-sharing with the server, CPU_1 at 24 threads, both GPUs.
    pub fn paper_testbed_overall() -> Platform {
        Platform::new("2×6242(16T/24T) + 2080 + 2080S")
            .with_server_worker(ProcessorProfile::xeon_6242_16t())
            .with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi)
            .with_worker(ProcessorProfile::rtx_2080(), BusKind::PciE3x16)
            .with_worker(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16)
    }

    /// Single-processor platform (for the Fig. 3 standalone bars).
    pub fn single(profile: ProcessorProfile) -> Platform {
        let name = profile.name.clone();
        let bus = if profile.kind.is_gpu() {
            BusKind::PciE3x16
        } else {
            BusKind::Upi
        };
        Platform::new(&name).with_worker(profile, bus)
    }

    /// Two-processor collaboration (Fig. 3's "6242-2080" style bars).
    pub fn pair(a: ProcessorProfile, b: ProcessorProfile) -> Platform {
        let name = format!("{}-{}", a.name, b.name);
        let bus_a = if a.kind.is_gpu() {
            BusKind::PciE3x16
        } else {
            BusKind::Upi
        };
        let bus_b = if b.kind.is_gpu() {
            BusKind::PciE3x16
        } else {
            BusKind::Upi
        };
        Platform::new(&name)
            .with_worker(a, bus_a)
            .with_worker(b, bus_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_four_workers_one_timeshared() {
        let p = Platform::paper_testbed_4workers();
        assert_eq!(p.worker_count(), 4);
        assert_eq!(p.workers.iter().filter(|w| w.timeshare_server).count(), 1);
        assert!(p.workers[0].timeshare_server);
        assert_eq!(p.workers[1].bus, BusKind::Upi);
        assert_eq!(p.workers[2].bus, BusKind::PciE3x16);
    }

    #[test]
    fn three_worker_testbed_has_no_timeshare() {
        let p = Platform::paper_testbed_3workers();
        assert_eq!(p.worker_count(), 3);
        assert!(p.workers.iter().all(|w| !w.timeshare_server));
    }

    #[test]
    fn single_and_pair_builders() {
        let s = Platform::single(ProcessorProfile::rtx_2080());
        assert_eq!(s.worker_count(), 1);
        assert_eq!(s.workers[0].bus, BusKind::PciE3x16);
        let p = Platform::pair(
            ProcessorProfile::xeon_6242_16t(),
            ProcessorProfile::rtx_2080_super(),
        );
        assert_eq!(p.worker_count(), 2);
        assert_eq!(p.name, "6242-16T-RTX 2080S");
        assert_eq!(p.workers[0].bus, BusKind::Upi);
    }

    #[test]
    fn price_sums_workers() {
        let p = Platform::pair(
            ProcessorProfile::xeon_6242_16t(),
            ProcessorProfile::rtx_2080(),
        );
        assert_eq!(p.total_price(), 2_700.0);
    }

    #[test]
    fn names_in_slot_order() {
        let p = Platform::paper_testbed_4workers();
        assert_eq!(p.worker_names()[0], "6242L-10T");
        assert_eq!(p.worker_names()[3], "RTX 2080S");
    }
}

#[cfg(test)]
mod bus_group_tests {
    use super::*;
    use crate::engine::{simulate_epoch, SimConfig, Workload};
    use hcc_sparse::DatasetProfile;

    #[test]
    fn shared_bus_halves_effective_bandwidth() {
        let p = Platform::new("switch")
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080(), BusKind::PciE3x16, 0)
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16, 0)
            .with_worker(ProcessorProfile::xeon_6242_24t(), BusKind::Upi);
        assert_eq!(p.effective_bus_bandwidth(0), 8.0e9);
        assert_eq!(p.effective_bus_bandwidth(1), 8.0e9);
        assert_eq!(p.effective_bus_bandwidth(2), 20.8e9);
    }

    #[test]
    fn distinct_groups_do_not_contend() {
        let p = Platform::new("two-switches")
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080(), BusKind::PciE3x16, 0)
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16, 1);
        assert_eq!(p.effective_bus_bandwidth(0), 16.0e9);
        assert_eq!(p.effective_bus_bandwidth(1), 16.0e9);
    }

    #[test]
    fn contention_slows_simulated_comm_but_not_compute() {
        let wl = Workload::from_profile(&DatasetProfile::yahoo_r1());
        let cfg = SimConfig::default();
        let x = [0.45, 0.55];
        let dedicated = Platform::new("a")
            .with_worker(ProcessorProfile::rtx_2080(), BusKind::PciE3x16)
            .with_worker(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16);
        let shared = Platform::new("b")
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080(), BusKind::PciE3x16, 0)
            .with_worker_on_shared_bus(ProcessorProfile::rtx_2080_super(), BusKind::PciE3x16, 0);
        let t_ded = simulate_epoch(&dedicated, &wl, &cfg, &x);
        let t_shr = simulate_epoch(&shared, &wl, &cfg, &x);
        assert!(t_shr.epoch_time > t_ded.epoch_time);
        for w in 0..2 {
            assert!((t_shr.totals[w].compute - t_ded.totals[w].compute).abs() < 1e-12);
            assert!((t_shr.totals[w].pull - 2.0 * t_ded.totals[w].pull).abs() < 1e-12);
        }
    }
}
