//! Virtual multi-CPU/GPU platform — the hardware-substitution substrate.
//!
//! The paper's testbed (2× Xeon Gold 6242, RTX 2080, RTX 2080 Super on
//! PCI-E 3.0 x16 / Intel UPI) is unavailable here, and stable Rust cannot
//! run custom SGD kernels on a GPU anyway. This crate substitutes a
//! **discrete-event simulator** of that class of machine:
//!
//! * [`profile`] — per-processor profiles calibrated from the paper's *own
//!   measurements*: Table 4's per-dataset "computing power" (updates/s) and
//!   Table 2's runtime memory bandwidths, including the GPU effect that
//!   bandwidth rises slightly as the input shard shrinks (which is why DP1
//!   exists). Plus Fig. 3(b)'s price catalog.
//! * [`platform`] — topologies: which processors, on which buses, which one
//!   time-shares with the parameter server.
//! * [`engine`] — the epoch pipeline in virtual time: per-worker
//!   pull → compute → push with per-direction DMA channels, multi-stream
//!   chunking (Strategy 3), and the server's FIFO synchronization queue.
//!   Produces [`engine::EpochTrace`]s with full phase spans — the Fig. 5 /
//!   Fig. 8 timelines.
//! * [`measure`] — "virtual profiling": standalone execution times (DP0's
//!   input), the `measure` callback DP1's Algorithm-1 loop needs, the
//!   [`hcc_partition::CostModel`] for a platform/workload pair, and the
//!   Table 2 bandwidth report.
//!
//! Everything is deterministic: same inputs → bit-identical traces.
//!
//! ```
//! use hcc_hetsim::{simulate_epoch, Platform, SimConfig, Workload};
//! use hcc_sparse::DatasetProfile;
//!
//! let platform = Platform::paper_testbed_4workers();
//! let workload = Workload::from_profile(&DatasetProfile::netflix());
//! let trace = simulate_epoch(&platform, &workload, &SimConfig::default(), &[0.25; 4]);
//! assert!(trace.epoch_time > 0.0);
//! assert_eq!(trace.totals.len(), 4);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cluster;
pub mod des;
pub mod engine;
pub mod export;
pub mod fault;
pub mod measure;
pub mod platform;
pub mod profile;

pub use cluster::ClusterBuilder;
pub use des::simulate_epoch_des;
pub use engine::{
    ideal_computing_power, simulate_epoch, simulate_training, EpochTrace, Phase, PhaseSpan,
    SimConfig, TrainingSim, Workload,
};
pub use fault::{
    collapse_shard_faults, derive_net_faults, derive_shard_net_faults, simulate_epoch_des_faulty,
    ShardLinkFault, SimFault, SimFaultKind,
};
pub use measure::{
    bandwidth_table, cost_model_for, standalone_times, virtual_measure, virtual_measure_total,
    worker_classes,
};
pub use platform::{Platform, WorkerSlot};
pub use profile::{BusKind, NicProfile, ProcKind, ProcessorProfile};
