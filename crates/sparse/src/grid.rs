//! Data grids: the server-side row/column grid of HCC-MF (§3.3) and the 2-D
//! block grid used by the FPSGD baseline.
//!
//! The HCC-MF server divides the rating matrix into *groups of rows* (or
//! columns, when `n > m`), one group per worker, such that the number of
//! entries per group matches a prescribed partition vector `x` (produced by
//! DP0/DP1/DP2 in `hcc-partition`). Groups are contiguous in index space,
//! which is what makes "Transmit Q only" sound: with a row grid each worker
//! owns a disjoint slice of `P`.

use crate::coo::{CooMatrix, Rating};
use crate::csr::CsrMatrix;

/// Which dimension the grid slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Slice by rows (users). Chosen when `m >= n`.
    Row,
    /// Slice by columns (items). Chosen when `n > m`.
    Col,
}

impl Axis {
    /// The axis HCC-MF picks for a matrix: the *longer* dimension, so the
    /// transmitted (shared) factor matrix is the smaller one.
    pub fn for_matrix(rows: u32, cols: u32) -> Axis {
        if rows >= cols {
            Axis::Row
        } else {
            Axis::Col
        }
    }
}

/// A partition of the rating matrix into per-worker shards along one axis.
#[derive(Debug, Clone)]
pub struct GridPartition {
    axis: Axis,
    /// `boundaries[w]..boundaries[w+1]` is worker `w`'s index range along the
    /// sliced axis. Length `workers + 1`; first 0, last = axis length.
    boundaries: Vec<u32>,
    /// Per-worker entry shards. Entries keep their original global indices.
    shards: Vec<Vec<Rating>>,
}

impl GridPartition {
    /// Builds a grid assigning each worker a contiguous index range whose
    /// total entry count tracks `fractions` (which should be non-negative and
    /// sum to ~1; it is renormalized defensively).
    ///
    /// The split points are chosen greedily on the prefix sums of per-index
    /// entry counts, so a worker's actual share can deviate from its target
    /// by at most the heaviest single row (column).
    ///
    /// # Panics
    /// Panics if `fractions` is empty (a grid needs at least one worker).
    pub fn build(matrix: &CooMatrix, axis: Axis, fractions: &[f64]) -> GridPartition {
        assert!(!fractions.is_empty(), "grid needs at least one worker");
        let total: f64 = fractions.iter().sum();
        let norm: Vec<f64> = if total > 0.0 {
            fractions.iter().map(|f| f.max(0.0) / total).collect()
        } else {
            vec![1.0 / fractions.len() as f64; fractions.len()]
        };

        let axis_len = match axis {
            Axis::Row => matrix.rows(),
            Axis::Col => matrix.cols(),
        };
        let counts = match axis {
            Axis::Row => matrix.row_counts(),
            Axis::Col => matrix.col_counts(),
        };
        let nnz = matrix.nnz() as f64;

        // Prefix sums of entry counts along the axis.
        let mut prefix = Vec::with_capacity(counts.len() + 1);
        prefix.push(0u64);
        let mut acc = 0u64;
        for &c in &counts {
            acc += c as u64;
            prefix.push(acc);
        }

        let workers = norm.len();
        let mut boundaries = Vec::with_capacity(workers + 1);
        boundaries.push(0u32);
        let mut target = 0.0f64;
        for w in 0..workers - 1 {
            target += norm[w] * nnz;
            let want = target.round() as u64;
            // First index whose prefix reaches the cumulative target; never
            // before the previous boundary so boundaries stay sorted.
            let lo = boundaries[w] as usize;
            let pos = prefix[lo..].partition_point(|&p| p < want);
            boundaries.push(((lo + pos) as u32).min(axis_len));
        }
        boundaries.push(axis_len);

        // Scatter entries into shards.
        let mut shards: Vec<Vec<Rating>> = (0..workers)
            .map(|w| {
                let expect = prefix[boundaries[w + 1] as usize] - prefix[boundaries[w] as usize];
                Vec::with_capacity(expect as usize)
            })
            .collect();
        for &e in matrix.entries() {
            let key = match axis {
                Axis::Row => e.u,
                Axis::Col => e.i,
            };
            // boundaries is sorted (with possible duplicates for empty
            // shards); the shard containing `key` is the last one whose
            // start is <= key.
            let w = (boundaries.partition_point(|&b| b <= key) - 1).min(workers - 1);
            shards[w].push(e);
        }
        GridPartition {
            axis,
            boundaries,
            shards,
        }
    }

    /// Builds an equal-fraction grid over `workers` workers.
    pub fn build_uniform(matrix: &CooMatrix, axis: Axis, workers: usize) -> GridPartition {
        let fractions = vec![1.0 / workers as f64; workers];
        GridPartition::build(matrix, axis, &fractions)
    }

    /// The sliced axis.
    #[inline]
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Number of workers.
    #[inline]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Worker `w`'s index range along the sliced axis.
    #[inline]
    pub fn range(&self, w: usize) -> std::ops::Range<u32> {
        self.boundaries[w]..self.boundaries[w + 1]
    }

    /// Worker `w`'s entries.
    #[inline]
    pub fn shard(&self, w: usize) -> &[Rating] {
        &self.shards[w]
    }

    /// All shards.
    #[inline]
    pub fn shards(&self) -> &[Vec<Rating>] {
        &self.shards
    }

    /// Consumes the grid, yielding owned shards (for handing to workers).
    pub fn into_shards(self) -> Vec<Vec<Rating>> {
        self.shards
    }

    /// Per-worker entry counts.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Vec::len).collect()
    }

    /// Actual fraction of entries per worker.
    pub fn actual_fractions(&self) -> Vec<f64> {
        let total: usize = self.shards.iter().map(Vec::len).sum();
        if total == 0 {
            return vec![0.0; self.shards.len()];
        }
        self.shards
            .iter()
            .map(|s| s.len() as f64 / total as f64)
            .collect()
    }
}

/// A 2-D block grid over the rating matrix, as used by FPSGD: the matrix is
/// cut into `grid_rows × grid_cols` rectangular blocks; two blocks sharing no
/// row-bin and no column-bin touch disjoint parameters and can be trained
/// concurrently without locks.
#[derive(Debug, Clone)]
pub struct BlockGrid {
    grid_rows: usize,
    grid_cols: usize,
    row_bin_size: u32,
    col_bin_size: u32,
    /// Row-major `grid_rows × grid_cols` blocks of entries.
    blocks: Vec<Vec<Rating>>,
}

impl BlockGrid {
    /// Builds the block grid with equal-width index bins.
    ///
    /// # Panics
    /// Panics if `grid_rows` or `grid_cols` is zero.
    pub fn build(matrix: &CooMatrix, grid_rows: usize, grid_cols: usize) -> BlockGrid {
        assert!(
            grid_rows > 0 && grid_cols > 0,
            "grid dimensions must be non-zero"
        );
        let row_bin_size = matrix.rows().div_ceil(grid_rows as u32).max(1);
        let col_bin_size = matrix.cols().div_ceil(grid_cols as u32).max(1);
        let mut blocks: Vec<Vec<Rating>> = vec![Vec::new(); grid_rows * grid_cols];
        for &e in matrix.entries() {
            let br = ((e.u / row_bin_size) as usize).min(grid_rows - 1);
            let bc = ((e.i / col_bin_size) as usize).min(grid_cols - 1);
            blocks[br * grid_cols + bc].push(e);
        }
        BlockGrid {
            grid_rows,
            grid_cols,
            row_bin_size,
            col_bin_size,
            blocks,
        }
    }

    /// Grid height in blocks.
    #[inline]
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Grid width in blocks.
    #[inline]
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Entries of block `(br, bc)`.
    #[inline]
    pub fn block(&self, br: usize, bc: usize) -> &[Rating] {
        &self.blocks[br * self.grid_cols + bc]
    }

    /// Row-index bin width.
    #[inline]
    pub fn row_bin_size(&self) -> u32 {
        self.row_bin_size
    }

    /// Column-index bin width.
    #[inline]
    pub fn col_bin_size(&self) -> u32 {
        self.col_bin_size
    }

    /// Total entries across all blocks.
    pub fn nnz(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }
}

/// Builds a grid whose per-worker *row* weights come from a CSR view; exposed
/// for callers that already hold a CSR (avoids recomputing row counts).
pub fn balanced_row_boundaries(csr: &CsrMatrix, workers: usize) -> Vec<u32> {
    assert!(workers > 0);
    let nnz = csr.nnz() as f64;
    let mut boundaries = Vec::with_capacity(workers + 1);
    boundaries.push(0u32);
    let ptr = csr.row_ptr();
    for w in 1..workers {
        let target = (nnz * w as f64 / workers as f64).round() as usize;
        let lo = *boundaries.last().unwrap() as usize;
        let split = match ptr[lo..].binary_search(&target) {
            Ok(pos) | Err(pos) => (lo + pos).min(csr.rows() as usize),
        };
        boundaries.push(split as u32);
    }
    boundaries.push(csr.rows());
    boundaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Rating;

    fn matrix() -> CooMatrix {
        // 6 rows, entry counts per row: [4, 1, 1, 1, 1, 4]
        let mut entries = Vec::new();
        for i in 0..4 {
            entries.push(Rating::new(0, i, 1.0));
            entries.push(Rating::new(5, i, 1.0));
        }
        for u in 1..5 {
            entries.push(Rating::new(u, 0, 1.0));
        }
        CooMatrix::new(6, 4, entries).unwrap()
    }

    #[test]
    fn axis_picks_longer_dimension() {
        assert_eq!(Axis::for_matrix(10, 5), Axis::Row);
        assert_eq!(Axis::for_matrix(5, 10), Axis::Col);
        assert_eq!(Axis::for_matrix(5, 5), Axis::Row);
    }

    #[test]
    fn uniform_grid_balances_entries() {
        let m = matrix();
        let g = GridPartition::build_uniform(&m, Axis::Row, 2);
        assert_eq!(g.workers(), 2);
        let sizes = g.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), m.nnz());
        // 12 entries; perfect split is 6/6. Heaviest row is 4 entries, so the
        // greedy split is within that of the target.
        assert!((sizes[0] as i64 - 6).unsigned_abs() <= 4);
    }

    #[test]
    fn shards_are_contiguous_and_disjoint() {
        let m = matrix();
        let g = GridPartition::build_uniform(&m, Axis::Row, 3);
        for w in 0..3 {
            let range = g.range(w);
            for e in g.shard(w) {
                assert!(
                    range.contains(&e.u),
                    "entry row {} outside {:?}",
                    e.u,
                    range
                );
            }
        }
        assert_eq!(g.range(0).start, 0);
        assert_eq!(g.range(2).end, 6);
        for w in 0..2 {
            assert_eq!(g.range(w).end, g.range(w + 1).start);
        }
    }

    #[test]
    fn skewed_fractions_shift_boundaries() {
        let m = matrix();
        let g = GridPartition::build(&m, Axis::Row, &[0.9, 0.1]);
        let sizes = g.shard_sizes();
        assert!(sizes[0] > sizes[1], "sizes {:?}", sizes);
    }

    #[test]
    fn col_axis_grids_by_column() {
        let m = matrix();
        let g = GridPartition::build_uniform(&m, Axis::Col, 2);
        for w in 0..2 {
            let range = g.range(w);
            for e in g.shard(w) {
                assert!(range.contains(&e.i));
            }
        }
    }

    #[test]
    fn zero_fraction_worker_gets_nothing_or_little() {
        let m = matrix();
        let g = GridPartition::build(&m, Axis::Row, &[0.0, 1.0]);
        assert_eq!(g.shard_sizes()[0], 0);
        assert_eq!(g.shard_sizes()[1], m.nnz());
    }

    #[test]
    fn degenerate_all_zero_fractions_fall_back_to_uniform() {
        let m = matrix();
        let g = GridPartition::build(&m, Axis::Row, &[0.0, 0.0]);
        assert_eq!(g.shard_sizes().iter().sum::<usize>(), m.nnz());
    }

    #[test]
    fn single_worker_owns_everything() {
        let m = matrix();
        let g = GridPartition::build_uniform(&m, Axis::Row, 1);
        assert_eq!(g.shard_sizes(), vec![m.nnz()]);
        assert_eq!(g.range(0), 0..6);
    }

    #[test]
    fn block_grid_covers_all_entries_disjointly() {
        let m = matrix();
        let g = BlockGrid::build(&m, 3, 2);
        assert_eq!(g.nnz(), m.nnz());
        for br in 0..3 {
            for bc in 0..2 {
                for e in g.block(br, bc) {
                    assert_eq!(((e.u / g.row_bin_size()) as usize).min(2), br);
                    assert_eq!(((e.i / g.col_bin_size()) as usize).min(1), bc);
                }
            }
        }
    }

    #[test]
    fn block_grid_larger_than_matrix_yields_empty_tail_blocks() {
        let m = CooMatrix::new(2, 2, vec![Rating::new(0, 0, 1.0)]).unwrap();
        let g = BlockGrid::build(&m, 5, 5);
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.block(0, 0).len(), 1);
    }

    #[test]
    fn csr_boundaries_cover_rows() {
        let m = matrix();
        let csr = CsrMatrix::from(&m);
        let b = balanced_row_boundaries(&csr, 3);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&6));
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }
}
