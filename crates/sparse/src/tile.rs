//! Locality-aware tiling of a rating shard for cache-friendly Hogwild.
//!
//! Striped Hogwild walks the (shuffled) entry list in arrival order, so
//! consecutive updates touch essentially random `P`/`Q` rows: at realistic
//! dimensions (`k = 128` ⇒ 512 B per factor row) every update misses L2 on
//! both rows. Tiling groups the shard into `u_block × i_block` rectangles
//! sized so that all factor rows a tile can touch — `(u_block + i_block)·k`
//! floats — fit in a fraction of L2. A thread then processes a whole tile
//! before moving on, so each resident row is reused for every rating that
//! falls in the tile instead of being refetched per update.
//!
//! The regrouping is a counting sort over tile ids: one pass to count, one to
//! scatter, `O(nnz)` time and one extra entry buffer. Within a tile the
//! original (shuffled) entry order is preserved, so SGD still sees a random
//! order *locally*; only the global visiting order becomes block-structured.
//! That is the same trade FPSGD makes with its block grid, applied here to
//! the shared-memory scheduler instead of the partition layer.

use crate::coo::Rating;

/// Default per-tile cache budget: half of a conservative 512 KiB L2, leaving
/// the other half for the streamed entries and whatever else the core runs.
pub const DEFAULT_L2_BYTES: usize = 256 * 1024;

/// A shard regrouped into cache-sized tiles, ready for tile-at-a-time
/// scheduling.
///
/// Tiles are stored back-to-back in one buffer (CSR-style offsets), ordered
/// row-major over the `grid_u × grid_i` tile grid; empty tiles are kept (they
/// are free) so tile ids map directly to grid coordinates.
#[derive(Debug, Clone)]
pub struct TileGrid {
    u_block: usize,
    i_block: usize,
    grid_u: usize,
    grid_i: usize,
    /// Entries permuted into tile-major order.
    entries: Vec<Rating>,
    /// `offsets[t]..offsets[t + 1]` bounds tile `t` in `entries`.
    offsets: Vec<usize>,
}

impl TileGrid {
    /// Buckets `entries` (indices `< rows`/`< cols`) into tiles sized for
    /// factor dimension `k` and an `l2_bytes` cache budget.
    ///
    /// Block sizes are chosen square-ish: the tile's worst-case resident set
    /// is `(u_block + i_block)` factor rows of `4k` bytes each, so each block
    /// gets `l2_bytes / 2` of the budget. Degenerate inputs (tiny budget,
    /// huge `k`) clamp to 1-row blocks, which degrades gracefully toward
    /// per-entry scheduling rather than failing.
    ///
    /// # Panics
    /// Panics if `rows == 0` or `cols == 0`, or if an entry indexes outside
    /// `rows × cols`.
    pub fn build(entries: &[Rating], rows: usize, cols: usize, k: usize, l2_bytes: usize) -> Self {
        assert!(rows > 0 && cols > 0, "tile grid over an empty matrix");
        let row_bytes = 4 * k.max(1);
        let block = (l2_bytes / 2 / row_bytes).max(1);
        let u_block = block.min(rows);
        let i_block = block.min(cols);
        let grid_u = rows.div_ceil(u_block);
        let grid_i = cols.div_ceil(i_block);
        let n_tiles = grid_u * grid_i;

        let tile_of = |e: &Rating| -> usize {
            let (u, i) = (e.u as usize, e.i as usize);
            assert!(
                u < rows && i < cols,
                "entry ({u}, {i}) outside {rows}x{cols}"
            );
            (u / u_block) * grid_i + (i / i_block)
        };

        // Counting sort by tile id, stable within a tile.
        let mut counts = vec![0usize; n_tiles + 1];
        for e in entries {
            counts[tile_of(e) + 1] += 1;
        }
        for t in 0..n_tiles {
            counts[t + 1] += counts[t];
        }
        let offsets = counts.clone();
        let mut permuted = vec![Rating::new(0, 0, 0.0); entries.len()];
        let mut cursor = counts;
        for e in entries {
            let t = tile_of(e);
            permuted[cursor[t]] = *e;
            cursor[t] += 1;
        }

        TileGrid {
            u_block,
            i_block,
            grid_u,
            grid_i,
            entries: permuted,
            offsets,
        }
    }

    /// Builds with the [`DEFAULT_L2_BYTES`] budget.
    pub fn with_default_budget(entries: &[Rating], rows: usize, cols: usize, k: usize) -> Self {
        Self::build(entries, rows, cols, k, DEFAULT_L2_BYTES)
    }

    /// Number of tiles (including empty ones).
    #[inline]
    pub fn num_tiles(&self) -> usize {
        self.grid_u * self.grid_i
    }

    /// Entries of tile `t`, in original relative order.
    #[inline]
    pub fn tile(&self, t: usize) -> &[Rating] {
        &self.entries[self.offsets[t]..self.offsets[t + 1]]
    }

    /// Rows (users) per tile.
    #[inline]
    pub fn u_block(&self) -> usize {
        self.u_block
    }

    /// Columns (items) per tile.
    #[inline]
    pub fn i_block(&self) -> usize {
        self.i_block
    }

    /// Tile-grid dimensions `(grid_u, grid_i)`.
    #[inline]
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.grid_u, self.grid_i)
    }

    /// Total entries across all tiles (equals the input length).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in tile-major order; `tile(t)` slices into this.
    #[inline]
    pub fn entries(&self) -> &[Rating] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, SyntheticDataset};

    fn key(e: &Rating) -> (u32, u32, u32) {
        (e.u, e.i, e.r.to_bits())
    }

    #[test]
    fn preserves_every_entry_exactly_once() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 300,
            cols: 200,
            nnz: 4_000,
            ..GenConfig::default()
        });
        let entries = ds.matrix.entries();
        let grid = TileGrid::build(entries, 300, 200, 32, 16 * 1024);
        assert_eq!(grid.len(), entries.len());
        let mut got: Vec<_> = (0..grid.num_tiles())
            .flat_map(|t| grid.tile(t).iter().map(key))
            .collect();
        let mut want: Vec<_> = entries.iter().map(key).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn entries_land_in_their_tile_rectangle() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 100,
            cols: 80,
            nnz: 2_000,
            ..GenConfig::default()
        });
        let grid = TileGrid::build(ds.matrix.entries(), 100, 80, 64, 8 * 1024);
        let (gu, gi) = grid.grid_dims();
        for tu in 0..gu {
            for ti in 0..gi {
                for e in grid.tile(tu * gi + ti) {
                    assert_eq!(e.u as usize / grid.u_block(), tu);
                    assert_eq!(e.i as usize / grid.i_block(), ti);
                }
            }
        }
    }

    #[test]
    fn block_size_scales_inversely_with_k() {
        let entries = [Rating::new(0, 0, 1.0)];
        let small_k = TileGrid::build(&entries, 100_000, 100_000, 16, DEFAULT_L2_BYTES);
        let large_k = TileGrid::build(&entries, 100_000, 100_000, 128, DEFAULT_L2_BYTES);
        assert_eq!(small_k.u_block(), 8 * large_k.u_block());
        // k = 128: 512 B rows, 128 KiB half-budget => 256-row blocks.
        assert_eq!(large_k.u_block(), 256);
    }

    #[test]
    fn huge_budget_gives_single_tile() {
        let ds = SyntheticDataset::generate(GenConfig {
            rows: 50,
            cols: 40,
            nnz: 500,
            ..GenConfig::default()
        });
        let entries = ds.matrix.entries();
        let grid = TileGrid::build(entries, 50, 40, 8, usize::MAX / 8);
        assert_eq!(grid.num_tiles(), 1);
        // Single tile keeps the original order outright (stable sort, 1 bucket).
        assert_eq!(grid.tile(0), entries);
    }

    #[test]
    fn tiny_budget_clamps_to_one_row_blocks() {
        let entries = [Rating::new(3, 2, 1.0)];
        let grid = TileGrid::build(&entries, 4, 4, 1024, 1);
        assert_eq!((grid.u_block(), grid.i_block()), (1, 1));
        assert_eq!(grid.num_tiles(), 16);
        assert_eq!(grid.tile(3 * 4 + 2), &entries[..]);
    }

    #[test]
    fn empty_shard_is_fine() {
        let grid = TileGrid::build(&[], 10, 10, 8, DEFAULT_L2_BYTES);
        assert!(grid.is_empty());
        assert_eq!(grid.len(), 0);
        for t in 0..grid.num_tiles() {
            assert!(grid.tile(t).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_entry_panics() {
        TileGrid::build(&[Rating::new(10, 0, 1.0)], 10, 10, 8, DEFAULT_L2_BYTES);
    }
}
